#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans ``README.md``, the top-level ``*.md`` siblings and everything under
``docs/`` for markdown links/images, and verifies that every *relative*
target resolves to an existing file or directory.  External URLs
(``http(s)://``, ``mailto:``), pure in-page anchors (``#...``) and
targets that resolve outside the repository (GitHub web paths such as
the CI badge's ``../../actions/...``) are skipped — the tool checks the
documentation tree, not the internet.

Exit status: 0 when every relative link resolves, 1 otherwise (each
dead link is listed as ``file:line: target``).  Run from anywhere:

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target)``.
#: Titles (``[t](file "title")``) and anchors (``file.md#section``) are
#: stripped from the target before resolution.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return files


def dead_links(path: Path) -> list[tuple[int, str]]:
    dead: list[tuple[int, str]] = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.is_relative_to(REPO_ROOT):
                continue  # GitHub web path (e.g. the CI badge), not a file
            if not resolved.exists():
                dead.append((line_number, target))
    return dead


def main() -> int:
    failures = 0
    checked = 0
    for path in markdown_files():
        checked += 1
        for line_number, target in dead_links(path):
            failures += 1
            print(f"{path.relative_to(REPO_ROOT)}:{line_number}: dead link: {target}")
    if failures:
        print(f"\n{failures} dead relative link(s) across {checked} markdown file(s)")
        return 1
    print(f"ok: {checked} markdown file(s), no dead relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
