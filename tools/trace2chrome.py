#!/usr/bin/env python3
"""Convert a ``repro-spans/v1`` span dump to Chrome ``trace_event`` JSON.

Usage:
    python tools/trace2chrome.py spans.json trace.json
    python tools/trace2chrome.py --selfcheck

The input is the document :meth:`SpanRecorder.to_json` (or
``StackTelemetry.spans_json``) writes; the output loads directly in
``chrome://tracing`` or https://ui.perfetto.dev.  The converted document
is shape-checked with :func:`validate_chrome_trace` before it is written,
so a broken exporter fails here rather than in the viewer.

``--selfcheck`` runs a built-in round trip (synthetic spans → chrome →
validate) and exits non-zero on any problem; CI runs it next to the other
tooling checks.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.tracing import (  # noqa: E402
    SPAN_FORMAT,
    chrome_trace,
    validate_chrome_trace,
)


def convert(document: dict) -> dict:
    """Span-dump dict → validated ``trace_event`` dict."""
    if document.get("format") != SPAN_FORMAT:
        raise SystemExit(
            f"input is not a {SPAN_FORMAT} document "
            f"(format={document.get('format')!r})")
    spans = document.get("spans", [])
    trace = chrome_trace(spans)
    problems = validate_chrome_trace(trace)
    if problems:
        raise SystemExit("converted trace failed validation:\n  "
                         + "\n  ".join(problems))
    return trace


def selfcheck() -> int:
    """Round-trip synthetic spans through the converter."""
    spans = [
        {"name": "pep.request", "trace_id": "t1", "span_id": "s1",
         "parent_id": None, "component": "pep@a", "category": "request",
         "start": 0.0, "end": 0.5, "status": "Permit", "attrs": {}},
        {"name": "pdp.evaluate", "trace_id": "t1", "span_id": "s2",
         "parent_id": "s1", "component": "pdp@infra", "category": "request",
         "start": 0.1, "end": 0.2, "status": "ok",
         "attrs": {"cache_hit": False}},
        {"name": "open.never.exported", "trace_id": "t2", "span_id": "s3",
         "parent_id": None, "component": "pep@a", "category": "request",
         "start": 0.3, "end": None, "status": "open", "attrs": {}},
    ]
    trace = convert({"format": SPAN_FORMAT, "spans": spans})
    events = trace["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    if len(complete) != 2:
        print(f"selfcheck: expected 2 complete events, got {len(complete)}")
        return 1
    if not meta:
        print("selfcheck: no process_name metadata events")
        return 1
    evaluate = next(e for e in complete if e["name"] == "pdp.evaluate")
    if evaluate["ts"] != 0.1e6 or round(evaluate["dur"]) != round(0.1e6):
        print(f"selfcheck: bad ts/dur scaling: {evaluate}")
        return 1
    if evaluate["args"]["parent_id"] != "s1":
        print("selfcheck: span args lost the parent link")
        return 1
    print("trace2chrome selfcheck: OK")
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--selfcheck":
        return selfcheck()
    if len(argv) != 2:
        print("usage: python tools/trace2chrome.py <spans.json> <trace.json>")
        print("       python tools/trace2chrome.py --selfcheck")
        return 2
    source, target = pathlib.Path(argv[0]), pathlib.Path(argv[1])
    document = json.loads(source.read_text())
    trace = convert(document)
    target.write_text(json.dumps(trace, indent=1) + "\n")
    print(f"{target}: {len(trace['traceEvents'])} events "
          f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
