#!/usr/bin/env python3
"""Validate the FaultPlan JSON examples embedded in the documentation.

Scans ``README.md``, the top-level ``*.md`` siblings and everything
under ``docs/`` for fenced ```` ```json ```` blocks whose payload has an
``"events"`` key, and round-trips each one through
:meth:`repro.faults.FaultPlan.from_dict`.  A documentation example that
drifts from the DSL (a renamed field, a new validation rule, a stale
kind) fails the lint instead of silently rotting.

Exit status: 0 when every embedded plan validates, 1 otherwise (each
failure is listed as ``file:line: error``).  Needs the package on the
path:

    PYTHONPATH=src python tools/check_fault_plan.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.faults import FaultPlan  # noqa: E402


def markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return files


def json_blocks(path: Path) -> list[tuple[int, str]]:
    """Return ``(start_line, payload)`` for each fenced ```json block."""
    blocks: list[tuple[int, str]] = []
    lines = path.read_text().splitlines()
    inside = False
    start = 0
    chunk: list[str] = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not inside and stripped == "```json":
            inside = True
            start = line_number
            chunk = []
        elif inside and stripped == "```":
            inside = False
            blocks.append((start, "\n".join(chunk)))
        elif inside:
            chunk.append(line)
    return blocks


def check_file(path: Path) -> tuple[int, int]:
    """Validate each plan-shaped JSON block; return (checked, failed)."""
    checked = 0
    failed = 0
    for start, payload in json_blocks(path):
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            checked += 1
            failed += 1
            print(f"{path.relative_to(REPO_ROOT)}:{start}: invalid JSON: {exc}")
            continue
        if not isinstance(data, dict) or "events" not in data:
            continue  # JSON example, but not a FaultPlan
        checked += 1
        try:
            plan = FaultPlan.from_dict(data)
        except Exception as exc:  # noqa: BLE001 - report any validation error
            failed += 1
            print(f"{path.relative_to(REPO_ROOT)}:{start}: invalid FaultPlan: {exc}")
            continue
        if plan.to_dict() != data:
            failed += 1
            print(
                f"{path.relative_to(REPO_ROOT)}:{start}: plan does not "
                "round-trip (non-canonical fields or defaults spelled out)"
            )
    return checked, failed


def main() -> int:
    checked = 0
    failed = 0
    for path in markdown_files():
        file_checked, file_failed = check_file(path)
        checked += file_checked
        failed += file_failed
    if failed:
        print(f"\n{failed} invalid FaultPlan example(s) out of {checked}")
        return 1
    print(f"ok: {checked} embedded FaultPlan example(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
