"""Regenerate the Schnorr group constants in repro.crypto.signatures.

Deterministic: draws candidate integers from the SHA-256 stream
``drams-group-<i>``, takes the first 160-bit probable prime as q, then the
first 1024-bit probable prime of the form p = q*k + 1, and uses
g = 2^((p-1)/q) mod p as the order-q generator.

Run: python tools/gen_group.py
"""

import hashlib
import random


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0xDEADBEEF)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def stream(i: int) -> int:
    return int.from_bytes(hashlib.sha256(f"drams-group-{i}".encode()).digest(), "big")


def main() -> None:
    i = 0
    while True:
        q = stream(i) % (1 << 160) | (1 << 159) | 1
        if is_probable_prime(q):
            break
        i += 1

    j = 0
    while True:
        m = 0
        for w in range(4):
            m = (m << 256) | stream(10_000 + j * 4 + w)
        m |= 1 << 1023
        k = m // q
        if k % 2:
            k += 1
        p = q * k + 1
        if p.bit_length() == 1024 and is_probable_prime(p):
            break
        j += 1

    h = 2
    while True:
        g = pow(h, (p - 1) // q, p)
        if g != 1:
            break
        h += 1
    assert pow(g, q, p) == 1

    print(f"_P = 0x{p:x}")
    print(f"_Q = 0x{q:x}")
    print(f"_G = 0x{g:x}")


if __name__ == "__main__":
    main()
