"""Ablation studies for the design choices DESIGN.md calls out.

A1 — **probe placement**: the four-point deployment (pep-in, pdp-in,
pdp-out, pep-out) vs a two-point one that only observes the decision leg.
The two-point variant cannot see request tampering: the PDP evaluates the
forged request and every hash it logs is consistent.

A2 — **matching location**: contract-side hash matching vs relying on the
Analyser alone.  The Analyser audits the PDP's semantics, so a PEP that
enforces a different decision than the PDP issued goes unnoticed without
the on-chain decision-leg comparison.
"""

from benchmarks.common import bench_drams_config, build_stack
from repro.drams.alerts import AlertType
from repro.drams.logs import EntryType
from repro.metrics.tables import format_table
from repro.threats.adversary import Adversary
from repro.threats.attacks import DecisionTamperAttack, RequestTamperAttack

REQUESTS = 10
HORIZON = 50.0


def run_probe_placement(two_point: bool, seed: int) -> dict:
    config = bench_drams_config()
    if two_point:
        config = bench_drams_config(
            expected_entries=EntryType.DECISION_LEG)
    stack = build_stack(seed=seed, drams_config=config)
    if two_point:
        for key, probe in stack.drams.probes.items():
            probe.suppressed_types.update((EntryType.PEP_IN, EntryType.PDP_IN))
    adversary = Adversary(stack.drams)
    adversary.launch(RequestTamperAttack("tenant-1", escalated_value="doctor"),
                     at=0.5)
    stack.issue_requests(REQUESTS)
    stack.run(until=HORIZON)
    record = adversary.records()[0]
    return {
        "deployment": "2-point (decision leg only)" if two_point
                      else "4-point (both legs)",
        "attack": "request-tamper",
        "detected": "yes" if record.detected else "NO",
        "request_mismatch_alerts": stack.drams.alerts.count(
            AlertType.REQUEST_MISMATCH),
        "logs_per_request": 2 if two_point else 4,
    }


def run_matching_location(contract_matching: bool, seed: int) -> dict:
    config = bench_drams_config(enable_leg_matching=contract_matching)
    stack = build_stack(seed=seed, drams_config=config)
    adversary = Adversary(stack.drams)
    adversary.launch(DecisionTamperAttack("tenant-1"), at=0.5)
    stack.issue_requests(REQUESTS)
    stack.run(until=HORIZON)
    record = adversary.records()[0]
    return {
        "matching": "on-chain contract" if contract_matching
                    else "analyser only",
        "attack": "decision-tamper (PEP side)",
        "detected": "yes" if record.detected else "NO",
        "decision_mismatch_alerts": stack.drams.alerts.count(
            AlertType.DECISION_MISMATCH),
        "incorrect_decision_alerts": stack.drams.alerts.count(
            AlertType.INCORRECT_DECISION),
    }


def test_a1_probe_placement(report, benchmark):
    rows = [run_probe_placement(two_point=False, seed=500),
            run_probe_placement(two_point=True, seed=501)]
    table = format_table(rows, title="A1: four-point vs two-point probes "
                                     "(request-tamper attack)")
    report("ablations", table)
    assert rows[0]["detected"] == "yes"
    assert rows[1]["detected"] == "NO", \
        "two-point placement must miss request tampering (the ablation's point)"
    benchmark.pedantic(lambda: run_probe_placement(False, seed=502),
                       rounds=1, iterations=1)


def test_a2_matching_location(report, benchmark):
    rows = [run_matching_location(contract_matching=True, seed=510),
            run_matching_location(contract_matching=False, seed=511)]
    table = format_table(rows, title="A2: contract-side matching vs "
                                     "analyser-only (decision-tamper attack)")
    report("ablations", table)
    assert rows[0]["detected"] == "yes"
    assert rows[1]["detected"] == "NO", \
        "the analyser audits the PDP, not the PEP: contract matching is load-bearing"
    benchmark.pedantic(lambda: run_matching_location(True, seed=512),
                       rounds=1, iterations=1)


def test_a3_encryption_cost(report, benchmark):
    """Ablation of LI encryption: what confidentiality costs on the wire."""
    from repro.crypto.symmetric import SymmetricKey
    from repro.common.serialization import canonical_bytes

    key = SymmetricKey.generate(entropy=b"ablation")
    payload = canonical_bytes({"request_id": "req-1", "content": {
        "subject": {"role": ["doctor"], "subject-id": ["s-123"]},
        "resource": {"resource-id": ["r-55"], "type": ["medical-record"]},
        "action": {"action-id": ["read"]}}})
    blob = key.encrypt(payload)
    rows = [{
        "variant": "plaintext on chain",
        "bytes_per_entry": len(payload),
        "confidential": "no (chain is federation-readable)",
    }, {
        "variant": "encrypted (LI, SHA256-CTR+HMAC)",
        "bytes_per_entry": blob.size_bytes(),
        "confidential": "yes",
    }]
    overhead = blob.size_bytes() - len(payload)
    rows.append({"variant": "overhead", "bytes_per_entry": overhead,
                 "confidential": f"{overhead} B nonce+tag"})
    table = format_table(rows, title="A3: encryption overhead per log entry")
    report("ablations", table)
    assert overhead < 64

    benchmark(lambda: key.decrypt(key.encrypt(payload)))
