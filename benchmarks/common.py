"""Shared helpers for the benchmark harness.

Every benchmark prints its regenerated table/series through
:func:`repro.metrics.tables.format_table` and asserts the *qualitative
shape* the paper claims (who wins, what grows) rather than absolute
numbers — our substrate is a simulator, not the authors' testbed.

Experiment ids (E1..E10) map to DESIGN.md's experiment index.  Benchmarks
with quantitative acceptance bars additionally persist a machine-readable
record via :func:`write_json_report` so CI can archive the perf trajectory.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.blockchain.config import BlockchainConfig
from repro.drams.system import DramsConfig
from repro.harness import MonitoredFederation
from repro.metrics.recorder import percentile
from repro.workload.scenarios import Scenario, healthcare_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seed for generated scenarios (scenariogen specs) in benchmark arms.
#: ``benchmarks/conftest.py`` overwrites this from the ``--scenario-seed``
#: pytest option; :func:`write_json_report` records it so every archived
#: JSON report names the generator stream it was produced from.
SCENARIO_SEED = 7


def bench_chain_config(
    difficulty_bits: float = 10.0,
    target_block_interval: float = 0.5,
    confirmations: int = 2,
    **overrides,
) -> BlockchainConfig:
    defaults = dict(
        chain_id="bench-chain",
        difficulty_bits=difficulty_bits,
        target_block_interval=target_block_interval,
        retarget_window=0,
        pow_mode="simulated",
        confirmations=confirmations,
    )
    defaults.update(overrides)
    return BlockchainConfig(**defaults)


def bench_drams_config(**overrides) -> DramsConfig:
    defaults = dict(
        chain=bench_chain_config(),
        # 10 blocks x 0.5s = 5s: wide enough that heavy-tailed WAN gossip
        # does not trip the timeout sweep on honest traffic.
        timeout_blocks=10,
        tick_interval=1.0,
        analyser_sweep_interval=1.0,
        node_hashrate=1024.0,
        use_tpm=False,
    )
    defaults.update(overrides)
    return DramsConfig(**defaults)


def build_stack(
    scenario: Scenario | None = None,
    clouds: int = 2,
    seed: int = 7,
    with_drams: bool = True,
    drams_config: DramsConfig | None = None,
) -> MonitoredFederation:
    stack = MonitoredFederation.build(
        scenario or healthcare_scenario(),
        clouds=clouds,
        seed=seed,
        with_drams=with_drams,
        drams_config=drams_config or bench_drams_config(),
    )
    stack.start()
    return stack


def write_json_report(experiment_id: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark record to ``BENCH_<id>.json``.

    The text tables in ``benchmarks/results/*.txt`` are for humans; this
    JSON sibling is for the perf trajectory: CI uploads it as an artifact,
    so speedups can be compared across commits instead of eyeballed.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{experiment_id}.json"
    record = {
        "experiment": experiment_id,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "smoke": os.environ.get("REPRO_BENCH_SMOKE") == "1",
        "scenario_seed": SCENARIO_SEED,
    }
    record.update(payload)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def p95(values) -> float:
    """95th percentile via the shared order-statistics engine.

    Delegates to :func:`repro.metrics.recorder.percentile` (linear
    interpolation) — the same summariser behind telemetry histograms —
    instead of a duplicated nearest-rank implementation.
    """
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    return percentile(ordered, 0.95)
