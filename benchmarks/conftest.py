"""Benchmark-suite helpers.

Each experiment *tees* its regenerated table to stdout and to
``benchmarks/results/<experiment>.txt`` so results survive pytest's output
capture and EXPERIMENTS.md can reference them directly.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--scenario-seed", type=int, default=7,
        help="seed for generated (scenariogen) benchmark scenarios; "
             "recorded in every BENCH_*.json report")


@pytest.fixture(scope="session")
def scenario_seed(request) -> int:
    return request.config.getoption("--scenario-seed")


@pytest.fixture(autouse=True, scope="session")
def _thread_scenario_seed(request):
    """Expose ``--scenario-seed`` to report writers in benchmarks.common."""
    from benchmarks import common

    common.SCENARIO_SEED = request.config.getoption("--scenario-seed")
    yield


@pytest.fixture
def report():
    """``report(experiment_id, text)`` — print and persist a results table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(experiment_id: str, text: str) -> None:
        print(f"\n{text}\n")
        path = RESULTS_DIR / f"{experiment_id}.txt"
        existing = path.read_text() if path.exists() else ""
        path.write_text(existing + text + "\n\n")

    return _report


@pytest.fixture(autouse=True, scope="session")
def _clear_results():
    RESULTS_DIR.mkdir(exist_ok=True)
    for stale in RESULTS_DIR.glob("*.txt"):
        stale.unlink()
    yield
