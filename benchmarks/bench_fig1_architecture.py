"""E1 / Figure 1 — the DRAMS architecture as a runnable topology.

Regenerates the paper's only figure as a deployment: two clouds, member
tenants with edge PEPs and Loggers (agents + LI), the infrastructure
tenant with PDP/PRP in one section and the Analyser in another, and the
smart-contract blockchain spanning every tenant.  The assertions pin the
structural properties the figure depicts; the benchmark times a full
monitored access round-trip.
"""

from benchmarks.common import bench_drams_config, build_stack, mean
from repro.drams.logs import EntryType
from repro.metrics.tables import format_table


def test_fig1_topology_and_flow(report, benchmark):
    stack = build_stack(clouds=2, seed=7)
    federation = stack.federation
    drams = stack.drams

    # --- structural assertions: what Figure 1 shows -------------------------
    # Section i of each cloud backs the infrastructure tenant.
    infra = federation.infrastructure_tenant
    assert {s.cloud_name for s in infra.sections} == {"cloud-1", "cloud-2"}
    # PEPs at each member tenant's edge.
    assert set(stack.peps) == {"tenant-1", "tenant-2"}
    # A Logger (probe agents + LI) in every tenant.
    assert set(drams.interfaces) == {"tenant-1", "tenant-2", "infrastructure"}
    # PDP probes live in the infrastructure tenant.
    assert "pdp" in drams.probes
    # The analyser has its own blockchain node (separate section).
    assert "__analyser__" in drams.nodes

    # --- run a workload through the architecture -----------------------------------
    stack.issue_requests(30)
    stack.run(until=90.0)

    assert len(stack.outcomes) == 30
    state = drams.monitor_state()
    assert state["stats"]["verified"] == 30
    assert drams.alerts.count() == 0

    rows = []
    for tenant_name, li in sorted(drams.interfaces.items()):
        node = drams.nodes[tenant_name]
        rows.append({
            "tenant": tenant_name,
            "components": ("PEP+Logger+chain node" if tenant_name in stack.peps
                           else "PDP+PRP+Logger+chain node"),
            "logs_submitted": li.logs_submitted,
            "blocks_mined": node.blocks_mined,
            "chain_height": node.chain.height,
        })
    rows.append({
        "tenant": "infrastructure/section-2",
        "components": "Analyser+chain node",
        "logs_submitted": 0,
        "blocks_mined": drams.nodes["__analyser__"].blocks_mined,
        "chain_height": drams.nodes["__analyser__"].chain.height,
    })
    table = format_table(rows, title="E1 (Figure 1): deployed DRAMS architecture")
    summary = (
        f"flow check: 30 requests -> {state['stats']['logs']} log entries "
        f"({len(EntryType.ALL)} per request), {state['stats']['verified']} "
        f"verified, 0 alerts; mean commit latency "
        f"{mean(drams.commit_latencies()):.2f}s")
    report("e1_fig1_architecture", table + "\n" + summary)

    # --- benchmark: one monitored access round-trip -----------------------------------
    def one_round_trip():
        fresh = build_stack(clouds=2, seed=8,
                            drams_config=bench_drams_config())
        fresh.issue_requests(1)
        fresh.run(until=15.0)
        return fresh.outcomes[0].latency

    latency = benchmark.pedantic(one_round_trip, rounds=3, iterations=1)
    assert latency is None or latency > 0
