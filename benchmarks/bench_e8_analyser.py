"""E8 — Analyser throughput vs policy size.

The Analyser re-derives every decision from the policies in force; its
cost scales with policy size.  This experiment measures oracle
decisions/second as the rule count grows (wall-clock, pytest-benchmark
timed) and the PDP's evaluation throughput for comparison — the two
engines must stay within the same order of magnitude or the Analyser
could not keep up with the PDP at runtime.
"""

import time

from repro.analysis.semantics import DecisionOracle
from repro.metrics.tables import format_table
from repro.xacml.context import RequestContext
from repro.xacml.expressions import Apply, AttributeDesignator, Literal
from repro.xacml.parser import policy_to_dict
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Effect, Policy, Rule, Target

RULE_COUNTS = [10, 50, 150, 400]


def build_policy(rule_count: int) -> Policy:
    """A realistic policy: per-resource-class permits plus a default deny."""
    rules = []
    for index in range(rule_count - 1):
        rules.append(Rule(
            f"allow-class-{index}", Effect.PERMIT,
            target=Target.single("string-equal", f"class-{index}",
                                 "resource", "type"),
            condition=Apply("any-of", (
                Literal("string-equal"), Literal("read"),
                AttributeDesignator("action", "action-id"))),
        ))
    rules.append(Rule("default-deny", Effect.DENY))
    return Policy(policy_id=f"policy-{rule_count}",
                  rule_combining="first-applicable", rules=rules)


def request_for(index: int, rule_count: int) -> dict:
    return {
        "subject": {"role": ["officer"]},
        "action": {"action-id": ["read"]},
        "resource": {"type": [f"class-{index % rule_count}"]},
    }


def measure_throughput(fn, requests, seconds_budget=0.4) -> float:
    started = time.perf_counter()
    count = 0
    while time.perf_counter() - started < seconds_budget:
        fn(requests[count % len(requests)])
        count += 1
    return count / (time.perf_counter() - started)


def test_e8_analyser_throughput_vs_policy_size(report, benchmark):
    rows = []
    for rule_count in RULE_COUNTS:
        policy = build_policy(rule_count)
        document = policy_to_dict(policy)
        oracle = DecisionOracle(document)
        pdp = PolicyDecisionPoint(policy)
        requests = [request_for(i, rule_count) for i in range(100)]
        oracle_tput = measure_throughput(
            lambda request: oracle.expected_decision(request), requests)
        pdp_tput = measure_throughput(
            lambda request: pdp.evaluate(RequestContext.from_dict(request)),
            requests)
        rows.append({
            "rules": rule_count,
            "oracle_checks_per_s": int(oracle_tput),
            "pdp_evals_per_s": int(pdp_tput),
            "oracle_vs_pdp": round(oracle_tput / pdp_tput, 2),
        })
    table = format_table(
        rows, title="E8: decision-checking throughput vs policy size")
    report("e8_analyser", table)

    # Shape 1: throughput decreases as policies grow.
    throughputs = [row["oracle_checks_per_s"] for row in rows]
    assert throughputs[-1] < throughputs[0]
    # Shape 2: the analyser keeps pace with the PDP (same order of
    # magnitude) at every size, so runtime checking is feasible.
    assert all(0.2 < row["oracle_vs_pdp"] < 20 for row in rows)

    document = policy_to_dict(build_policy(150))
    oracle = DecisionOracle(document)
    request = request_for(3, 150)
    benchmark(lambda: oracle.expected_decision(request))


def test_e8_property_checking_cost(report, benchmark):
    """Static analysis cost: exhaustive completeness check vs domain size."""
    from repro.analysis.properties import AttributeDomain, check_completeness

    rows = []
    for classes in (4, 8, 16):
        policy = build_policy(classes)
        document = policy_to_dict(policy)
        domain = AttributeDomain()
        domain.declare("resource", "type", [f"class-{i}" for i in range(classes)])
        domain.declare("action", "action-id", ["read", "write"])
        domain.declare("subject", "role", ["officer", "auditor", "intern"])
        started = time.perf_counter()
        report_obj = check_completeness(document, domain)
        elapsed = time.perf_counter() - started
        rows.append({
            "rules": classes,
            "domain_size": domain.size(),
            "holds": report_obj.holds,
            "wall_ms": round(elapsed * 1000, 1),
        })
    table = format_table(rows, title="E8b: exhaustive completeness checking")
    report("e8_analyser", table)
    assert all(row["holds"] for row in rows)

    policy = build_policy(8)
    document = policy_to_dict(policy)
    domain = AttributeDomain()
    domain.declare("resource", "type", [f"class-{i}" for i in range(8)])
    domain.declare("action", "action-id", ["read", "write"])
    benchmark(lambda: check_completeness(document, domain))
