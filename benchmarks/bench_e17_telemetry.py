"""E17 — telemetry plane: differential identity, overhead, critical paths.

The telemetry plane (:mod:`repro.telemetry`) attaches a causal tracer and
a unified metrics registry to the full monitored stack.  Three arms pin
the PR's claims:

1. **Differential** — a telemetry-attached `federation-scale` run must be
   bit-identical (decisions, alerts, chain head) to a bare one: tracing
   draws no RNG, sends no simnet traffic and mints no global ids.  The
   same arm measures wall-clock overhead (best-of-N repeats per arm) and
   holds it under the 15 % budget.
2. **Tracing hygiene + critical paths** — after the run every span closes
   cleanly (no orphans, no double-closes), the critical-path analyser
   attributes p50/p99 decision time per hop, and the exported Chrome
   trace round-trips through ``tools/trace2chrome.py``'s converter and
   validates (loadable in chrome://tracing / Perfetto).
3. **Unified snapshot** — ``stack.telemetry.snapshot()`` aggregates every
   subsystem ``stats()`` surface plus the pushed access-latency
   histogram, including a windowed slice of the load phase.

``REPRO_BENCH_SMOKE=1`` shrinks the workload (and loosens the noisy
wall-clock bound) for CI smoke runs.
"""

import importlib.util
import json
import os
import pathlib
import time

from benchmarks.common import (
    RESULTS_DIR,
    bench_drams_config,
    write_json_report,
)
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.telemetry import validate_chrome_trace
from repro.workload.scenarios import federation_scale_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REQUESTS = 40 if SMOKE else 120
RUN_UNTIL = 60.0
TIMING_REPEATS = 2 if SMOKE else 3
# Wall-clock bound: the acceptance bar is < 15 %; smoke runs in shared CI
# containers where a sub-second run's timing noise swamps the signal, so
# the assertion loosens there (the ratio is still reported and archived).
OVERHEAD_BOUND = 0.60 if SMOKE else 0.15


def build_stack(telemetry: bool) -> MonitoredFederation:
    reset_id_counter()
    stack = MonitoredFederation.build(
        federation_scale_scenario(), clouds=2, seed=91, with_drams=True,
        drams_config=bench_drams_config(), telemetry=telemetry)
    stack.start()
    return stack


def drive(stack: MonitoredFederation) -> None:
    stack.issue_requests(REQUESTS)
    stack.run(until=RUN_UNTIL)
    assert len(stack.outcomes) == REQUESTS, "arm lost requests"


def decision_fingerprint(stack) -> dict:
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(a.alert_type.value for a in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts,
            "chain_head": stack.drams.reference_chain().head.hash}


def timed_run(telemetry: bool):
    """Best-of-N wall clock for one arm, plus the last run's stack."""
    best = float("inf")
    stack = None
    for _ in range(TIMING_REPEATS):
        started = time.perf_counter()
        stack = build_stack(telemetry)
        drive(stack)
        best = min(best, time.perf_counter() - started)
    return best, stack


def _load_trace2chrome():
    """Import ``tools/trace2chrome.py`` by path (it is not a package)."""
    path = pathlib.Path(__file__).parent.parent / "tools" / "trace2chrome.py"
    spec = importlib.util.spec_from_file_location("trace2chrome", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_e17_telemetry(report):
    lines = []

    # -- arm 1: differential identity + overhead -------------------------------
    bare_wall, bare_stack = timed_run(telemetry=False)
    traced_wall, traced_stack = timed_run(telemetry=True)
    bare_fp = decision_fingerprint(bare_stack)
    traced_fp = decision_fingerprint(traced_stack)
    assert traced_fp == bare_fp, (
        "telemetry-attached stack diverged from the bare stack")
    overhead = traced_wall / bare_wall - 1.0
    assert overhead < OVERHEAD_BOUND, (
        f"tracing overhead {overhead:.1%} exceeds {OVERHEAD_BOUND:.0%}")
    lines.append(format_table([{
        "arm": "differential",
        "requests": REQUESTS,
        "identical": traced_fp == bare_fp,
        "bare_wall_s": round(bare_wall, 3),
        "traced_wall_s": round(traced_wall, 3),
        "overhead_pct": round(100.0 * overhead, 1),
        "bound_pct": round(100.0 * OVERHEAD_BOUND, 1),
    }], title="E17 differential: telemetry attached vs bare"))

    # -- arm 2: span hygiene + critical paths + Perfetto export ----------------
    telemetry = traced_stack.telemetry
    telemetry.flush()
    tracing = telemetry.tracer.stats()
    assert tracing["open"] == 0, f"unclosed spans after flush: {tracing}"
    assert tracing["double_closes"] == 0, tracing
    assert tracing["orphan_closes"] == 0, tracing
    assert tracing["dropped"] == 0, tracing

    paths = telemetry.critical_paths()
    decision_traces = paths.decision_traces()
    assert len(decision_traces) == REQUESTS, (
        f"{len(decision_traces)} decision traces for {REQUESTS} requests")
    attribution = paths.attribution_table(fractions=(0.5, 0.99))
    assert attribution, "no attribution rows"
    for row in attribution:
        hop_total = sum(v for k, v in row.items() if k.endswith("_s")
                        and k != "total_s")
        # Hop values are rounded to the microsecond in the table, so the
        # sum may be off by half a microsecond per hop.
        assert abs(hop_total - row["total_s"]) < 1e-5, (
            f"attribution does not sum to the trace extent: {row}")
    lines.append(format_table(
        attribution, title="E17 critical path: per-hop attribution"))

    spans_doc = telemetry.spans_json()
    trace2chrome = _load_trace2chrome()
    chrome = trace2chrome.convert(spans_doc)
    problems = validate_chrome_trace(chrome)
    assert not problems, problems
    complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == tracing["spans"], (
        f"{len(complete)} exported events for {tracing['spans']} spans")
    RESULTS_DIR.mkdir(exist_ok=True)
    trace_path = RESULTS_DIR / "e17_trace.json"
    trace_path.write_text(json.dumps(chrome) + "\n")
    lines.append(f"Perfetto trace: {trace_path.name} "
                 f"({len(complete)} events, validated)")

    # -- arm 3: unified snapshot ------------------------------------------------
    snapshot = telemetry.snapshot()
    for surface in ("network", "plane", "peps", "policy_plane", "drams",
                    "tracing"):
        assert surface in snapshot["collected"], surface
    latency_rows = snapshot["histograms"]["pep.access_latency"]
    total_count = sum(row["n"] for row in latency_rows.values())
    assert total_count == REQUESTS, latency_rows
    assert snapshot["counters"]["pep.decisions"], "no decision counters"
    assert snapshot["collected"]["network"]["by_kind"].get(
        "ac_request", 0) >= REQUESTS
    # Windowed slice: only outcomes enforced in the first half of the run.
    first_half = telemetry.registry.snapshot(
        window=(0.0, RUN_UNTIL / 2))["histograms"]["pep.access_latency"]
    half_count = sum(row["n"] for row in first_half.values())
    assert 0 < half_count <= REQUESTS
    lines.append(format_table([{
        "surfaces": len(snapshot["collected"]),
        "spans": tracing["spans"],
        "latency_count": total_count,
        "first_half_count": half_count,
        "alerts": len(traced_stack.drams.alerts.all()),
    }], title="E17 snapshot: unified telemetry tree"))

    write_json_report("e17", {
        "differential_identical": traced_fp == bare_fp,
        "requests": REQUESTS,
        "bare_wall_s": round(bare_wall, 4),
        "traced_wall_s": round(traced_wall, 4),
        "overhead_ratio": round(overhead, 4),
        "overhead_bound": OVERHEAD_BOUND,
        "spans": tracing["spans"],
        "decision_traces": len(decision_traces),
        "attribution": attribution,
        "chrome_events": len(complete),
        "collected_surfaces": sorted(snapshot["collected"]),
    })
    report("e17", "\n\n".join(lines))
