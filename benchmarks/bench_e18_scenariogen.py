"""E18 — scenario generator: spec sweep, determinism, streaming memory.

Three arms pin the scenariogen PR's claims:

1. **Spec sweep** — every preset :class:`ScenarioSpec` compiles to a
   scenario whose workload config equals the hand-built original, and a
   tree-synthesised spec passes the generator's validity report (all
   roles reachable, all classes readable, a permit path per tenant).
2. **Determinism** — building and driving the same generated federation
   twice from the same spec + seed replays bit-identical decisions,
   alerts and chain head.
3. **Streaming memory** — a 10⁶-subject federation is built and driven
   through :meth:`MonitoredFederation.issue_stream`; the run completes
   with peak RSS bounded and no materialised outcome list.

The scenario seed comes from the ``--scenario-seed`` pytest option
(``benchmarks/conftest.py``) and is recorded in ``BENCH_e18.json``.
``REPRO_BENCH_SMOKE=1`` shrinks the streaming arm for CI smoke runs.
"""

import os
import resource
import time

from benchmarks.common import bench_drams_config, write_json_report
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.metrics.tables import format_table
from repro.scenariogen import (
    ArrivalSpec,
    FederationShape,
    PopulationSpec,
    PRESET_SPECS,
    ScenarioSpec,
    TreeSpec,
    build_stack_from_spec,
    generate_scenario,
    validity_report,
)
from repro.workload.scenarios import SCENARIO_FACTORIES

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
STREAM_SUBJECTS = 1_000_000
STREAM_REQUESTS = 5_000 if SMOKE else 50_000
STREAM_RATE = 2500.0
#: Peak-RSS ceiling for the whole process during the streaming arm.  A
#: materialised 10⁶-user run would hold every request and outcome; the
#: streaming path keeps one pending arrival and a bounded window ring.
RSS_BOUND_MB = 512.0

DETERMINISM_SPEC = ScenarioSpec(
    name="e18-determinism",
    roles=("analyst", "operator", "auditor"),
    tree=TreeSpec(classes=4, depth=2, width=2, audited_fraction=0.5,
                  clearance_fraction=0.25, deny_tail_fraction=0.25),
    federation=FederationShape(clouds=2),
    population=PopulationSpec(subjects=40, resources=120),
    arrival=ArrivalSpec(rate=5.0),
    description="E18 determinism arm",
)

STREAM_SPEC = ScenarioSpec(
    name="e18-stream",
    roles=("analyst", "operator", "auditor"),
    tree=TreeSpec(classes=4, depth=1, width=2),
    federation=FederationShape(clouds=2),
    population=PopulationSpec(subjects=STREAM_SUBJECTS, resources=100_000),
    arrival=ArrivalSpec(rate=STREAM_RATE),
    description="E18 streaming-memory arm",
)


def rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def decision_fingerprint(stack) -> dict:
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(a.alert_type.value for a in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts,
            "chain_head": stack.drams.reference_chain().head.hash}


def run_monitored(spec: ScenarioSpec, seed: int, requests: int = 12) -> dict:
    reset_id_counter()
    stack = build_stack_from_spec(
        spec, seed=seed, drams_config=bench_drams_config())
    stack.start()
    stack.issue_requests(requests)
    stack.run(until=40.0)
    assert len(stack.outcomes) == requests, "determinism arm lost requests"
    return decision_fingerprint(stack)


def test_e18_scenariogen(report, scenario_seed):
    lines = []

    # -- arm 1: preset sweep + validity ----------------------------------------
    sweep_rows = []
    for factory, spec_factory in zip(SCENARIO_FACTORIES, PRESET_SPECS):
        hand = factory()
        spec = spec_factory()
        compiled = generate_scenario(spec)
        assert compiled.name == hand.name
        assert compiled.workload == hand.workload, (
            f"{hand.name}: compiled workload diverged")
        sweep_rows.append({
            "preset": spec.name,
            "classes": len(spec.classes) if spec.classes else "tree",
            "subjects": compiled.workload.subjects,
            "resources": compiled.workload.resources,
            "rate_rps": compiled.workload.arrival_rate,
            "variants": len(compiled.policy_variants),
            "workload_eq": compiled.workload == hand.workload,
        })
    lines.append(format_table(
        sweep_rows, title="E18 spec sweep: presets vs hand-built scenarios"))

    validity = validity_report(DETERMINISM_SPEC, seed=scenario_seed)
    assert validity["ok"], validity
    lines.append(format_table([{
        "spec": DETERMINISM_SPEC.name,
        "roles_reachable": sum(validity["roles_reachable"].values()),
        "classes_readable": sum(validity["classes_readable"].values()),
        "tenant_permit_paths": sum(validity["tenant_permit_paths"].values()),
        "ok": validity["ok"],
    }], title="E18 validity: tree-synthesised spec"))

    # -- arm 2: determinism -----------------------------------------------------
    first = run_monitored(DETERMINISM_SPEC, scenario_seed)
    second = run_monitored(DETERMINISM_SPEC, scenario_seed)
    assert first == second, "same spec + seed did not replay bit-identically"
    lines.append(format_table([{
        "arm": "determinism",
        "seed": scenario_seed,
        "decisions": len(first["decisions"]),
        "alerts": len(first["alerts"]),
        "chain_head": first["chain_head"][:16],
        "identical": first == second,
    }], title="E18 determinism: rebuild + rerun fingerprint"))

    # -- arm 3: streaming memory ------------------------------------------------
    reset_id_counter()
    built_at = time.perf_counter()
    stack = build_stack_from_spec(STREAM_SPEC, seed=scenario_seed,
                                  with_drams=False)
    stack.start()
    build_wall = time.perf_counter() - built_at
    rss_built = rss_mb()

    driven_at = time.perf_counter()
    handle = stack.issue_stream(STREAM_REQUESTS)
    stack.run(until=STREAM_REQUESTS / STREAM_RATE + 30.0)
    drive_wall = time.perf_counter() - driven_at
    rss_peak = rss_mb()

    assert handle.issued == STREAM_REQUESTS
    assert handle.enforced == STREAM_REQUESTS, (
        f"streamed {handle.issued}, enforced only {handle.enforced}")
    assert stack.outcomes == [], "streaming arm materialised outcomes"
    snapshot = handle.metrics.snapshot()
    assert snapshot["count"] == STREAM_REQUESTS
    assert len(snapshot["windows"]) <= handle.metrics.max_windows
    assert rss_peak < RSS_BOUND_MB, (
        f"peak RSS {rss_peak:.0f} MB breaches the {RSS_BOUND_MB:.0f} MB bound")
    lines.append(format_table([{
        "arm": "streaming",
        "subjects": STREAM_SUBJECTS,
        "requests": STREAM_REQUESTS,
        "grant_rate": round(handle.metrics.grant_rate(), 4),
        "throughput_rps": round(STREAM_REQUESTS / drive_wall),
        "rss_built_mb": round(rss_built, 1),
        "rss_peak_mb": round(rss_peak, 1),
        "rss_bound_mb": RSS_BOUND_MB,
    }], title="E18 streaming: 10⁶-subject federation, constant memory"))

    write_json_report("e18", {
        "presets": len(sweep_rows),
        "preset_workloads_equal": all(r["workload_eq"] for r in sweep_rows),
        "validity_ok": validity["ok"],
        "determinism_identical": first == second,
        "determinism_decisions": len(first["decisions"]),
        "determinism_chain_head": first["chain_head"],
        "stream_subjects": STREAM_SUBJECTS,
        "stream_requests": STREAM_REQUESTS,
        "stream_enforced": handle.enforced,
        "stream_grant_rate": round(handle.metrics.grant_rate(), 4),
        "stream_build_wall_s": round(build_wall, 3),
        "stream_drive_wall_s": round(drive_wall, 3),
        "stream_throughput_rps": round(STREAM_REQUESTS / drive_wall, 1),
        "rss_built_mb": round(rss_built, 2),
        "rss_peak_mb": round(rss_peak, 2),
        "rss_bound_mb": RSS_BOUND_MB,
        "stream_windows_retained": len(snapshot["windows"]),
    })
    report("e18_scenariogen", "\n\n".join(lines))
