"""E16 — light-client monitoring: receipts, sublinear verification, sampling.

The full DRAMS Analyser audits decisions by replaying the chain — an O(n)
cost any federation party must pay to check even one decision.  The
light-client plane (:mod:`repro.lightclient`) replaces that with header
chains and per-decision receipts verified in O(log blocksize) hashes, and
with a sampling Analyser whose audit coverage carries a closed-form
detection bound.  Four arms pin the claims:

1. **Differential** — the full DRAMS stack with light auditors attached
   must be bit-identical (decisions, alerts, chain head) to the stack
   without them; the light verifier must accept 100% of honestly served
   receipts and reject every tampered one (mutated leaf, proof, header,
   policy stamp).
2. **Scaling** — hashes verified per audited decision: a light receipt
   check stays at ``3 + log2(blocksize)`` while the full-audit cost (the
   chain a full node replays) grows linearly with the workload.
3. **Sampling** — a :class:`SamplingAnalyser` at 10% against an injected
   evaluation-tamper campaign: detection must match the seeded-hash
   predicate exactly (the sample is deterministic), and a Monte Carlo
   sweep over seeds must land on the closed-form detection probability.
4. **Chaos** — the E15 partition-storm plan (PEP partition, blockchain
   node crash — the light clients' own proof server — and a PDP-shard
   crash): after the storm heals, every enforced decision still ends in
   an accepted receipt; none are lost or rejected.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import dataclasses
import math
import os

from benchmarks.common import bench_drams_config, write_json_report
from repro.accesscontrol.pep import RetryBackoff
from repro.accesscontrol.plane import ShardedPdpPlane
from repro.blockchain.block import BlockHeader
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.crypto.merkle import MerkleProof
from repro.faults import FaultPlan, crash, partition
from repro.harness import MonitoredFederation
from repro.lightclient import detection_probability, sample_admit
from repro.metrics.tables import format_table
from repro.threats.adversary import Adversary
from repro.threats.attacks import EvaluationTamperAttack
from repro.workload.scenarios import healthcare_scenario, partition_storm_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
DIFF_REQUESTS = 24 if SMOKE else 48
SCALE_STEPS = (12, 36) if SMOKE else (12, 48, 120)
SAMPLING_REQUESTS = 30 if SMOKE else 60
SAMPLE_RATE = 0.1
MONTE_CARLO_SEEDS = 150 if SMOKE else 400
WAVE_STARTS = (0.1, 0.9, 1.4, 2.4, 3.2)
WAVE_SIZE = 6 if SMOKE else 10


def build_monitored(scenario, seed, *, light, drams_config=None, **kwargs):
    reset_id_counter()
    stack = MonitoredFederation.build(
        scenario, clouds=2, seed=seed, with_drams=True,
        drams_config=drams_config or bench_drams_config(),
        light_clients=light, **kwargs)
    stack.start()
    return stack


def decision_fingerprint(stack):
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(a.alert_type.value for a in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts,
            "chain_head": stack.drams.reference_chain().head.hash}


# -- arm 1: differential + tamper matrix -------------------------------------------


def run_differential_arm(light: bool):
    stack = build_monitored(healthcare_scenario(), 29, light=light)
    stack.issue_requests(DIFF_REQUESTS)
    stack.run(until=40.0)
    assert len(stack.outcomes) == DIFF_REQUESTS
    return decision_fingerprint(stack), stack


def assert_full_acceptance(stack) -> dict:
    """Every enforced decision ends in an accepted, decrypted receipt."""
    per_tenant = {}
    for outcome in stack.outcomes:
        per_tenant[outcome.request.origin_tenant] = (
            per_tenant.get(outcome.request.origin_tenant, 0) + 1)
    rows = {}
    for tenant, consumer in sorted(stack.light_clients.items()):
        expected = per_tenant.get(tenant, 0)
        assert consumer.receipts_accepted == expected, (
            f"{tenant}: {consumer.receipts_accepted}/{expected} receipts accepted")
        assert consumer.receipts_rejected == 0, consumer.rejections
        assert consumer.outstanding == 0
        assert all(r.payload is not None for r in consumer.receipts.values())
        rows[tenant] = consumer.stats()
    return rows


def run_tamper_matrix(stack) -> list[dict]:
    """Mutate an honestly served receipt four ways; all must be rejected."""
    _, consumer = sorted(stack.light_clients.items())[0]
    _, receipt = sorted(consumer.receipts.items())[0]
    trusted = consumer.header_client.header_for(receipt.block_hash)
    key = stack.drams.federation_key
    assert receipt.verify(trusted, federation_key=key).ok

    header = receipt.header
    sibling, is_right = receipt.proof.path[0] if receipt.proof.path else ("", True)
    mutations = {
        "mutated-leaf": dataclasses.replace(receipt, tx=receipt.tx.replace(
            args={**receipt.tx.args, "payload_hash": "00" * 32})),
        "mutated-proof": dataclasses.replace(receipt, proof=MerkleProof(
            leaf_index=receipt.proof.leaf_index, leaf=receipt.proof.leaf,
            path=(("ff" * 32, is_right),) + receipt.proof.path[1:])),
        "mutated-header": dataclasses.replace(receipt, header=BlockHeader(
            height=header.height, prev_hash=header.prev_hash,
            merkle_root=header.merkle_root, timestamp=header.timestamp + 1.0,
            difficulty_bits=header.difficulty_bits, miner=header.miner)),
        "mutated-policy-stamp": dataclasses.replace(receipt, tx=receipt.tx.replace(
            args={**receipt.tx.args,
                  "policy_version": receipt.policy_version + 1})),
    }
    rows = []
    for name, tampered in mutations.items():
        result = tampered.verify(trusted, federation_key=key)
        assert not result.ok, f"{name} was accepted"
        rows.append({"mutation": name, "accepted": result.ok,
                     "reason": result.reason})
    # A stamp pin rejects a receipt whose declared provenance differs.
    pinned = receipt.verify(trusted, federation_key=key,
                            expected_stamp=(receipt.policy_version + 1,
                                            receipt.policy_fingerprint))
    assert not pinned.ok
    rows.append({"mutation": "wrong-expected-stamp", "accepted": pinned.ok,
                 "reason": pinned.reason})
    return rows


# -- arm 2: scaling ----------------------------------------------------------------


def run_scale_arm(requests: int) -> dict:
    stack = build_monitored(healthcare_scenario(), 31, light=True)
    stack.issue_requests(requests)
    stack.run(until=30.0 + 0.6 * requests)
    assert len(stack.outcomes) == requests
    assert_full_acceptance(stack)
    chain = stack.drams.reference_chain()
    total_txs = sum(len(chain._blocks[block_hash].transactions)
                    for block_hash in chain._applied_branch)
    accepted = sum(c.receipts_accepted for c in stack.light_clients.values())
    receipt_hashes = sum(c.hashes_verified for c in stack.light_clients.values())
    header_hashes = sum(hc.hashes_verified
                        for hc in stack.drams.header_clients.values())
    return {
        "decisions": requests,
        "chain_txs": total_txs,
        "chain_height": chain.height,
        "receipts": accepted,
        "light_hashes_per_receipt": round(receipt_hashes / accepted, 2),
        "header_hashes_per_client": round(
            header_hashes / len(stack.drams.header_clients), 1),
        "full_audit_cost_per_decision": total_txs,
    }


# -- arm 3: sampling ---------------------------------------------------------------


def run_sampling_arm(sample_seed) -> dict:
    config = bench_drams_config(analyser_mode="sampling",
                                sample_rate=SAMPLE_RATE,
                                sample_seed=sample_seed)
    stack = build_monitored(healthcare_scenario(), 37, light=False,
                            drams_config=config)
    adversary = Adversary(stack.drams)
    attack = EvaluationTamperAttack()
    adversary.launch(attack, at=0.3)
    stack.issue_requests(SAMPLING_REQUESTS)
    stack.run(until=60.0)
    assert len(stack.outcomes) == SAMPLING_REQUESTS
    violating = list(attack.affected_correlations)
    sampled_hits = sum(
        sample_admit(sample_seed, SAMPLE_RATE, corr) for corr in violating)
    record = adversary.records()[0]
    stats = stack.drams.analyser.sampling_stats()
    # The sample is a deterministic predicate: detection is not a matter
    # of luck per run, it happens exactly when the campaign intersects
    # the audit set.
    assert record.detected == (sampled_hits > 0), (
        f"detection ({record.detected}) disagrees with the sample "
        f"({sampled_hits}/{len(violating)} violations audited)")
    assert len(adversary.false_positives()) == 0
    return {
        "sample_seed": str(sample_seed),
        "violations": len(violating),
        "violations_sampled": sampled_hits,
        "detected": record.detected,
        "detection_bound": round(
            detection_probability(SAMPLE_RATE, len(violating)), 4),
        "audited": stats["sampled_in"],
        "skipped": stats["sampled_out"],
        "observed_fraction": round(stats["observed_fraction"], 3),
    }


def monte_carlo_detection(rate: float, campaign: int, seeds: int) -> float:
    hits = 0
    for seed in range(seeds):
        if any(sample_admit(seed, rate, f"mc-{seed}-{i}")
               for i in range(campaign)):
            hits += 1
    return hits / seeds


# -- arm 4: chaos ------------------------------------------------------------------


def run_chaos_arm():
    plane = ShardedPdpPlane(shards=2)
    stack = build_monitored(
        partition_storm_scenario(), 83, light=True, plane=plane,
        pep_kwargs={"request_timeout": 1.0,
                    "backoff": RetryBackoff(base=0.2, cap=0.5)})
    shard_a, shard_b = (service.address for service in plane.services)
    controller = stack.inject_faults(FaultPlan(
        name="partition-storm",
        events=(
            partition(["pep@tenant-2"], [shard_a], at=0.6, heal_at=1.8),
            # tenant-2's blockchain node is also its light clients' proof
            # and header server: the receipt pipeline must ride out its
            # crash window and drain afterwards.
            crash("bcnode@tenant-2", at=1.0, restart_at=2.0),
            crash(shard_b, at=2.2, restart_at=3.0),
        ),
    ))
    for start in WAVE_STARTS:
        stack.issue_requests(WAVE_SIZE, start_at=start)
    stack.run(until=60.0)
    assert len(stack.outcomes) == len(WAVE_STARTS) * WAVE_SIZE, (
        "the storm lost decisions outright")
    rows = assert_full_acceptance(stack)
    slos = controller.recorder.slos()
    assert len(slos["recoveries"]) == 2
    assert slos["watches_outstanding"] == 0
    return rows, slos


def test_e16_lightclient(report):
    # -- differential ------------------------------------------------------
    plain, _ = run_differential_arm(light=False)
    lit, lit_stack = run_differential_arm(light=True)
    assert plain["decisions"] == lit["decisions"], (
        "attaching light clients changed decision behaviour")
    assert plain["alerts"] == lit["alerts"]
    assert plain["chain_head"] == lit["chain_head"], (
        "attaching light clients changed the monitored chain")
    acceptance = assert_full_acceptance(lit_stack)
    tamper_rows = run_tamper_matrix(lit_stack)

    # -- scaling -----------------------------------------------------------
    scale_rows = [run_scale_arm(requests) for requests in SCALE_STEPS]
    small, large = scale_rows[0], scale_rows[-1]
    growth = large["chain_txs"] / small["chain_txs"]
    assert growth >= 2.0, "workload sweep did not grow the chain"
    # Light verification is O(log blocksize): the per-receipt cost moves
    # by at most a couple of hashes while the full-audit cost (chain
    # replay) grows with the workload.
    assert (large["light_hashes_per_receipt"]
            - small["light_hashes_per_receipt"]) <= 3.0
    assert all(
        row["light_hashes_per_receipt"]
        <= 4 + math.log2(max(2, row["chain_txs"]))
        for row in scale_rows)
    assert large["full_audit_cost_per_decision"] > (
        10 * large["light_hashes_per_receipt"])

    # -- sampling ----------------------------------------------------------
    sampling = run_sampling_arm(sample_seed=0)
    assert sampling["detected"], (
        "campaign evaded the seeded sample; pick a seed whose audit set "
        "intersects the storm (the predicate is deterministic)")
    mc_rows = []
    for campaign in (1, 5, 10, 20):
        empirical = monte_carlo_detection(SAMPLE_RATE, campaign,
                                          MONTE_CARLO_SEEDS)
        bound = detection_probability(SAMPLE_RATE, campaign)
        assert abs(empirical - bound) < 0.08, (
            f"k={campaign}: empirical {empirical} vs closed form {bound}")
        mc_rows.append({"campaign_size": campaign,
                        "closed_form": round(bound, 3),
                        "empirical": round(empirical, 3)})

    # -- chaos -------------------------------------------------------------
    chaos_rows, chaos_slos = run_chaos_arm()

    report("e16", "\n\n".join([
        format_table(
            [{"tenant": tenant, **stats}
             for tenant, stats in acceptance.items()],
            title="E16a — receipt acceptance with light auditors attached",
        ),
        format_table(tamper_rows, title="E16a — tampered-receipt rejection matrix"),
        format_table(scale_rows,
                     title="E16b — light O(log n) verification vs full O(n) audit"),
        format_table([sampling],
                     title="E16c — sampling Analyser vs evaluation-tamper campaign"),
        format_table(mc_rows,
                     title="E16c — detection bound, closed form vs Monte Carlo"),
        format_table(
            [{"tenant": tenant, **stats}
             for tenant, stats in chaos_rows.items()],
            title="E16d — receipts under partition-storm chaos",
        ),
    ]))
    write_json_report("e16", {
        "differential_identical": plain == lit,
        "acceptance": acceptance,
        "tamper_matrix": tamper_rows,
        "scaling": scale_rows,
        "sampling": sampling,
        "monte_carlo": mc_rows,
        "chaos": {"consumers": chaos_rows, "slos": chaos_slos},
        "smoke": SMOKE,
    })
