"""E11 — decision-plane scaling: a sharded PDP pool behind the PEPs.

PR 1 and PR 2 removed the per-decision and monitoring-plane hot paths, so
the single logical PDP evaluator is the remaining throughput ceiling.
This experiment deploys the ``federation-scale`` scenario — whose arrival
rate exceeds one evaluator's service rate — over planes of 1, 2 and 4
shards with a *serialized* evaluator model (each decision occupies its
shard for a fixed service time, so the single-evaluator ceiling is real
rather than simulated away) and measures simulated decisions/sec from
first arrival to last enforcement.

Shape assertions:

- throughput scales with shard count: ≥2× decisions/sec at 4 shards vs
  the single-evaluator plane (simulated time, so the bar is
  machine-independent and applies to smoke runs too);
- a differential arm runs full monitored federations (DRAMS on, deployed
  service model) under ``SinglePdpPlane`` and ``ShardedPdpPlane`` and
  pins every (request → decision, obligations, status) tuple and the
  DRAMS alert stream bit-identical — sharding is topology, never
  semantics;
- no request times out in any arm.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from benchmarks.common import bench_drams_config, write_json_report
from repro.accesscontrol.plane import ShardedPdpPlane, SinglePdpPlane
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import federation_scale_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REQUESTS = 150 if SMOKE else 400
DIFF_REQUESTS = 24 if SMOKE else 48
SCALING_FLOOR = 2.0  # at 4 shards vs 1 — simulated time, machine-independent

#: Uniform service model for the throughput arms: every decision occupies
#: its shard for 10 ms (a 100 decisions/sec evaluator), far below the
#: scenario's 2 500/s arrival rate, so one shard saturates and added
#: shards convert directly into throughput.
SERVICE_KWARGS = {
    "base_processing_delay": 0.01,
    "per_rule_delay": 0.0,
    "serialize_evaluations": True,
}

THROUGHPUT_ARMS = (
    ("single", 1),
    ("sharded-2", 2),
    ("sharded-4", 4),
)


def make_plane(shards, cache_policy="shared", service_kwargs=None):
    if shards == 1:
        return SinglePdpPlane(service_kwargs=service_kwargs)
    return ShardedPdpPlane(
        shards=shards, cache_policy=cache_policy, service_kwargs=service_kwargs
    )


def run_throughput_arm(shards):
    reset_id_counter()
    stack = MonitoredFederation.build(
        federation_scale_scenario(),
        clouds=2,
        seed=77,
        with_drams=False,
        plane=make_plane(shards, service_kwargs=dict(SERVICE_KWARGS)),
    )
    stack.issue_requests(REQUESTS)
    stack.run(until=600.0)
    assert len(stack.outcomes) == REQUESTS, f"{shards}-shard arm lost requests"
    timeouts = sum(pep.timeouts for pep in stack.peps.values())
    assert timeouts == 0, f"{shards}-shard arm timed out {timeouts} requests"
    first = min(o.requested_at for o in stack.outcomes)
    last = max(o.enforced_at for o in stack.outcomes)
    makespan = last - first
    served = [service.requests_served for service in stack.pdp_services]
    return {
        "rate": REQUESTS / makespan if makespan > 0 else float("inf"),
        "makespan": makespan,
        "served": served,
        "failovers": sum(pep.failovers for pep in stack.peps.values()),
    }


def run_differential_arm(plane_factory):
    """Full monitored run; returns semantic fingerprint of its behaviour."""
    reset_id_counter()
    stack = MonitoredFederation.build(
        federation_scale_scenario(),
        clouds=2,
        seed=78,
        with_drams=True,
        drams_config=bench_drams_config(),
        plane=plane_factory(),
    )
    stack.start()
    stack.issue_requests(DIFF_REQUESTS)
    stack.run(until=30.0)
    assert len(stack.outcomes) == DIFF_REQUESTS
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    # Request ids are minted in topology-dependent order, so key each
    # outcome on its (arrival time, request content) instead — both are
    # generator-driven and identical across planes.
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(alert.alert_type.value for alert in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts}


def test_e11_decision_plane(report):
    rows = []
    json_rows = []
    rates = {}
    for arm, shards in THROUGHPUT_ARMS:
        result = run_throughput_arm(shards)
        rates[arm] = result["rate"]
        served = result["served"]
        rows.append(
            {
                "arm": arm,
                "shards": shards,
                "sim_decisions_per_s": round(result["rate"], 1),
                "speedup": round(result["rate"] / rates["single"], 2),
                "makespan_s": round(result["makespan"], 2),
                "shard_load": "/".join(str(count) for count in served),
                "failovers": result["failovers"],
            }
        )
        json_rows.append(
            {
                "arm": arm,
                "shards": shards,
                "sim_decisions_per_s": result["rate"],
                "makespan_s": result["makespan"],
                "served": served,
                "failovers": result["failovers"],
            }
        )

    # Differential arms: topology changes, semantics must not.
    single = run_differential_arm(lambda: SinglePdpPlane())
    for cache_policy in ("shared", "partitioned"):
        sharded = run_differential_arm(
            lambda: ShardedPdpPlane(shards=4, cache_policy=cache_policy)
        )
        assert sharded["decisions"] == single["decisions"], (
            f"sharded plane ({cache_policy}) diverged from the single evaluator"
        )
        assert sharded["alerts"] == single["alerts"], (
            f"sharded plane ({cache_policy}) changed the DRAMS alert stream"
        )

    mode = ", smoke" if SMOKE else ""
    table = format_table(
        rows,
        title=(
            f"E11: decision-plane scaling ({REQUESTS} requests, "
            f"federation-scale, serialized evaluators{mode})"
        ),
    )
    report("e11_decision_plane", table)
    scaling = rates["sharded-4"] / rates["single"]
    write_json_report(
        "e11",
        {
            "rows": json_rows,
            "scaling_at_4_shards": scaling,
            "scaling_floor": SCALING_FLOOR,
            "differential_requests": DIFF_REQUESTS,
            "differential_alerts": single["alerts"],
        },
    )

    # Acceptance: the plane lifts the single-evaluator ceiling.
    assert scaling >= SCALING_FLOOR, (
        f"4-shard plane scaled only {scaling:.2f}x over one evaluator: {rates}"
    )
    assert rates["sharded-2"] > rates["single"], "2 shards did not beat one evaluator"
