"""E13 — elastic decision plane: runtime membership + smarter routing.

PR 3 gave the federation a sharded PDP pool, but a *static* one: shard
count fixed at build time, routing pure ring order.  This experiment
measures the two upgrades that make the pool operable under the
ROADMAP's "heavy traffic from millions of users" north star: shard
membership changes at runtime (``add_shard``/``drain_shard`` with
consistent-hash re-homing) and queue-aware dispatch (route around hot
shards instead of waiting out the per-attempt timeout).

The workload is the ``elastic-scale`` scenario — a civil-protection
flash crowd arriving in waves, with hot decision-cache keys concentrated
on the public alert feed — over serialized evaluators, so shard
occupancy is real and membership changes convert directly into makespan.

Shape assertions:

- **elasticity pays**: a pool that starts at 2 shards and adds 2 more
  between waves clears the same workload ≥1.25× faster than a pool stuck
  at 2 (simulated time, machine-independent);
- **drain is graceful**: draining a shard mid-run loses zero requests,
  causes zero timeouts, and the drained shard finishes its in-flight
  evaluations before leaving the network;
- **queue-aware beats ring order**: with hot keys pinning load to a few
  shards, busy-cursor routing clears the waves strictly faster than pure
  ring order;
- **monitoring never gaps**: a full DRAMS run with a mid-run add *and*
  drain raises zero alerts, and the Analyser independently re-derives
  every decision (nothing missed, nothing unattributed);
- **elasticity is topology, not semantics**: a differential arm pins the
  no-churn elastic plane (queue- and locality-aware routing enabled,
  membership untouched) bit-identical to the static sharded plane —
  every (request → decision, obligations, status) tuple and the DRAMS
  alert stream.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from benchmarks.common import bench_drams_config, write_json_report
from repro.accesscontrol.plane import ShardedPdpPlane
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import elastic_scale_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
#: The smoke size still has to *saturate* a 2-shard pool (≥ 1 s of queued
#: work per shard across the 1 s wave window) or the elasticity floor
#: becomes unmeasurable; shrink the differential arms instead.
WAVE_SIZE = 100 if SMOKE else 150
#: Flash crowd in bursts arriving faster than any arm drains them, so
#: membership changes and routing hit *standing* backlogs rather than an
#: idle pool (each wave itself bursts in at 3 000/s ≈ 50 ms).
WAVE_STARTS = (0.5, 1.0, 1.5)
SCALE_AT = 0.8  # membership changes land between wave 1 and wave 2
DIFF_REQUESTS = 24 if SMOKE else 48
ELASTIC_FLOOR = 1.25  # elastic 2→4 vs static-2, simulated time
QUEUE_FLOOR = 1.02  # queue-aware vs ring order, same static-4 pool

#: Uniform service model: every decision occupies its shard for 10 ms
#: (a 100 decisions/sec evaluator), far below the scenario's 3 000/s
#: burst arrival rate, so waves queue and membership changes matter.
SERVICE_KWARGS = {
    "base_processing_delay": 0.01,
    "per_rule_delay": 0.0,
    "serialize_evaluations": True,
}


def run_arm(plane, *, add_shards=0, drain_address=None):
    """Run the waved flash crowd over ``plane``; return shape metrics."""
    reset_id_counter()
    stack = MonitoredFederation.build(
        elastic_scale_scenario(),
        clouds=2,
        seed=91,
        with_drams=False,
        plane=plane,
    )
    drained_services = []

    def track_drains(event, service):
        if event == "draining":
            drained_services.append(service)

    plane.on_membership(track_drains)
    total = 0
    for start in WAVE_STARTS:
        stack.issue_requests(WAVE_SIZE, start_at=start)
        total += WAVE_SIZE
    for _ in range(add_shards):
        stack.add_pdp_shard(at=SCALE_AT)
    if drain_address is not None:
        stack.drain_pdp_shard(drain_address, at=SCALE_AT)
    stack.run(until=600.0)
    assert len(stack.outcomes) == total, "arm lost requests"
    timeouts = sum(pep.timeouts for pep in stack.peps.values())
    assert timeouts == 0, f"arm timed out {timeouts} requests"
    first = min(o.requested_at for o in stack.outcomes)
    last = max(o.enforced_at for o in stack.outcomes)
    makespan = last - first
    served = {service.address: service.requests_served for service in stack.pdp_services}
    for service in drained_services:
        served[service.address] = service.requests_served
    latencies = sorted(o.latency for o in stack.outcomes)
    return {
        "rate": total / makespan if makespan > 0 else float("inf"),
        "makespan": makespan,
        "served": served,
        "failovers": sum(pep.failovers for pep in stack.peps.values()),
        "p95_latency": latencies[int(0.95 * (len(latencies) - 1))],
        "stack": stack,
    }


def run_monitored_churn_arm():
    """Full DRAMS run with a mid-run add + drain; nothing may gap."""
    reset_id_counter()
    plane = ShardedPdpPlane(shards=2, drain_grace=0.5)
    stack = MonitoredFederation.build(
        elastic_scale_scenario(),
        clouds=2,
        seed=92,
        with_drams=True,
        drams_config=bench_drams_config(),
        plane=plane,
    )
    stack.start()
    stack.issue_requests(DIFF_REQUESTS, start_at=0.5)
    stack.issue_requests(DIFF_REQUESTS, start_at=3.0)
    stack.add_pdp_shard(at=2.0)
    stack.drain_pdp_shard("pdp-0@infrastructure", at=2.5)
    stack.run(until=60.0)
    total = 2 * DIFF_REQUESTS
    assert len(stack.outcomes) == total, "monitored churn arm lost requests"
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    analyser = stack.drams.analyser
    alerts = stack.drams.alerts.count()
    # Zero missed: every decision independently re-derived; zero
    # unattributed: no alert of any type was raised by the churn.
    assert alerts == 0, f"membership churn raised {alerts} alerts"
    assert analyser.checked == total, (
        f"analyser checked {analyser.checked}/{total} decisions across churn"
    )
    assert analyser.pending_correlations == 0
    drained = plane.draining()
    assert not drained, f"drained shard never quiesced: {drained}"
    return {
        "requests": total,
        "checked": analyser.checked,
        "alerts": alerts,
        "rebalances": plane.rebalances,
    }


def run_differential_arm(plane_factory):
    """Full monitored run; returns semantic fingerprint of its behaviour."""
    reset_id_counter()
    stack = MonitoredFederation.build(
        elastic_scale_scenario(),
        clouds=2,
        seed=93,
        with_drams=True,
        drams_config=bench_drams_config(),
        plane=plane_factory(),
    )
    stack.start()
    stack.issue_requests(DIFF_REQUESTS)
    stack.run(until=30.0)
    assert len(stack.outcomes) == DIFF_REQUESTS
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(alert.alert_type.value for alert in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts}


def test_e13_elastic_plane(report):
    arms = {
        "static-2": lambda: (
            ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS)),
            {},
        ),
        "static-4": lambda: (
            ShardedPdpPlane(shards=4, service_kwargs=dict(SERVICE_KWARGS)),
            {},
        ),
        "elastic-2to4": lambda: (
            ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS)),
            {"add_shards": 2},
        ),
        "elastic-drain": lambda: (
            ShardedPdpPlane(shards=4, service_kwargs=dict(SERVICE_KWARGS)),
            {"drain_address": "pdp-3@infrastructure"},
        ),
        "ring-4": lambda: (
            ShardedPdpPlane(shards=4, service_kwargs=dict(SERVICE_KWARGS)),
            {},
        ),
        "queue-4": lambda: (
            ShardedPdpPlane(shards=4, queue_aware=True, service_kwargs=dict(SERVICE_KWARGS)),
            {},
        ),
    }
    rows = []
    json_rows = []
    results = {}
    for arm, factory in arms.items():
        plane, kwargs = factory()
        result = run_arm(plane, **kwargs)
        results[arm] = result
        rows.append(
            {
                "arm": arm,
                "sim_decisions_per_s": round(result["rate"], 1),
                "makespan_s": round(result["makespan"], 2),
                "p95_latency_s": round(result["p95_latency"], 3),
                "shard_load": "/".join(str(n) for _, n in sorted(result["served"].items())),
                "failovers": result["failovers"],
            }
        )
        json_rows.append(
            {
                "arm": arm,
                "sim_decisions_per_s": result["rate"],
                "makespan_s": result["makespan"],
                "p95_latency_s": result["p95_latency"],
                "served": result["served"],
                "failovers": result["failovers"],
            }
        )

    churn = run_monitored_churn_arm()

    # Differential: routing upgrades on, membership untouched — topology
    # changed, semantics must not.
    static = run_differential_arm(lambda: ShardedPdpPlane(shards=4))
    elastic = run_differential_arm(
        lambda: ShardedPdpPlane(shards=4, queue_aware=True, locality_aware=True)
    )
    assert elastic["decisions"] == static["decisions"], (
        "no-churn elastic plane diverged from the static sharded plane"
    )
    assert elastic["alerts"] == static["alerts"], (
        "no-churn elastic plane changed the DRAMS alert stream"
    )

    mode = ", smoke" if SMOKE else ""
    table = format_table(
        rows,
        title=(
            f"E13: elastic decision plane ({3 * WAVE_SIZE} requests in "
            f"{len(WAVE_STARTS)} waves, elastic-scale, serialized "
            f"evaluators{mode})"
        ),
    )
    report("e13_elastic_plane", table)

    elasticity = results["elastic-2to4"]["rate"] / results["static-2"]["rate"]
    queue_gain = results["queue-4"]["rate"] / results["ring-4"]["rate"]
    write_json_report(
        "e13",
        {
            "rows": json_rows,
            "elastic_speedup_vs_static2": elasticity,
            "elastic_floor": ELASTIC_FLOOR,
            "queue_aware_speedup_vs_ring": queue_gain,
            "queue_floor": QUEUE_FLOOR,
            "monitored_churn": churn,
            "differential_requests": DIFF_REQUESTS,
            "differential_alerts": static["alerts"],
        },
    )

    # Acceptance: membership changes convert into throughput …
    assert elasticity >= ELASTIC_FLOOR, f"elastic 2→4 scaled only {elasticity:.2f}x over static-2"
    # … draining sheds a shard without losing requests or ground …
    assert "pdp-3@infrastructure" in results["elastic-drain"]["served"]
    assert results["elastic-drain"]["rate"] > results["static-2"]["rate"], (
        "a drained 4-shard pool should still beat a 2-shard pool"
    )
    # … and busy-cursor routing beats waiting out hot shards.
    assert queue_gain >= QUEUE_FLOOR, (
        f"queue-aware routing gained only {queue_gain:.3f}x over ring order: "
        f"{results['ring-4']['served']} vs {results['queue-4']['served']}"
    )
