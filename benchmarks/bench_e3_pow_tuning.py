"""E3 — "all PoW parameters can be dynamically tuned ... latency under control".

Two parts:

1. **Difficulty sweep (simulated mining)**: with fixed aggregate hashrate,
   raising the difficulty stretches the block interval and with it the
   log-commit latency — the knob a private federation chain exposes.
2. **Cross-validation (real mining)**: grinds genuine SHA-256 nonces at
   several difficulties and checks the measured work against the
   ``expected_hashes`` model that the simulated mode's timing is built on.
   This ties the simulator's statistics to real proof-of-work.
"""

import time

from benchmarks.common import bench_chain_config, bench_drams_config, build_stack, mean
from repro.blockchain.block import BlockHeader
from repro.blockchain.pow import expected_hashes, grind_nonce, meets_target, retarget
from repro.metrics.tables import format_table

DIFFICULTIES = [8.0, 10.0, 12.0, 14.0]
HASHRATE = 1024.0  # per node, 5 nodes total
REQUESTS = 12


def run_at_difficulty(bits: float, seed: int) -> dict:
    config = bench_drams_config(
        chain=bench_chain_config(difficulty_bits=bits,
                                 target_block_interval=0.5),
        node_hashrate=HASHRATE)
    stack = build_stack(seed=seed, drams_config=config)
    stack.issue_requests(REQUESTS)
    horizon = max(120.0, expected_hashes(bits) / HASHRATE * 40)
    stack.run(until=horizon)
    chain = stack.drams.reference_chain()
    blocks = chain.main_chain()
    intervals = [b.header.timestamp - a.header.timestamp
                 for a, b in zip(blocks[1:], blocks[2:])]
    commits = stack.drams.commit_latencies()
    total_mined = sum(node.blocks_mined for node in stack.drams.nodes.values())
    return {
        "difficulty_bits": bits,
        "mean_block_interval_s": round(mean(intervals), 2),
        "commit_mean_s": round(mean(commits), 2) if commits else float("nan"),
        "stale_blocks": total_mined - chain.height,
        "reorgs": chain.reorgs,
        "logs_final": len(commits),
    }


def test_e3_difficulty_controls_latency(report, benchmark):
    rows = [run_at_difficulty(bits, seed=30 + i)
            for i, bits in enumerate(DIFFICULTIES)]
    table = format_table(
        rows, title="E3a: PoW difficulty vs block interval and commit latency "
                     "(5 nodes x 1024 H/s, simulated mining)")
    report("e3_pow_tuning", table)

    intervals = [row["mean_block_interval_s"] for row in rows]
    assert intervals[-1] > intervals[0] * 4, \
        "higher difficulty must stretch block intervals"
    commits = [row["commit_mean_s"] for row in rows]
    assert commits[-1] > commits[0], \
        "commit latency follows the block interval"

    benchmark.pedantic(lambda: run_at_difficulty(10.0, seed=77),
                       rounds=2, iterations=1)


def test_e3_real_grind_matches_statistical_model(report, benchmark):
    """Real SHA-256 grinding: measured attempts ~ expected_hashes(bits)."""
    rows = []
    for bits in (8.0, 10.0, 12.0, 14.0):
        attempts_per_trial = []
        elapsed = 0.0
        trials = 10
        for trial in range(trials):
            header = BlockHeader(height=1, prev_hash=f"{trial:064x}",
                                 merkle_root="m" * 64, timestamp=float(trial),
                                 difficulty_bits=bits, miner=f"bench-{trial}")
            started = time.perf_counter()
            found = grind_nonce(header.bytes_for_nonce, bits)
            elapsed += time.perf_counter() - started
            assert found is not None
            nonce, digest, attempts = found
            assert meets_target(digest, bits)
            attempts_per_trial.append(attempts)
        measured = mean(attempts_per_trial)
        expected = expected_hashes(bits)
        rows.append({
            "difficulty_bits": bits,
            "expected_hashes": int(expected),
            "measured_mean_hashes": int(measured),
            "ratio": round(measured / expected, 2),
            "wall_ms_per_block": round(elapsed / trials * 1000, 1),
        })
    table = format_table(
        rows, title="E3b: real PoW grinding vs the statistical model")
    report("e3_pow_tuning", table)

    # Exponential variance is large with 6 trials; accept a broad band but
    # require the trend (each +2 bits ~ 4x work) to show.
    assert rows[-1]["measured_mean_hashes"] > rows[0]["measured_mean_hashes"] * 8

    def grind_once():
        header = BlockHeader(height=1, prev_hash="ab" * 32, merkle_root="m" * 64,
                             timestamp=0.0, difficulty_bits=10.0, miner="bench")
        return grind_nonce(header.bytes_for_nonce, 10.0)

    benchmark(grind_once)


def test_e3_retargeting_steers_interval(report, benchmark):
    """Dynamic tuning: the retarget rule drives intervals to the target."""
    benchmark(lambda: retarget(10.0, actual_interval=0.4, target_interval=1.0))
    config = bench_drams_config(
        chain=bench_chain_config(difficulty_bits=8.0,
                                 target_block_interval=1.0,
                                 retarget_window=8),
        node_hashrate=4096.0)  # deliberately too fast for 8 bits
    stack = build_stack(seed=41, drams_config=config)
    stack.run(until=240.0)
    chain = stack.drams.reference_chain()
    blocks = chain.main_chain()
    assert len(blocks) > 40
    early = [b.header.timestamp - a.header.timestamp
             for a, b in zip(blocks[1:9], blocks[2:10])]
    late = [b.header.timestamp - a.header.timestamp
            for a, b in zip(blocks[-12:], blocks[-11:])]
    first_difficulty = blocks[1].header.difficulty_bits
    last_difficulty = blocks[-1].header.difficulty_bits
    table = format_table([
        {"phase": "first window", "mean_interval_s": round(mean(early), 3),
         "difficulty_bits": round(first_difficulty, 2)},
        {"phase": "steady state", "mean_interval_s": round(mean(late), 3),
         "difficulty_bits": round(last_difficulty, 2)},
    ], title="E3c: difficulty retargeting toward a 1s block interval")
    report("e3_pow_tuning", table)
    assert last_difficulty > first_difficulty
    assert abs(mean(late) - 1.0) < abs(mean(early) - 1.0)
