"""E7 — monitoring overhead and federation-size scalability.

The architecture adds probes, per-tenant Logging Interfaces and a
blockchain to a working access control system; this experiment measures
what that costs:

- **overhead arm**: end-to-end access latency with monitoring off vs on
  (the probes are asynchronous, so enforcement latency should be nearly
  unchanged — the cost appears as network/chain load, not user latency);
- **scalability arm**: federation size sweep (2..5 clouds), reporting
  access latency, log-commit latency and chain throughput as tenants are
  added.
"""

from benchmarks.common import bench_drams_config, mean, p95
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import healthcare_scenario

REQUESTS = 30


def run_arm(with_drams: bool, clouds: int, seed: int) -> dict:
    stack = MonitoredFederation.build(
        healthcare_scenario(), clouds=clouds, seed=seed,
        with_drams=with_drams,
        drams_config=bench_drams_config() if with_drams else None)
    stack.start()
    stack.issue_requests(REQUESTS)
    stack.run(until=90.0)
    latencies = stack.access_latencies()
    assert len(latencies) == REQUESTS
    row = {
        "config": f"{clouds} clouds, monitoring "
                  f"{'ON' if with_drams else 'off'}",
        "access_p50_ms": round(sorted(latencies)[len(latencies) // 2] * 1000, 2),
        "access_p95_ms": round(p95(latencies) * 1000, 2),
        "wire_MB": round(stack.federation.network.stats.bytes_sent / 1e6, 2),
    }
    if with_drams:
        commits = stack.drams.commit_latencies()
        row["log_commit_mean_s"] = round(mean(commits), 2)
        row["chain_height"] = stack.drams.reference_chain().height
    else:
        row["log_commit_mean_s"] = "-"
        row["chain_height"] = "-"
    return row


def test_e7_monitoring_overhead(report, benchmark):
    off = run_arm(with_drams=False, clouds=2, seed=70)
    on = run_arm(with_drams=True, clouds=2, seed=70)
    table = format_table([off, on],
                         title="E7a: access latency with monitoring off/on")
    report("e7_overhead_scalability", table)

    # Shape: the probes are fire-and-forget, so the enforcement path must
    # not slow down materially (allow 25% margin for event interleaving),
    # while the monitoring traffic dominates the wire bytes.
    assert on["access_p50_ms"] < off["access_p50_ms"] * 1.25
    assert on["wire_MB"] > off["wire_MB"] * 2

    benchmark.pedantic(lambda: run_arm(True, 2, seed=71),
                       rounds=2, iterations=1)


def test_e7_federation_size_sweep(report, benchmark):
    rows = [run_arm(with_drams=True, clouds=clouds, seed=72 + clouds)
            for clouds in (2, 3, 4, 5)]
    table = format_table(rows, title="E7b: federation size scalability "
                                     f"({REQUESTS} requests)")
    report("e7_overhead_scalability", table)

    # Shape 1: access latency stays flat as tenants join (the PDP is the
    # only shared component and it is not saturated here).
    p50s = [row["access_p50_ms"] for row in rows]
    assert max(p50s) < min(p50s) * 1.6
    # Shape 2: chain load (wire bytes) grows with federation size —
    # gossip fan-out plus more logging interfaces.
    assert rows[-1]["wire_MB"] > rows[0]["wire_MB"]

    benchmark.pedantic(lambda: run_arm(True, 4, seed=99),
                       rounds=1, iterations=1)
