"""E4 — "a lightweight PoW ... does not ensure strong integrity guarantees".

Quantifies the warning: an insider controlling a fraction of the
federation's hashrate tries to rewrite a committed log entry buried z
blocks deep.  The table reports the Monte-Carlo success rate (the same
memoryless mining model the simulated nodes use) next to the closed-form
Nakamoto probability; the two must agree, and the qualitative shape —
small private networks with cheap PoW are rewritable, depth and honest
majority restore safety — is the paper's point.
"""

import pytest

from repro.common.rng import SeededRng
from repro.metrics.tables import format_table
from repro.threats.chain_attacks import (
    nakamoto_success_probability,
    simulate_rewrite_race,
)

FRACTIONS = [0.10, 0.25, 0.33, 0.45]
DEPTHS = [1, 3, 6]
TRIALS = 3000


def test_e4_rewrite_probability_surface(report, benchmark):
    rng = SeededRng(404, "e4")
    rows = []
    for fraction in FRACTIONS:
        for depth in DEPTHS:
            result = simulate_rewrite_race(rng, fraction, depth, trials=TRIALS)
            formula = nakamoto_success_probability(fraction, depth)
            rows.append({
                "attacker_hashrate": f"{fraction:.0%}",
                "depth_blocks": depth,
                "mc_success": round(result.success_rate, 4),
                "nakamoto_formula": round(formula, 4),
                "mean_race_blocks": round(result.mean_race_blocks, 1),
            })
            # Cross-validation: the simulator's mining model reproduces
            # the analytical result.
            assert result.success_rate == pytest.approx(formula, abs=0.035)
    table = format_table(
        rows, title=f"E4: log-rewrite success probability "
                    f"({TRIALS} Monte-Carlo races per cell)")
    report("e4_integrity_attack", table)

    by_cell = {(row["attacker_hashrate"], row["depth_blocks"]): row["mc_success"]
               for row in rows}
    # Shape 1: deeper burial always helps.
    for fraction in FRACTIONS:
        key = f"{fraction:.0%}"
        assert by_cell[(key, 6)] <= by_cell[(key, 1)]
    # Shape 2: a 10% attacker is near-powerless at depth 6; a 45% attacker
    # is dangerous at any depth — the "weak integrity" the paper warns of.
    assert by_cell[("10%", 6)] < 0.01
    assert by_cell[("45%", 6)] > 0.3

    benchmark.pedantic(
        lambda: simulate_rewrite_race(SeededRng(1, "bench"), 0.25, 3,
                                      trials=500),
        rounds=3, iterations=1)


def test_e4_confirmation_policy_recommendation(report, benchmark):
    """Derived table: confirmations needed to push risk under thresholds."""
    rows = []
    for fraction in (0.10, 0.20, 0.30):
        depths_needed = {}
        for threshold in (0.01, 0.001):
            depth = 0
            while nakamoto_success_probability(fraction, depth) > threshold:
                depth += 1
                if depth > 500:
                    break
            depths_needed[threshold] = depth
        rows.append({
            "attacker_hashrate": f"{fraction:.0%}",
            "confirmations_for_1%": depths_needed[0.01],
            "confirmations_for_0.1%": depths_needed[0.001],
        })
    table = format_table(
        rows, title="E4b: confirmation depth needed per attacker strength")
    report("e4_integrity_attack", table)
    needed = [row["confirmations_for_1%"] for row in rows]
    assert needed == sorted(needed), "stronger attackers need more depth"

    benchmark(lambda: nakamoto_success_probability(0.3, 12))
