"""E15 — fault injection: scripted chaos, recovery SLOs, detection under fire.

The earlier experiments measured the monitored federation on a fabric
that never failed.  This one turns the fabric hostile with the
:mod:`repro.faults` plane and asks the paper's resilience question the
hard way: does decentralised runtime monitoring stay *sound* (every
attack still detected) and *precise* (zero alerts attributed to the
chaos itself) while shards crash, links lose traffic and chain nodes
drop off the network mid-run?

Four arms:

1. **Differential** — the fault plane armed with an *empty* plan against
   no fault plane at all, same seed, full DRAMS: every (request →
   decision, obligations, status) tuple and the alert stream must be bit
   identical.  The machinery is free until a plan actually says
   otherwise.
2. **Loss sweep** — increasing per-link loss between PEPs and shards,
   with :class:`~repro.accesscontrol.pep.RetryBackoff` failover.
   Graceful degradation: every request resolves (no hangs), latency
   stays inside the whole-request bound, re-routing grows with the loss
   rate instead of falling over.
3. **Detection under chaos** — the full ten-attack catalogue, each run
   twice: once calm, once under a mid-run partition + PDP-shard crash +
   chain-node crash plan.  Bars: 10/10 detected in both runs, zero
   unattributed alerts in both, every crashed component recovers inside
   the plan's heal window, and the rejoined chain node converges on the
   reference head without forking.  The per-attack latency delta is the
   *detection latency inflation* the chaos costs.
4. **Crash/restart cache recovery** — a partitioned-cache shard is
   crashed (losing its decision cache) and restarted; the donor re-warm
   path must repopulate it from the survivors.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from benchmarks.common import bench_drams_config, write_json_report
from repro.accesscontrol.pep import RetryBackoff
from repro.accesscontrol.plane import ShardedPdpPlane
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.faults import FaultPlan, crash, link_degrade, partition
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.policydist import ReplicatedPrpPlane
from repro.threats.adversary import Adversary
from repro.threats.attacks import (
    CircumventionAttack,
    DecisionTamperAttack,
    EvaluationTamperAttack,
    LogTamperAttack,
    PolicySwapAttack,
    ProbeSuppressionAttack,
    ReplayAttack,
    RequestTamperAttack,
    StalePolicyReplayAttack,
    TamperedPrpReplicaAttack,
)
from repro.workload.scenarios import partition_storm_scenario
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
DIFF_REQUESTS = 24 if SMOKE else 48
SWEEP_REQUESTS = 40 if SMOKE else 80
LOSS_RATES = (0.0, 0.1, 0.3) if SMOKE else (0.0, 0.1, 0.3, 0.5)
#: Monitored-arm traffic arrives in waves pinned to the fault timeline,
#: so every fault window sees live decisions (the storm scenario's
#: arrival process would finish before the first fault otherwise).
WAVE_STARTS = (0.1, 0.9, 1.4, 2.4, 3.2)
WAVE_SIZE = 8 if SMOKE else 12
CHAOS_HORIZON = 45.0 if SMOKE else 60.0
ATTACK_AT = 1.2  # mid-partition: detection must work through the storm
#: Every component the plan crashes is restarted by t=3.0; recovery must
#: complete within this much simulated time after its restart.
TTR_BOUND = 5.0

#: The scripted storm of arm 3.  Windows are disjoint per victim so every
#: PEP keeps at least one reachable shard at all times — a PEP with *no*
#: escape route times out, and a timed-out decision has no complete
#: monitor record to attribute.
def storm_plan(shard_a: str, shard_b: str) -> FaultPlan:
    return FaultPlan(
        name="partition-storm",
        events=(
            partition(["pep@tenant-2"], [shard_a], at=0.6, heal_at=1.8),
            crash("bcnode@tenant-2", at=1.0, restart_at=2.0),
            crash(shard_b, at=2.2, restart_at=3.0),
        ),
    )


def storm_backoff():
    return {
        "request_timeout": 1.0,
        "backoff": RetryBackoff(base=0.2, cap=0.5),
    }


def rogue_policy_document():
    return policy_to_dict(
        Policy(
            policy_id="rogue-permit-all",
            rule_combining="permit-overrides",
            rules=[Rule("allow-everything", Effect.PERMIT)],
        )
    )


def attack_suite():
    """The full ten-class catalogue (E6 + E12), storm-scenario-tuned."""
    return [
        ("request-tamper", lambda: RequestTamperAttack(
            "tenant-1", escalated_value="commander"), False),
        ("decision-tamper", lambda: DecisionTamperAttack("tenant-2"), False),
        ("pdp-circumvention", lambda: CircumventionAttack("tenant-1"), False),
        ("evaluation-tamper", lambda: EvaluationTamperAttack(), False),
        ("policy-swap", lambda: PolicySwapAttack(rogue_policy_document()), False),
        ("probe-suppression", lambda: ProbeSuppressionAttack("pep:tenant-1"), False),
        ("log-tamper", lambda: LogTamperAttack("tenant-1"), False),
        ("replay", lambda: ReplayAttack("tenant-1"), False),
        ("stale-policy-replay", lambda: StalePolicyReplayAttack(), True),
        ("tampered-prp-replica", lambda: TamperedPrpReplicaAttack(
            rogue_policy_document()), False),
    ]


def variant_document(generation: int) -> dict:
    """A fingerprint-distinct, decision-identical storm policy revision.

    The stale-policy-replay attack only becomes visible once the
    federation has published past the staleness bound, so its runs need
    churn — but churn that *changes decisions* would differ between the
    calm and chaotic arms for timing reasons alone.  Re-stamping the
    description rotates the fingerprint and nothing else.
    """
    document = dict(partition_storm_scenario().policy_document)
    document["description"] = (
        f"{document.get('description', '')} [rev {generation}]"
    )
    return document


# -- arm 1: differential -----------------------------------------------------------


def run_differential_arm(with_fault_plane: bool):
    reset_id_counter()
    stack = MonitoredFederation.build(
        partition_storm_scenario(),
        clouds=2,
        seed=93,
        with_drams=True,
        drams_config=bench_drams_config(),
    )
    stack.start()
    if with_fault_plane:
        controller = stack.inject_faults(FaultPlan(name="empty"))
    stack.issue_requests(DIFF_REQUESTS)
    stack.run(until=30.0)
    assert len(stack.outcomes) == DIFF_REQUESTS
    if with_fault_plane:
        assert controller.applied == []
        assert controller.recorder.slos()["faults"] == []
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(alert.alert_type.value for alert in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts,
            "chain_head": stack.drams.reference_chain().head.hash}


# -- arm 2: loss sweep -------------------------------------------------------------


def run_loss_arm(loss: float):
    reset_id_counter()
    plane = ShardedPdpPlane(shards=2)
    stack = MonitoredFederation.build(
        partition_storm_scenario(),
        clouds=2,
        seed=61,
        with_drams=False,
        plane=plane,
        pep_kwargs=storm_backoff(),
    )
    if loss > 0:
        controller = stack.inject_faults(FaultPlan(
            name=f"loss-{loss}",
            events=tuple(
                link_degrade([pep.address], [service.address],
                             at=0.0, loss=loss, symmetric=True)
                for pep in stack.peps.values()
                for service in plane.services
            ),
        ))
        assert len(controller.applied) == 0  # nothing fired yet
    stack.issue_requests(SWEEP_REQUESTS, start_at=0.1)
    stack.run(until=30.0)
    outcomes = stack.outcomes
    assert len(outcomes) == SWEEP_REQUESTS, f"requests hung at loss={loss}"
    bound = storm_backoff()["request_timeout"] + 1e-6
    assert all(o.latency <= bound for o in outcomes), (
        f"latency escaped the whole-request bound at loss={loss}"
    )
    latencies = sorted(o.latency for o in outcomes)
    return {
        "loss": loss,
        "resolved": len(outcomes),
        "granted": sum(1 for o in outcomes if o.granted),
        "timeouts": sum(pep.timeouts for pep in stack.peps.values()),
        "failovers": sum(pep.failovers for pep in stack.peps.values()),
        "p95_latency_s": latencies[int(0.95 * (len(latencies) - 1))],
    }


# -- arm 3: detection under chaos --------------------------------------------------


def run_attack_arm(make_attack, *, chaotic: bool, publish_variants: bool, seed: int):
    reset_id_counter()
    plane = ShardedPdpPlane(shards=2)
    stack = MonitoredFederation.build(
        partition_storm_scenario(),
        clouds=2,
        seed=seed,
        with_drams=True,
        drams_config=bench_drams_config(),
        plane=plane,
        policy_plane=ReplicatedPrpPlane(propagation_delay=0.2,
                                        propagation_jitter=0.05),
        pep_kwargs=storm_backoff(),
    )
    stack.start()
    shard_a, shard_b = (service.address for service in plane.services)
    controller = stack.inject_faults(
        storm_plan(shard_a, shard_b) if chaotic else FaultPlan(name="calm")
    )
    adversary = Adversary(stack.drams)
    attack = make_attack()
    adversary.launch(attack, at=ATTACK_AT)
    if isinstance(attack, ReplayAttack):
        # The replay is a discrete act, not an installed interceptor:
        # fire it after the storm heals, with the captured envelope.
        stack.sim.schedule_at(4.0, lambda: attack.replay_now(
            stack.drams, {"subject-id": "mallory", "role": "commander"}))
    for start in WAVE_STARTS:
        stack.issue_requests(WAVE_SIZE, start_at=start)
    if publish_variants:
        for generation in (1, 2, 3):
            stack.publish_policy(variant_document(generation),
                                 at=1.4 + 0.4 * generation)
    stack.run(until=CHAOS_HORIZON)
    total = len(WAVE_STARTS) * WAVE_SIZE
    assert len(stack.outcomes) == total, "chaos lost decisions outright"
    record = adversary.records()[0]
    slos = controller.recorder.slos()
    node = stack.drams.nodes["tenant-2"]
    result = {
        "chaotic": chaotic,
        "detected": record.detected,
        "latency": record.detection_latency,
        "false_positives": len(adversary.false_positives()),
        "timeouts": sum(pep.timeouts for pep in stack.peps.values()),
        "failovers": sum(pep.failovers for pep in stack.peps.values()),
        "slos": slos,
    }
    if chaotic:
        # Every crashed component recovered, promptly, and the rejoined
        # chain node sits on the reference head — no fork.
        assert len(slos["recoveries"]) == 2, (
            f"recoveries incomplete: {slos['recoveries']}"
        )
        assert slos["watches_outstanding"] == 0
        assert slos["max_ttr"] <= TTR_BOUND, f"slow recovery: {slos}"
        assert not node.crashed and not node._syncing
        assert node.resyncs == 1
        # No fork: the rejoined node's head and the reference head lie on
        # one chain (either may lead by a block still propagating).
        reference = stack.drams.reference_chain()
        assert (reference.has_block(node.chain.head.hash)
                or node.chain.has_block(reference.head.hash)), "chain forked"
        assert not plane.crashed(), "a crashed shard never restarted"
    return result


# -- arm 4: crash/restart cache recovery -------------------------------------------


def run_cache_recovery_arm():
    reset_id_counter()
    plane = ShardedPdpPlane(shards=3, cache_policy="partitioned")
    stack = MonitoredFederation.build(
        partition_storm_scenario(),
        clouds=2,
        seed=71,
        with_drams=False,
        plane=plane,
        pep_kwargs=storm_backoff(),
    )
    victim = plane.services[0]
    controller = stack.inject_faults(FaultPlan(
        name="cache-recovery",
        events=(crash(victim.address, at=1.0, restart_at=2.5),),
    ))
    # Warm every cache, keep traffic flowing through the outage (the
    # survivors absorb the crashed arc and become donors), then land a
    # final wave on the re-warmed shard.
    for start in (0.1, 1.2, 2.7):
        stack.issue_requests(SWEEP_REQUESTS, start_at=start)
    stack.run(until=30.0)
    assert len(stack.outcomes) == 3 * SWEEP_REQUESTS
    assert victim.crashes == 1 and not victim.crashed
    assert len(victim.decision_cache) > 0, "restart did not re-warm the cache"
    slos = controller.recorder.slos()
    assert len(slos["recoveries"]) == 1
    return {
        "evaluations_lost": victim.evaluations_lost,
        "warmed_entries": plane.warmed_entries,
        "cache_entries_after_restart": len(victim.decision_cache),
        "shard_ttr_s": slos["recoveries"][0]["ttr"],
        "timeouts": sum(pep.timeouts for pep in stack.peps.values()),
        "failovers": sum(pep.failovers for pep in stack.peps.values()),
    }


def test_e15_faults(report):
    # -- differential: the armed-but-empty fault plane is invisible --------
    plain = run_differential_arm(with_fault_plane=False)
    armed = run_differential_arm(with_fault_plane=True)
    assert plain["decisions"] == armed["decisions"], (
        "an empty fault plan changed decision behaviour"
    )
    assert plain["alerts"] == armed["alerts"]
    assert plain["chain_head"] == armed["chain_head"], (
        "an empty fault plan changed the monitored chain"
    )

    # -- loss sweep: degradation is graceful -------------------------------
    sweep_rows = [run_loss_arm(loss) for loss in LOSS_RATES]
    assert sweep_rows[0]["timeouts"] == 0 and sweep_rows[0]["failovers"] == 0
    assert sweep_rows[-1]["failovers"] > 0, (
        "heavy loss produced no failover re-routing at all"
    )

    # -- detection under chaos ---------------------------------------------
    attack_rows = []
    for index, (name, make_attack, publish_variants) in enumerate(attack_suite()):
        calm = run_attack_arm(make_attack, chaotic=False,
                              publish_variants=publish_variants,
                              seed=101 + index)
        stormy = run_attack_arm(make_attack, chaotic=True,
                                publish_variants=publish_variants,
                                seed=101 + index)
        assert calm["detected"], f"{name} went undetected on a calm fabric"
        assert stormy["detected"], f"{name} went undetected under the storm"
        assert calm["false_positives"] == 0, (
            f"{name}: calm run raised unattributed alerts"
        )
        assert stormy["false_positives"] == 0, (
            f"{name}: the chaos itself raised unattributed alerts"
        )
        assert stormy["timeouts"] == 0, (
            f"{name}: the storm starved a request of every escape route"
        )
        inflation = (
            stormy["latency"] - calm["latency"]
            if stormy["latency"] is not None and calm["latency"] is not None
            else None
        )
        attack_rows.append({
            "attack": name,
            "calm_latency_s": round(calm["latency"], 2),
            "storm_latency_s": round(stormy["latency"], 2),
            "inflation_s": round(inflation, 2) if inflation is not None else "-",
            "storm_failovers": stormy["failovers"],
            "storm_max_ttr_s": round(stormy["slos"]["max_ttr"], 2),
        })

    # -- crash/restart cache recovery --------------------------------------
    recovery = run_cache_recovery_arm()
    assert recovery["warmed_entries"] > 0

    report("e15", "\n\n".join([
        format_table(
            [{**row, "p95_latency_s": round(row["p95_latency_s"], 3)}
             for row in sweep_rows],
            title="E15a — link-loss sweep (PEP failover with decorrelated backoff)",
        ),
        format_table(
            attack_rows,
            title="E15b — ten-attack detection, calm vs partition-storm chaos",
        ),
        format_table(
            [{**recovery, "shard_ttr_s": round(recovery["shard_ttr_s"], 3)}],
            title="E15c — crashed-shard cache recovery",
        ),
    ]))
    write_json_report("e15", {
        "differential_identical": plain == armed,
        "loss_sweep": sweep_rows,
        "attacks": attack_rows,
        "cache_recovery": recovery,
        "smoke": SMOKE,
    })
