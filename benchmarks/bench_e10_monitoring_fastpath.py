"""E10 — monitoring-plane fast path: monitored decisions/sec per layer.

PR 1 made the PDP 2–4× faster, which moved the throughput ceiling into the
monitoring plane: every decision spawns four log transactions that are
signed, gossiped, mined, contract-executed and re-checked by the Analyser.
This experiment toggles each fast-path layer
(:mod:`repro.common.fastpath`) over full monitored-federation runs:

- **baseline** — every layer off (seed behaviour),
- **+encoding** — cached canonical encodings only,
- **+verify** — once-per-node verification caches only (signature/Merkle
  verified-sets, fixed-base exponentiation, PoW prefix grinding),
- **+contract** — in-place contract execution only,
- **+oracle** — compiled Analyser oracle only,
- **fastpath** — all layers on (the deployed configuration).

Measured per scenario: wall-clock time, end-to-end monitored decisions/sec
(Analyser-checked decisions per wall second) and the sim-time
log-confirmation latency.  The fast path must be *decision-preserving*:
every arm's chain head hash, alert stream, PDP decision stream, commit
latencies and Analyser counters are asserted bit-identical to baseline.
Acceptance: the full fast path clears ≥3× baseline decisions/sec on at
least two scenarios.

``REPRO_BENCH_SMOKE=1`` shrinks workloads and relaxes the speedup floor
(CI machines are noisy); the identity assertions always hold.
"""

import os
import time

from benchmarks.common import bench_chain_config, bench_drams_config, mean, p95, write_json_report
from repro.common.fastpath import FastPathFlags, configured
from repro.common.ids import reset_id_counter
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import (
    audit_burst_scenario,
    healthcare_scenario,
    iot_edge_scenario,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SPEEDUP_FLOOR = 1.3 if SMOKE else 3.0
SCENARIOS_REQUIRED = 1 if SMOKE else 2

_OFF = FastPathFlags(
    encoding_cache=False,
    verify_cache=False,
    contract_inplace=False,
    compiled_oracle=False,
).as_dict()

ARMS = (
    ("baseline", {}),
    ("+encoding", {"encoding_cache": True}),
    ("+verify", {"verify_cache": True}),
    ("+contract", {"contract_inplace": True}),
    ("+oracle", {"compiled_oracle": True}),
    (
        "fastpath",
        {
            "encoding_cache": True,
            "verify_cache": True,
            "contract_inplace": True,
            "compiled_oracle": True,
        },
    ),
)


def _workloads():
    """(scenario factory, requests, sim horizon, drams config) per workload.

    audit-burst runs under tight block caps so assembly limits actually
    bind (that is the scenario's point); the other two use the standard
    bench chain.
    """
    scale = 0.5 if SMOKE else 1.0
    burst_chain = bench_chain_config(max_block_txs=24, max_block_bytes=32_000)
    return (
        (healthcare_scenario, int(30 * scale), 90.0, bench_drams_config()),
        (iot_edge_scenario, int(30 * scale), 90.0, bench_drams_config()),
        (audit_burst_scenario, int(120 * scale), 45.0, bench_drams_config(chain=burst_chain)),
    )


def run_arm(scenario_factory, requests, horizon, drams_config, overrides) -> dict:
    """One full monitored run under the given fast-path layer set."""
    flags = dict(_OFF)
    flags.update(overrides)
    reset_id_counter()  # identical tx ids across arms → comparable chains
    with configured(**flags):
        start = time.perf_counter()
        stack = MonitoredFederation.build(
            scenario_factory(), clouds=2, seed=70, with_drams=True, drams_config=drams_config
        )
        stack.start()
        stack.issue_requests(requests)
        stack.run(until=horizon)
        wall = time.perf_counter() - start
    drams = stack.drams
    commits = drams.commit_latencies()
    checked = drams.analyser.checked
    return {
        "wall": wall,
        "decisions_per_s": checked / wall if wall > 0 else float("inf"),
        "commit_mean_s": mean(commits),
        "commit_p95_s": p95(commits),
        "fingerprint": {
            "head": drams.reference_chain().head.hash,
            "height": drams.reference_chain().height,
            "alerts": [
                (a.alert_type.value, a.correlation_id, a.block_height) for a in drams.alerts.all()
            ],
            "decisions": [
                (o.request.request_id, o.decision.decision, o.granted) for o in stack.outcomes
            ],
            "commits": sorted(commits),
            "checked": checked,
            "violations": drams.analyser.violations_reported,
            "monitor_stats": dict(drams.monitor_state()["stats"]),
        },
    }


def test_e10_monitoring_fastpath(report):
    rows = []
    json_rows = []
    fastpath_speedups = {}
    for scenario_factory, requests, horizon, drams_config in _workloads():
        name = scenario_factory().name
        baseline = None
        for arm, overrides in ARMS:
            result = run_arm(scenario_factory, requests, horizon, drams_config, overrides)
            if baseline is None:
                baseline = result
            # Zero divergence: every layer combination reproduces the
            # baseline chain, alerts and decisions bit for bit.
            assert result["fingerprint"] == baseline["fingerprint"], f"{arm} diverged on {name}"
            speedup = result["decisions_per_s"] / baseline["decisions_per_s"]
            if arm == "fastpath":
                fastpath_speedups[name] = speedup
            rows.append(
                {
                    "scenario": name,
                    "arm": arm,
                    "wall_s": round(result["wall"], 2),
                    "decisions_per_s": round(result["decisions_per_s"], 1),
                    "speedup": round(speedup, 2),
                    "commit_mean_s": round(result["commit_mean_s"], 2),
                    "commit_p95_s": round(result["commit_p95_s"], 2),
                    "head": result["fingerprint"]["head"][:12],
                }
            )
            json_rows.append(
                {
                    "scenario": name,
                    "arm": arm,
                    "wall_s": result["wall"],
                    "decisions_per_s": result["decisions_per_s"],
                    "speedup": speedup,
                    "commit_mean_s": result["commit_mean_s"],
                    "commit_p95_s": result["commit_p95_s"],
                    "requests": requests,
                }
            )
    mode = ", smoke" if SMOKE else ""
    table = format_table(rows, title=f"E10: monitoring-plane fast path (per-layer toggles{mode})")
    report("e10_monitoring_fastpath", table)
    write_json_report(
        "e10",
        {
            "rows": json_rows,
            "fastpath_speedups": fastpath_speedups,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )

    # Acceptance: ≥3× monitored decisions/sec (full mode) on ≥2 scenarios.
    cleared = [name for name, speedup in fastpath_speedups.items() if speedup >= SPEEDUP_FLOOR]
    assert len(cleared) >= SCENARIOS_REQUIRED, f"speedups too small: {fastpath_speedups}"
