"""E6 — attack detection: DRAMS vs the centralized-logger baseline.

The paper's core claim: DRAMS "is able to detect attacks to the components
involved in an access control decision [and] is also resilient to attacks
targeting the integrity of the logs or of the monitoring components".

Three arms, same attacks, same probes:

1. **DRAMS** — detection expected for every attack class;
2. **Centralized baseline, honest collector** — also detects component
   attacks (the matching logic is identical); the architectures differ in
   resilience, not in happy-path capability;
3. **Centralized baseline, compromised collector** — the attacker owns the
   one collector host: detection collapses to zero and the evidence is
   gone.  DRAMS under the analogous compromise (one tenant's LI silenced)
   keeps detecting via the remaining tenants' replicas.
"""

from benchmarks.common import bench_drams_config, build_stack
from repro.baselines.central import attach_centralized_monitoring
from repro.drams.alerts import AlertType
from repro.harness import MonitoredFederation
from repro.metrics.detection import DetectionScorer
from repro.metrics.tables import format_table
from repro.threats.adversary import Adversary
from repro.threats.attacks import (
    CircumventionAttack,
    DecisionTamperAttack,
    EvaluationTamperAttack,
    PolicySwapAttack,
    ProbeSuppressionAttack,
    RequestTamperAttack,
)
from repro.workload.scenarios import healthcare_scenario
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule

REQUESTS = 12
HORIZON = 60.0


def attack_suite():
    rogue = policy_to_dict(Policy(
        policy_id="rogue", rule_combining="permit-overrides",
        rules=[Rule("allow-all", Effect.PERMIT)]))
    return [
        ("request-tamper", lambda: RequestTamperAttack(
            "tenant-1", escalated_value="doctor")),
        ("decision-tamper", lambda: DecisionTamperAttack("tenant-2")),
        ("pdp-circumvention", lambda: CircumventionAttack("tenant-1")),
        ("evaluation-tamper", lambda: EvaluationTamperAttack()),
        ("policy-swap", lambda: PolicySwapAttack(rogue)),
        ("probe-suppression", lambda: ProbeSuppressionAttack("pep:tenant-1")),
    ]


def run_drams_arm(seed_base: int) -> tuple[list[dict], DetectionScorer]:
    rows = []
    scorer = DetectionScorer()
    for index, (name, make_attack) in enumerate(attack_suite()):
        stack = build_stack(seed=seed_base + index,
                            drams_config=bench_drams_config())
        adversary = Adversary(stack.drams)
        adversary.launch(make_attack(), at=0.5)
        stack.issue_requests(REQUESTS)
        stack.run(until=HORIZON)
        record = adversary.records()[0]
        scorer.add_all([record], false_positives=len(adversary.false_positives()))
        rows.append({
            "attack": name,
            "drams": "detected" if record.detected else "MISSED",
            "drams_latency_s": (round(record.detection_latency, 2)
                                if record.detection_latency is not None else "-"),
        })
    return rows, scorer


def run_baseline_arm(seed_base: int, compromised: bool) -> list[dict]:
    rows = []
    for index, (name, make_attack) in enumerate(attack_suite()):
        stack = MonitoredFederation.build(
            healthcare_scenario(), clouds=2, seed=seed_base + index,
            with_drams=False)
        monitor, probes = attach_centralized_monitoring(
            stack.federation, stack.plane, stack.peps, stack.prp,
            timeout_seconds=4.0)
        monitor.start()
        if compromised:
            monitor.compromise()
        # Baseline lacks the DramsSystem hooks, so drive attacks through
        # the same component interceptors directly.
        attack = make_attack()
        _install_on_bare_stack(attack, stack, probes)
        stack.issue_requests(REQUESTS)
        stack.run(until=HORIZON)
        detected = monitor.alerts.count() > 0
        first = min((alert.raised_at for alert in monitor.alerts.all()),
                    default=None)
        rows.append({
            "attack": name,
            "detected": "detected" if detected else "MISSED",
            "latency_s": round(first - 0.5, 2) if first is not None else "-",
        })
    return rows


def _install_on_bare_stack(attack, stack, probes) -> None:
    """Adapt DramsSystem-oriented attacks to the baseline deployment."""
    import copy

    from repro.accesscontrol.messages import AccessDecision

    if isinstance(attack, RequestTamperAttack):
        pep = stack.peps[attack.tenant]

        def tamper_request(request):
            forged = copy.deepcopy(request)
            forged.content.setdefault("subject", {})[attack.attribute] = [
                attack.escalated_value]
            return forged

        pep.forward_interceptor = tamper_request
    elif isinstance(attack, DecisionTamperAttack):
        pep = stack.peps[attack.tenant]

        def tamper_decision(request, decision):
            forged = copy.deepcopy(decision)
            forged.decision = attack.forced_decision
            return forged

        pep.enforcement_interceptor = tamper_decision
    elif isinstance(attack, CircumventionAttack):
        pep = stack.peps[attack.tenant]
        pep.bypass = lambda request: AccessDecision(
            request_id=request.request_id, decision=attack.granted_decision)
    elif isinstance(attack, EvaluationTamperAttack):
        def flip(request, decision):
            if decision.decision != attack.flip_from:
                return decision
            forged = copy.deepcopy(decision)
            forged.decision = attack.flip_to
            return forged

        stack.pdp_service.evaluation_interceptor = flip
    elif isinstance(attack, PolicySwapAttack):
        from repro.xacml.parser import policy_from_dict
        from repro.xacml.pdp import PolicyDecisionPoint

        stack.pdp_service.policy_override = PolicyDecisionPoint(
            policy_from_dict(attack.rogue_document))
    elif isinstance(attack, ProbeSuppressionAttack):
        probes[attack.probe_key].suppressed = True


def test_e6_detection_comparison(report, benchmark):
    drams_rows, drams_scorer = run_drams_arm(seed_base=600)
    honest_rows = run_baseline_arm(seed_base=700, compromised=False)
    blinded_rows = run_baseline_arm(seed_base=800, compromised=True)

    merged = []
    for drams_row, honest, blinded in zip(drams_rows, honest_rows, blinded_rows):
        merged.append({
            "attack": drams_row["attack"],
            "drams": drams_row["drams"],
            "drams_lat_s": drams_row["drams_latency_s"],
            "central(honest)": honest["detected"],
            "central_lat_s": honest["latency_s"],
            "central(compromised)": blinded["detected"],
        })
    table = format_table(
        merged, title="E6: detection per attack — DRAMS vs centralized logger")
    summary = drams_scorer.summary()
    footer = (f"DRAMS: {summary.detected}/{summary.attacks} detected, "
              f"mean latency {summary.mean_latency:.2f}s, "
              f"{summary.false_positives} unattributed alerts")
    report("e6_detection", table + "\n" + footer)

    # Shape 1: DRAMS detects every attack class.
    assert all(row["drams"] == "detected" for row in merged)
    # Shape 2: the honest centralized baseline also detects component
    # attacks (the gap is resilience, not matching power).
    assert sum(row["central(honest)"] == "detected" for row in merged) >= 5
    # Shape 3: the compromised collector detects nothing — the single
    # point of failure the paper's decentralisation removes.
    assert all(row["central(compromised)"] == "MISSED" for row in merged)
    # Shape 4: no false accusations from DRAMS.
    assert summary.false_positives == 0

    benchmark.pedantic(lambda: run_drams_arm(seed_base=900)[1].summary(),
                       rounds=1, iterations=1)


def test_e6_drams_survives_tenant_monitor_compromise(report, benchmark):
    """The resilience arm: silence one tenant's own monitoring, DRAMS
    still exposes it through the other tenants' replicas."""
    stack = build_stack(seed=950, drams_config=bench_drams_config())
    pep = stack.peps["tenant-1"]
    from repro.accesscontrol.messages import AccessDecision
    import copy

    def force_permit(request, decision):
        forged = copy.deepcopy(decision)
        forged.decision = "Permit"
        return forged

    pep.enforcement_interceptor = force_permit
    stack.drams.probes["pep:tenant-1"].suppressed = True  # hide the evidence
    stack.issue_requests(REQUESTS)
    stack.run(until=HORIZON)
    missing = stack.drams.alerts.count(AlertType.MISSING_LOG)
    table = format_table([{
        "scenario": "tenant-1 fully compromised (tamper + silence own probe)",
        "missing_log_alerts": missing,
        "detected": "yes" if missing > 0 else "no",
    }], title="E6b: DRAMS under monitoring-component compromise")
    report("e6_detection", table)
    assert missing > 0

    benchmark(lambda: stack.drams.alerts.count(AlertType.MISSING_LOG))
