"""E12 — policy distribution: replicated PRPs under mid-traffic churn.

PR 4 turns the PRP singleton into a distribution plane: each PDP shard and
the Analyser own a replica fed by delayed publish propagation plus
anti-entropy, decisions are stamped with the policy ``(version,
fingerprint)`` they were evaluated under, and the monitor classifies
provenance mismatches as ``policy-churn`` (honest skew within the
staleness bound) versus ``policy-violation`` (unknown fingerprint or skew
beyond the bound).  This experiment measures what that costs and catches:

- **churn sweep** — the ``policy-churn`` scenario (policy republished
  mid-traffic) over increasing propagation delays.  Monitored
  decisions/sec must not degrade with the delay (policy distribution is
  off the request hot path), honest skew must raise *zero*
  policy-violation and incorrect-decision alerts, and the Analyser's
  churn counter shows the skew the plane actually produced.
- **differential arm** — ``SingleStorePlane`` (the default everywhere)
  against the pre-plane wiring (a raw ``PolicyRetrievalPoint`` shared by
  hand): decisions, alerts and chain heads must be bit-identical,
  including across a mid-run policy publish.
- **detection arm** — a ``TamperedPrpReplicaAttack`` and a
  ``StalePolicyReplayAttack`` against a replicated plane must both be
  detected with zero unattributed alerts (the fidelity bar the E6
  detection benchmark sets for the original catalogue).

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from benchmarks.common import bench_drams_config, write_json_report
from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import SinglePdpPlane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.drams.alerts import AlertType
from repro.drams.system import DramsSystem
from repro.federation.federation import Federation, FederationConfig
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.policydist import ReplicatedPrpPlane
from repro.threats import Adversary, StalePolicyReplayAttack, TamperedPrpReplicaAttack
from repro.workload.generator import RequestGenerator
from repro.workload.scenarios import policy_churn_scenario
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REQUESTS = 80 if SMOKE else 160
DIFF_REQUESTS = 24 if SMOKE else 48
DETECT_REQUESTS = 40 if SMOKE else 60

#: Propagation delays swept by the churn arms (seconds of simulated time).
PROPAGATION_DELAYS = (0.05, 0.4, 1.2)

#: Publish schedule for the churn arms: the scenario's policy variants go
#: out at these simulated times, inside the request arrival window.
PUBLISH_TIMES = (1.0, 2.2) if SMOKE else (1.5, 3.5, 5.5)

#: Staleness bound for the sweep: wide enough that the slowest arm's
#: honest lag (propagation + one anti-entropy round against the publish
#: spacing) stays within it.  Operators size this exactly the same way.
SWEEP_STALENESS_BOUND = 2


def churn_config(**overrides):
    defaults = dict(
        policy_staleness_bound=SWEEP_STALENESS_BOUND,
        unknown_policy_grace=6.0,
    )
    defaults.update(overrides)
    return bench_drams_config(**defaults)


def run_churn_arm(delay):
    reset_id_counter()
    scenario = policy_churn_scenario()
    stack = MonitoredFederation.build(
        scenario,
        clouds=2,
        seed=91,
        drams_config=churn_config(),
        policy_plane=ReplicatedPrpPlane(
            propagation_delay=delay,
            propagation_jitter=delay * 0.1,
            anti_entropy_interval=1.5,
        ),
    )
    stack.start()
    stack.issue_requests(REQUESTS)
    for at, document in zip(PUBLISH_TIMES, scenario.policy_variants):
        stack.publish_policy(document, at=at)
    stack.run(until=120.0)
    assert len(stack.outcomes) == REQUESTS, f"delay={delay} arm lost requests"
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    first = min(o.requested_at for o in stack.outcomes)
    last = max(o.enforced_at for o in stack.outcomes)
    makespan = last - first
    analyser = stack.drams.analyser
    alerts = stack.drams.alerts
    versions_seen = sorted({o.decision.policy_version for o in stack.outcomes})

    # Ground-truth skew: decisions stamped with a version that the
    # authority store had already superseded at decision time.  This is
    # the honest churn the propagation delay manufactures — it grows with
    # the delay, and none of it may read as a violation.
    history = stack.prp.history()

    def in_force_at(when):
        current = history[0].version
        for version in history:
            if version.published_at <= when:
                current = version.version
        return current

    stale_decisions = sum(
        1
        for o in stack.outcomes
        if o.decision.policy_version
        and o.decision.policy_version < in_force_at(o.decision.decided_at)
    )
    return {
        "delay": delay,
        "rate": REQUESTS / makespan if makespan > 0 else float("inf"),
        "checked": analyser.checked,
        "stale_decisions": stale_decisions,
        "churn_observed": analyser.churn_observed,
        "policy_violations": alerts.count(AlertType.POLICY_VIOLATION),
        "incorrect_decisions": alerts.count(AlertType.INCORRECT_DECISION),
        "total_alerts": alerts.count(),
        "versions_seen": versions_seen,
        "converged": stack.policy_plane.converged(),
    }


# -- differential arm -------------------------------------------------------------


def _semantic_fingerprint(stack):
    # Request ids are minted in topology-dependent order, so key each
    # outcome on its (arrival time, request content) instead — both are
    # generator-driven and identical across wirings.
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
            o.decision.policy_version,
            o.decision.policy_fingerprint,
        )
        for o in stack.outcomes
    )
    alerts = sorted(
        (alert.alert_type.value, alert.correlation_id)
        for alert in stack.drams.alerts.all()
    )
    return {
        "decisions": decisions,
        "alerts": alerts,
        "chain_head": stack.drams.reference_chain().head.hash,
        "monitor_stats": dict(stack.drams.monitor_state()["stats"]),
    }


def _run_differential(stack, scenario):
    stack.start()
    stack.issue_requests(DIFF_REQUESTS)
    stack.publish_policy(scenario.policy_variants[0], at=2.0)
    stack.run(until=30.0)
    assert len(stack.outcomes) == DIFF_REQUESTS
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    return _semantic_fingerprint(stack)


def run_differential_default():
    """This PR's default topology: SingleStorePlane through the harness."""
    reset_id_counter()
    scenario = policy_churn_scenario()
    stack = MonitoredFederation.build(scenario, clouds=2, seed=92, drams_config=bench_drams_config())
    return _run_differential(stack, scenario)


def run_differential_legacy():
    """The pre-PR wiring: one raw PolicyRetrievalPoint shared by hand."""
    reset_id_counter()
    scenario = policy_churn_scenario()
    fed_config = FederationConfig(name=f"faas-{scenario.name}", cloud_count=2, seed=92)
    federation = Federation(fed_config)
    prp = PolicyRetrievalPoint()
    infra_name = federation.infrastructure_tenant.name
    pap = PolicyAdministrationPoint(prp, administrator=f"pap@{infra_name}")
    pap.publish(scenario.policy_document)
    plane = SinglePdpPlane()
    plane.deploy(federation, prp)
    peps = {}
    for tenant in federation.member_tenants:
        pep = PolicyEnforcementPoint(federation.network, tenant.address("pep"), tenant.name, plane)
        tenant.register_host(pep.address)
        peps[tenant.name] = pep
    generator = RequestGenerator(scenario.workload, federation.rng.fork("scenario-workload"))
    drams = DramsSystem(federation, prp, plane, peps, bench_drams_config())
    stack = MonitoredFederation(
        scenario=scenario,
        federation=federation,
        prp=prp,
        pap=pap,
        plane=plane,
        peps=peps,
        generator=generator,
        drams=drams,
    )
    return _run_differential(stack, scenario)


# -- detection arm ----------------------------------------------------------------


def rogue_policy_document():
    return policy_to_dict(
        Policy(
            policy_id="rogue-permit-all",
            rule_combining="permit-overrides",
            rules=[Rule("allow-everything", Effect.PERMIT)],
        )
    )


def run_detection_arm(attack, publish_variants, seed):
    reset_id_counter()
    scenario = policy_churn_scenario()
    stack = MonitoredFederation.build(
        scenario,
        clouds=2,
        seed=seed,
        drams_config=bench_drams_config(),
        policy_plane=ReplicatedPrpPlane(propagation_delay=0.2, propagation_jitter=0.05),
    )
    stack.start()
    adversary = Adversary(stack.drams)
    adversary.launch(attack, at=0.6)
    stack.issue_requests(DETECT_REQUESTS)
    if publish_variants:
        for index, document in enumerate(scenario.policy_variants):
            stack.publish_policy(document, at=0.8 + 0.4 * index)
    stack.run(until=90.0)
    record = adversary.records()[0]
    return {
        "attack": attack.name,
        "detected": record.detected,
        "latency": record.detection_latency,
        "alerts": sorted({a.alert_type.value for a in record.matched_alerts}),
        "false_positives": len(adversary.false_positives()),
    }


def test_e12_policy_distribution(report):
    rows = []
    json_rows = []
    churn_total = 0
    for delay in PROPAGATION_DELAYS:
        result = run_churn_arm(delay)
        churn_total += result["churn_observed"]
        rows.append(
            {
                "propagation_delay_s": delay,
                "sim_decisions_per_s": round(result["rate"], 1),
                "checked": result["checked"],
                "stale_decisions": result["stale_decisions"],
                "churn_observed": result["churn_observed"],
                "policy_violations": result["policy_violations"],
                "incorrect_decisions": result["incorrect_decisions"],
                "versions": "/".join(str(v) for v in result["versions_seen"]),
            }
        )
        json_rows.append(result)
        # Alert precision: honest propagation skew within the staleness
        # bound must never read as a violation.
        assert result["policy_violations"] == 0, (
            f"honest churn at delay={delay} raised policy-violation alerts"
        )
        assert result["incorrect_decisions"] == 0, (
            f"honest churn at delay={delay} raised incorrect-decision alerts"
        )
        assert result["converged"], f"delay={delay} arm did not converge"

    # Decisions were made under more than one policy version (the churn
    # actually happened), slower propagation produced more stale-but-honest
    # decisions, and rates do not collapse with the delay.
    assert len(json_rows[-1]["versions_seen"]) > 1, "no mid-traffic churn occurred"
    assert json_rows[-1]["stale_decisions"] > 0, "slowest arm produced no version skew to classify"
    assert json_rows[-1]["stale_decisions"] >= json_rows[0]["stale_decisions"], (
        "stale decisions did not grow with the propagation delay"
    )
    slowest = json_rows[-1]["rate"]
    fastest = json_rows[0]["rate"]
    assert slowest >= 0.8 * fastest, (
        f"propagation delay degraded decision throughput: {fastest:.1f} -> "
        f"{slowest:.1f} decisions/s"
    )

    # Differential: the single-store plane is the pre-PR topology, bit for
    # bit — decisions, alerts, monitor stats and the chain head itself.
    default_arm = run_differential_default()
    legacy_arm = run_differential_legacy()
    assert default_arm["decisions"] == legacy_arm["decisions"], (
        "SingleStorePlane diverged from the pre-PR shared-store wiring"
    )
    assert default_arm["alerts"] == legacy_arm["alerts"]
    assert default_arm["monitor_stats"] == legacy_arm["monitor_stats"]
    assert default_arm["chain_head"] == legacy_arm["chain_head"], (
        "SingleStorePlane changed the chain head vs the pre-PR wiring"
    )

    # Detection: the policy-plane attacks meet the E6 fidelity bar.
    detections = [
        run_detection_arm(
            TamperedPrpReplicaAttack(rogue_policy_document()),
            publish_variants=False,
            seed=93,
        ),
        run_detection_arm(StalePolicyReplayAttack(), publish_variants=True, seed=94),
    ]
    for detection in detections:
        assert detection["detected"], f"{detection['attack']} went undetected"
        assert detection["false_positives"] == 0, (
            f"{detection['attack']} produced unattributed alerts"
        )

    mode = ", smoke" if SMOKE else ""
    table = format_table(
        rows,
        title=(
            f"E12: policy distribution ({REQUESTS} requests, policy-churn "
            f"scenario, {len(PUBLISH_TIMES)} mid-traffic publishes{mode})"
        ),
    )
    report("e12_policy_distribution", table)
    write_json_report(
        "e12",
        {
            "rows": json_rows,
            "publish_times": list(PUBLISH_TIMES),
            "staleness_bound": SWEEP_STALENESS_BOUND,
            "churn_observed_total": churn_total,
            "differential_requests": DIFF_REQUESTS,
            "differential_chain_head": default_arm["chain_head"],
            "detections": detections,
        },
    )
