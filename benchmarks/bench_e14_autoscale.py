"""E14 — self-driving elastic decision plane: the autoscale controller.

E13 proved that *scripted* membership changes convert into throughput:
a harness that knows the flash crowd's schedule adds shards between
waves and clears the backlog faster.  Real federations do not get the
schedule in advance.  This experiment closes the loop: an
:class:`~repro.accesscontrol.autoscale.AutoscaleController` watches the
plane's own utilisation signal (busy-cursor backlog per shard) and
actuates ``add_shard``/``drain_shard`` itself, under a target band with
hysteresis.

Two workloads, two questions:

- ``elastic-scale`` (the E13 flash crowd): can the controller match a
  *clairvoyant* script?  The script knows the waves arrive at 0.5/1.0/
  1.5 s and adds two shards between them; the controller only sees its
  backlog signal.
- ``diurnal`` (sinusoidal municipal e-services): does the controller
  give capacity *back*?  A static pool sized for the peak burns shards
  through the trough; the controller should clear the same decisions
  with strictly fewer shard-seconds.

Shape assertions:

- **reactive matches clairvoyant**: the autoscaled pool (start 2, bounds
  2..6) clears the flash crowd at least as fast as the E13 script
  (2→4 at a known instant);
- **scale-down pays**: on the diurnal workload the autoscaled pool
  finishes the same number of decisions as static-4 while consuming
  fewer shard-seconds (integral of live shards over the run);
- **monitoring never gaps**: a full DRAMS run over controller-initiated
  membership changes (at least one add *and* one drain, timed by the
  controller, not the harness) raises zero alerts and the Analyser
  re-derives every decision;
- **the controller is topology, not semantics**: a differential arm pins
  a plane whose controller can never fire (``min_shards == max_shards``)
  bit-identical to the same plane with no controller at all — every
  (request → decision, obligations, status) tuple and the alert stream.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os

from benchmarks.common import bench_drams_config, write_json_report
from repro.accesscontrol.autoscale import AutoscaleController, CrossPepLoadView
from repro.accesscontrol.plane import ShardedPdpPlane
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import diurnal_scenario, elastic_scale_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
#: E13's saturation constraint carries over: the flash-crowd waves must
#: overwhelm a 2-shard pool or there is nothing for the controller to
#: react to.
WAVE_SIZE = 100 if SMOKE else 150
WAVE_STARTS = (0.5, 1.0, 1.5)
SCRIPT_AT = 0.8  # the clairvoyant script's membership instant (E13)
DIURNAL_REQUESTS = 300 if SMOKE else 900
MONITORED_REQUESTS = 100 if SMOKE else 200
DIFF_REQUESTS = 24 if SMOKE else 48
AUTOSCALE_FLOOR = 1.0  # autoscaled vs scripted-elastic, simulated time

#: Same uniform service model as E13: 10 ms per decision, serialized,
#: so shard occupancy is real and membership converts into makespan.
SERVICE_KWARGS = {
    "base_processing_delay": 0.01,
    "per_rule_delay": 0.0,
    "serialize_evaluations": True,
}


def controller(**overrides):
    """A reactive controller tuned for the 10 ms service model."""
    defaults = dict(
        min_shards=2,
        max_shards=6,
        high_water=0.05,
        low_water=0.005,
        decide_interval=0.05,
        up_cooldown=0.1,
        down_cooldown=1.0,
        down_samples=5,
    )
    defaults.update(overrides)
    return AutoscaleController(**defaults)


def track_shard_seconds(plane, sim):
    """Record membership changes; returns (events, integrate(until))."""
    start_count = len(plane.services)
    events = []

    def listener(event, service):
        events.append((sim.now, event))

    plane.on_membership(listener)

    def integrate(until):
        # Draining shards keep their event loop (and probes) until
        # "removed", so they count as live capacity until then.
        total, active, at = 0.0, start_count, 0.0
        for when, event in events:
            if event == "draining":
                continue
            if when >= until:
                break
            total += active * (when - at)
            active += 1 if event == "added" else -1
            at = when
        return total + active * (until - at)

    return events, integrate


def run_flash_crowd_arm(plane, *, add_shards=0, autoscaler=None):
    """The E13 waved flash crowd; membership scripted, self-driven or off."""
    reset_id_counter()
    stack = MonitoredFederation.build(
        elastic_scale_scenario(),
        clouds=2,
        seed=91,
        with_drams=False,
        plane=plane,
        autoscaler=autoscaler,
    )
    total = 0
    for start in WAVE_STARTS:
        stack.issue_requests(WAVE_SIZE, start_at=start)
        total += WAVE_SIZE
    for _ in range(add_shards):
        stack.add_pdp_shard(at=SCRIPT_AT)
    stack.run(until=600.0)
    assert len(stack.outcomes) == total, "arm lost requests"
    timeouts = sum(pep.timeouts for pep in stack.peps.values())
    assert timeouts == 0, f"arm timed out {timeouts} requests"
    makespan = max(o.enforced_at for o in stack.outcomes) - min(
        o.requested_at for o in stack.outcomes
    )
    return {
        "rate": total / makespan if makespan > 0 else float("inf"),
        "makespan": makespan,
        "shards_now": len(plane.services),
        "scale_ups": 0 if autoscaler is None else autoscaler.scale_ups,
        "scale_downs": 0 if autoscaler is None else autoscaler.scale_downs,
        "failovers": sum(pep.failovers for pep in stack.peps.values()),
        "churn_reroutes": sum(pep.churn_reroutes for pep in stack.peps.values()),
    }


def run_diurnal_arm(plane, *, autoscaler=None, seed=95):
    """One diurnal cycle; returns decisions finished and shard-seconds."""
    reset_id_counter()
    stack = MonitoredFederation.build(
        diurnal_scenario(),
        clouds=2,
        seed=seed,
        with_drams=False,
        plane=plane,
        autoscaler=autoscaler,
    )
    events, integrate = track_shard_seconds(plane, stack.sim)
    stack.issue_requests(DIURNAL_REQUESTS, start_at=0.1)
    stack.run(until=600.0)
    assert len(stack.outcomes) == DIURNAL_REQUESTS, "diurnal arm lost requests"
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    done_at = max(o.enforced_at for o in stack.outcomes)
    # Cost is held capacity over the *day*, not over the busy window: a
    # static pool sized for the peak keeps burning shards through the
    # trough, which is exactly what the controller is supposed to shed.
    horizon = max(done_at, stack.scenario.workload.arrival_period)
    latencies = sorted(o.latency for o in stack.outcomes)
    return {
        "decisions": len(stack.outcomes),
        "shard_seconds": integrate(horizon),
        "done_at": done_at,
        "p95_latency": latencies[int(0.95 * (len(latencies) - 1))],
        "membership_events": len(events),
        "scale_ups": 0 if autoscaler is None else autoscaler.scale_ups,
        "scale_downs": 0 if autoscaler is None else autoscaler.scale_downs,
    }


def run_monitored_arm():
    """Full DRAMS over controller-initiated churn; nothing may gap."""
    reset_id_counter()
    plane = ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS))
    auto = controller(min_shards=1, max_shards=3, down_cooldown=0.5, down_samples=4)
    stack = MonitoredFederation.build(
        diurnal_scenario(),
        clouds=2,
        seed=81,
        with_drams=True,
        drams_config=bench_drams_config(),
        plane=plane,
        autoscaler=auto,
    )
    stack.start()
    stack.issue_requests(MONITORED_REQUESTS, start_at=0.1)
    stack.run(until=120.0)
    assert len(stack.outcomes) == MONITORED_REQUESTS, "monitored arm lost requests"
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    # The point of the arm: membership changed because the *controller*
    # said so — the harness scripted nothing.
    assert auto.scale_ups >= 1, "controller never scaled up under the peak"
    assert auto.scale_downs >= 1, "controller never gave capacity back"
    analyser = stack.drams.analyser
    alerts = stack.drams.alerts.count()
    assert alerts == 0, f"controller churn raised {alerts} alerts"
    assert analyser.checked == MONITORED_REQUESTS, (
        f"analyser checked {analyser.checked}/{MONITORED_REQUESTS} "
        "decisions across controller churn"
    )
    assert analyser.pending_correlations == 0
    assert not plane.draining(), "a drained shard never quiesced"
    return {
        "requests": MONITORED_REQUESTS,
        "checked": analyser.checked,
        "alerts": alerts,
        "scale_ups": auto.scale_ups,
        "scale_downs": auto.scale_downs,
        "rebalances": plane.rebalances,
    }


def run_differential_arm(autoscaler):
    """Full monitored run; returns semantic fingerprint of its behaviour."""
    reset_id_counter()
    stack = MonitoredFederation.build(
        elastic_scale_scenario(),
        clouds=2,
        seed=93,
        with_drams=True,
        drams_config=bench_drams_config(),
        plane=ShardedPdpPlane(shards=4),
        autoscaler=autoscaler,
    )
    stack.start()
    stack.issue_requests(DIFF_REQUESTS)
    stack.run(until=30.0)
    assert len(stack.outcomes) == DIFF_REQUESTS
    assert sum(pep.timeouts for pep in stack.peps.values()) == 0
    if autoscaler is not None:
        assert autoscaler.decisions > 0, "pinned controller never sampled"
        assert autoscaler.scale_ups == autoscaler.scale_downs == 0
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(alert.alert_type.value for alert in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts}


def test_e14_autoscale(report):
    # -- flash crowd: reactive controller vs clairvoyant script ------------
    arms = {
        "static-2": lambda: (
            ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS)),
            {},
        ),
        "scripted-2to4": lambda: (
            ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS)),
            {"add_shards": 2},
        ),
        "autoscaled": lambda: (
            ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS)),
            {"autoscaler": controller()},
        ),
        "autoscaled-gossip": lambda: (
            ShardedPdpPlane(
                shards=2,
                queue_aware=True,
                service_kwargs=dict(SERVICE_KWARGS),
                load_view=CrossPepLoadView(gossip_interval=0.02, horizon=0.05),
            ),
            {"autoscaler": controller()},
        ),
    }
    rows = []
    json_rows = []
    results = {}
    for arm, factory in arms.items():
        plane, kwargs = factory()
        result = run_flash_crowd_arm(plane, **kwargs)
        results[arm] = result
        rows.append(
            {
                "arm": arm,
                "sim_decisions_per_s": round(result["rate"], 1),
                "makespan_s": round(result["makespan"], 2),
                "scale_ups": result["scale_ups"],
                "scale_downs": result["scale_downs"],
                "failovers": result["failovers"],
                "churn_reroutes": result["churn_reroutes"],
            }
        )
        json_rows.append(
            {
                "arm": arm,
                "sim_decisions_per_s": result["rate"],
                "makespan_s": result["makespan"],
                "scale_ups": result["scale_ups"],
                "scale_downs": result["scale_downs"],
                "failovers": result["failovers"],
                "churn_reroutes": result["churn_reroutes"],
            }
        )

    # -- diurnal: give capacity back ---------------------------------------
    static4 = run_diurnal_arm(
        ShardedPdpPlane(shards=4, service_kwargs=dict(SERVICE_KWARGS))
    )
    scaled = run_diurnal_arm(
        ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS)),
        autoscaler=controller(min_shards=1, max_shards=4),
    )

    monitored = run_monitored_arm()

    # -- differential: a controller that never fires must change nothing ---
    plain = run_differential_arm(None)
    pinned = run_differential_arm(
        controller(min_shards=4, max_shards=4, down_cooldown=1.0)
    )
    assert pinned["decisions"] == plain["decisions"], (
        "an observe-only controller diverged the decision stream"
    )
    assert pinned["alerts"] == plain["alerts"], (
        "an observe-only controller changed the DRAMS alert stream"
    )

    mode = ", smoke" if SMOKE else ""
    table = format_table(
        rows,
        title=(
            f"E14: self-driving decision plane ({3 * WAVE_SIZE} requests in "
            f"{len(WAVE_STARTS)} waves, elastic-scale, serialized "
            f"evaluators{mode})"
        ),
    )
    report("e14_autoscale", table)
    diurnal_rows = [
        {
            "arm": arm,
            "decisions": r["decisions"],
            "shard_seconds": round(r["shard_seconds"], 2),
            "p95_latency_s": round(r["p95_latency"], 3),
            "scale_ups": r["scale_ups"],
            "scale_downs": r["scale_downs"],
        }
        for arm, r in (("static-4", static4), ("autoscaled", scaled))
    ]
    report(
        "e14_autoscale_diurnal",
        format_table(
            diurnal_rows,
            title=(
                f"E14: diurnal scale-down ({DIURNAL_REQUESTS} requests over a "
                f"sinusoidal day, 10 ms serialized evaluators{mode})"
            ),
        ),
    )

    reactive_vs_script = results["autoscaled"]["rate"] / results["scripted-2to4"]["rate"]
    shard_second_savings = 1.0 - scaled["shard_seconds"] / static4["shard_seconds"]
    write_json_report(
        "e14",
        {
            "rows": json_rows,
            "autoscaled_speedup_vs_scripted": reactive_vs_script,
            "autoscale_floor": AUTOSCALE_FLOOR,
            "diurnal": {
                "rows": diurnal_rows,
                "shard_second_savings": shard_second_savings,
            },
            "monitored_churn": monitored,
            "differential_requests": DIFF_REQUESTS,
            "differential_alerts": plain["alerts"],
        },
    )

    # Acceptance: the reactive controller matches the clairvoyant script …
    assert reactive_vs_script >= AUTOSCALE_FLOOR, (
        f"autoscaled cleared the flash crowd only {reactive_vs_script:.3f}x "
        "as fast as the scripted elastic arm"
    )
    assert results["autoscaled"]["scale_ups"] >= 1
    # … and on the diurnal workload it finishes the same decisions with
    # strictly fewer shard-seconds than a peak-sized static pool.
    assert scaled["decisions"] == static4["decisions"]
    assert scaled["scale_downs"] >= 1, "controller never scaled down the trough"
    assert scaled["shard_seconds"] < static4["shard_seconds"], (
        f"autoscaled burned {scaled['shard_seconds']:.1f} shard-seconds vs "
        f"static-4's {static4['shard_seconds']:.1f}"
    )
