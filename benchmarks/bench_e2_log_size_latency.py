"""E2 — "the bigger the [log] size, the higher the latency to store it".

Sweeps the log payload size (request padding) and measures the time from
log submission at a Logging Interface to chain finality.  The paper's
claim is qualitative; the shape to reproduce is monotone growth of commit
latency (and on-chain bytes) with entry size.
"""

from benchmarks.common import bench_drams_config, mean, p95
from repro.federation.federation import FederationConfig
from repro.harness import MonitoredFederation
from repro.metrics.tables import format_table
from repro.workload.scenarios import healthcare_scenario

PADDING_SIZES = [0, 1024, 8 * 1024, 32 * 1024, 128 * 1024]
REQUESTS = 20


def run_at_size(padding: int, seed: int) -> dict:
    scenario = healthcare_scenario()
    scenario.workload.payload_padding_bytes = padding
    stack = MonitoredFederation.build(
        scenario, clouds=2, seed=seed,
        drams_config=bench_drams_config(),
        federation_config=FederationConfig(
            name=f"e2-{padding}", cloud_count=2, seed=seed,
            wan_bandwidth_bps=1e7))  # constrained WAN: size effects visible
    stack.start()
    stack.issue_requests(REQUESTS)
    stack.run(until=120.0)
    commits = stack.drams.commit_latencies()
    assert len(commits) >= REQUESTS * 3, "most log entries must finalise"
    return {
        "entry_size": f"{padding // 1024}KiB" if padding else "64B",
        "commit_mean_s": round(mean(commits), 3),
        "commit_p95_s": round(p95(commits), 3),
        "bytes_on_wire_MB": round(
            stack.federation.network.stats.bytes_sent / 1e6, 2),
        "chain_height": stack.drams.reference_chain().height,
    }


def test_e2_commit_latency_grows_with_log_size(report, benchmark):
    rows = [run_at_size(padding, seed=20 + i)
            for i, padding in enumerate(PADDING_SIZES)]
    table = format_table(
        rows, title="E2: log entry size vs on-chain commit latency "
                     f"({REQUESTS} requests, 4 entries each, WAN 10 Mbit/s)")
    report("e2_log_size_latency", table)

    # Shape: monotone-ish growth end to end; the largest size must cost
    # visibly more than the smallest, on both latency and wire bytes.
    assert rows[-1]["commit_mean_s"] > rows[0]["commit_mean_s"]
    assert rows[-1]["bytes_on_wire_MB"] > rows[0]["bytes_on_wire_MB"] * 5

    # Benchmark kernel: one mid-size run.
    benchmark.pedantic(lambda: run_at_size(8 * 1024, seed=99),
                       rounds=2, iterations=1)
