"""E5 — the hybrid database+blockchain trade-off (paper reference [9]).

Runs the same log-write workload against the pure on-chain store, a plain
database and the hybrid store at several anchoring intervals, and reports:

- acknowledgement latency (what the writer waits for),
- durable/tamper-evident latency (when integrity protection begins),
- on-chain bytes (the cost side of the paper's "cost" axis),
- the integrity window, and whether post-hoc tampering is detectable.

Shape to reproduce: hybrid acknowledges orders of magnitude faster than
pure-chain while keeping tamper evidence (delayed by the anchor interval);
the plain database is fastest and proves nothing.
"""

from benchmarks.common import bench_chain_config, mean
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.blockchain.node import BlockchainNode
from repro.common.rng import SeededRng
from repro.crypto.signatures import SigningKey
from repro.metrics.tables import format_table
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.storage.auditor import IntegrityAuditor
from repro.storage.database import DatabaseStore
from repro.storage.hybrid import HybridStore
from repro.storage.purechain import PureChainStore

ENTRIES = 80
WRITE_INTERVAL = 0.1


def build_node(seed: int):
    sim = Simulator()
    rng = SeededRng(seed, "e5")
    network = Network(sim, rng, ConstantLatency(0.002))
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    node_key = SigningKey.generate(b"node")
    client_key = SigningKey.generate(b"client")
    keys = {"node-1": node_key.public, "client": client_key.public}
    node = BlockchainNode(network, "node-1",
                          bench_chain_config(target_block_interval=1.0),
                          registry, rng, key_lookup=keys.get,
                          signing_key=node_key, hashrate=1024.0)
    node.connect([])
    node.start()
    return sim, rng, node, client_key


def feed(sim, store_fn):
    for index in range(ENTRIES):
        sim.schedule(index * WRITE_INTERVAL,
                     lambda index=index: store_fn(
                         f"log-{index}", {"entry": index, "data": "x" * 64}))


def run_pure_chain(seed: int) -> dict:
    sim, rng, node, client_key = build_node(seed)
    store = PureChainStore(node, "client", client_key)
    feed(sim, lambda key, value: store.store(key, value))
    sim.run(until=120.0)
    onchain_bytes = sum(block.body_size_bytes()
                        for block in node.chain.main_chain())
    return {
        "store": "pure-chain",
        "ack_ms": round(mean(store.durable_latencies) * 1000, 1),
        "tamper_evident_after_ms": round(mean(store.durable_latencies) * 1000, 1),
        "onchain_KB": round(onchain_bytes / 1024, 1),
        "integrity_window_s": 0.0,
        "tamper_detectable": "yes (all entries)",
    }


def run_database_only(seed: int) -> dict:
    sim = Simulator()
    database = DatabaseStore(sim, SeededRng(seed, "e5-db"))
    latencies = []
    starts = {}

    def store(key, value):
        starts[key] = sim.now
        database.write(key, value,
                       on_ack=lambda k: latencies.append(sim.now - starts[k]))

    feed(sim, store)
    sim.run(until=60.0)
    return {
        "store": "database-only",
        "ack_ms": round(mean(latencies) * 1000, 1),
        "tamper_evident_after_ms": float("inf"),
        "onchain_KB": 0.0,
        "integrity_window_s": float("inf"),
        "tamper_detectable": "no",
    }


def run_hybrid(anchor_interval: float, seed: int, tamper: bool = False) -> dict:
    sim, rng, node, client_key = build_node(seed)
    database = DatabaseStore(sim, rng)
    store = HybridStore(database, node, "client", client_key,
                        anchor_interval=anchor_interval)
    store.start()
    feed(sim, lambda key, value: store.store(key, value))
    sim.run(until=150.0)
    detection = "-"
    if tamper:
        database.tamper("log-5", {"entry": "FORGED"})
        audit = IntegrityAuditor(database, store).audit()
        detection = "yes (batch-level)" if not audit.clean else "MISSED"
    onchain_bytes = sum(block.body_size_bytes()
                        for block in node.chain.main_chain())
    return {
        "store": f"hybrid({anchor_interval:.0f}s anchors)",
        "ack_ms": round(mean(store.ack_latencies) * 1000, 1),
        "tamper_evident_after_ms": round(
            (anchor_interval / 2 + mean(store.anchor_latencies)) * 1000, 1),
        "onchain_KB": round(onchain_bytes / 1024, 1),
        "integrity_window_s": round(store.integrity_window(), 1),
        "tamper_detectable": detection if tamper else "yes (after anchor)",
    }


def test_e5_storage_tradeoff(report, benchmark):
    rows = [
        run_pure_chain(seed=1),
        run_database_only(seed=2),
        run_hybrid(1.0, seed=3),
        run_hybrid(5.0, seed=4),
        run_hybrid(15.0, seed=5, tamper=True),
    ]
    table = format_table(
        rows, title=f"E5: log storage backends ({ENTRIES} entries, "
                    f"one every {WRITE_INTERVAL}s)")
    report("e5_hybrid_storage", table)

    pure, db_only = rows[0], rows[1]
    hybrids = rows[2:]
    # Shape 1: hybrid acks like a database, not like a chain.
    for hybrid in hybrids:
        assert hybrid["ack_ms"] < pure["ack_ms"] / 20
        assert hybrid["ack_ms"] < 20.0
    # Shape 2: hybrid still produces tamper evidence; database cannot.
    assert rows[4]["tamper_detectable"].startswith("yes")
    assert db_only["tamper_detectable"] == "no"
    # Shape 3: anchoring compresses on-chain bytes vs storing every entry.
    assert hybrids[1]["onchain_KB"] < pure["onchain_KB"] / 3
    # Shape 4: the integrity window grows with the anchor interval — the
    # trade-off axis the paper names.
    windows = [hybrid["integrity_window_s"] for hybrid in hybrids]
    assert windows == sorted(windows)

    benchmark.pedantic(lambda: run_hybrid(5.0, seed=42), rounds=2, iterations=1)


def test_e5_window_tampering_is_invisible(report, benchmark):
    """The cost side: pre-anchor tampering evades the auditor."""
    sim, rng, node, client_key = build_node(77)
    database = DatabaseStore(sim, rng)
    store = HybridStore(database, node, "client", client_key,
                        anchor_interval=30.0)  # long window
    store.start()
    store.store("victim", {"entry": "original"})
    sim.run(until=2.0)  # before the first anchor fires
    database.tamper("victim", {"entry": "FORGED"})
    sim.run(until=120.0)  # anchor now covers the forged value
    audit = IntegrityAuditor(database, store).audit()
    table = format_table([{
        "scenario": "tamper inside the integrity window",
        "anchors": len(store.anchors),
        "violations_found": len(audit.batches_violated),
        "forged_value_now_anchored": database.get("victim")["entry"] == "FORGED",
    }], title="E5b: the integrity window is real exposure")
    report("e5_hybrid_storage", table)
    assert audit.batches_violated == []  # the forgery was anchored as truth
    benchmark(lambda: IntegrityAuditor(database, store).audit())
