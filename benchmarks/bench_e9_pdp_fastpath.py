"""E9 — PDP fast path: decisions/sec with cache and target index on/off.

The PDP is the throughput ceiling of the whole federation (every access
request funnels through it), so this experiment measures raw decision
throughput over each scenario's real workload under four configurations:

- **baseline** — plain tree-walking evaluation,
- **index** — target index on (skip provably non-matching branches),
- **cache** — decision cache on (footprint-projected LRU),
- **cache+index** — the deployed fast path.

Shape assertions: every arm is *bit-identical* to the baseline decisions
(zero divergence — the fast path is an optimisation, never a semantic
change), and the full fast path clears ≥2× baseline throughput on at
least one scenario.  Workloads repeat over ``PASSES`` passes, as real
access traffic repeats (subject, resource, action) triples.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os
import time

from repro.accesscontrol.context_handler import ContextHandler
from repro.accesscontrol.decision_cache import DecisionCache
from repro.common.rng import SeededRng
from repro.metrics.tables import format_table
from repro.workload.generator import RequestGenerator
from repro.workload.scenarios import all_scenarios
from repro.xacml.context import RequestContext
from repro.xacml.index import attribute_footprint
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REQUESTS = 120 if SMOKE else 400
PASSES = 3 if SMOKE else 5

ARMS = (
    ("baseline", False, False),
    ("index", True, False),
    ("cache", False, True),
    ("cache+index", True, True),
)


def workload_contents(scenario, count=REQUESTS, seed=91):
    """PEP-shaped request contexts; resources get an owner tenant so the
    scenarios' home-tenant locality rules take both branches."""
    generator = RequestGenerator(scenario.workload, SeededRng(seed, "bench-e9"))
    handlers = [ContextHandler("tenant-1"), ContextHandler("tenant-2")]
    contents = []
    for generated in generator.requests(count):
        resource = dict(generated.resource)
        resource.setdefault("owner-tenant", f"tenant-{1 + (generated.index // 2) % 2}")
        contents.append(
            handlers[generated.index % 2].build(
                subject=generated.subject,
                resource=resource,
                action=generated.action,
                now=generated.at,
            )
        )
    return contents


def run_arm(scenario, contents, use_index, use_cache):
    root = policy_from_dict(scenario.policy_document)
    pdp = PolicyDecisionPoint(root, indexed=use_index)
    footprint = attribute_footprint(root) if use_cache else None
    cache = DecisionCache() if use_cache else None
    responses = []
    start = time.perf_counter()
    for _ in range(PASSES):
        for content in contents:
            if cache is not None:
                key = cache.request_key("fp", content, footprint)
                response = cache.get(key)
                if response is None:
                    response = pdp.evaluate(RequestContext.from_dict(content)).to_dict()
                    cache.put(key, "fp", response)
            else:
                response = pdp.evaluate(RequestContext.from_dict(content)).to_dict()
            responses.append(response)
    elapsed = time.perf_counter() - start
    rate = len(responses) / elapsed if elapsed > 0 else float("inf")
    return responses, rate, cache, pdp


def test_e9_pdp_fastpath(report):
    rows = []
    fastpath_speedups = {}
    for scenario in all_scenarios():
        contents = workload_contents(scenario)
        baseline, base_rate, base_cache, base_pdp = run_arm(scenario, contents, False, False)
        for arm, use_index, use_cache in ARMS:
            if arm == "baseline":
                responses, rate, cache, pdp = baseline, base_rate, base_cache, base_pdp
            else:
                responses, rate, cache, pdp = run_arm(scenario, contents, use_index, use_cache)
            # Zero divergence: the fast path must be bit-identical.
            assert responses == baseline, f"{arm} diverges from slow path on {scenario.name}"
            speedup = rate / base_rate
            if arm == "cache+index":
                fastpath_speedups[scenario.name] = speedup
            skipped = "-"
            if pdp.index is not None:
                stats = pdp.index.stats
                walked = sum(stats.as_dict().values())
                total_skipped = stats.rules_skipped + stats.children_skipped
                skipped = round(total_skipped / walked, 2) if walked else 0.0
            rows.append(
                {
                    "scenario": scenario.name,
                    "arm": arm,
                    "kdecisions_per_s": round(rate / 1000, 1),
                    "speedup": round(speedup, 2),
                    "cache_hit_rate": round(cache.hit_rate(), 2) if cache is not None else "-",
                    "skipped_frac": skipped,
                }
            )
    mode = ", smoke" if SMOKE else ""
    table = format_table(
        rows, title=f"E9: PDP fast path ({REQUESTS} requests x {PASSES} passes{mode})"
    )
    report("e9_pdp_fastpath", table)

    # Acceptance: >=2x decisions/sec on at least one scenario, full fast
    # path; smoke runs (noisy CI machines, shrunken workloads) get the
    # same relaxed floor E10 uses.
    floor = 1.3 if SMOKE else 2.0
    best = max(fastpath_speedups.values())
    assert best >= floor, f"fast path speedups too small: {fastpath_speedups}"
