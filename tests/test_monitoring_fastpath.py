"""Differential tests for the monitoring-plane fast path.

Every fast-path layer (cached canonical encodings, once-per-node
verification caches, in-place contract execution, fixed-base
exponentiation, compiled oracle) must be *decision-preserving*: with any
combination of :mod:`repro.common.fastpath` flags, hashes, signatures,
sizes, receipts and decisions are bit-identical to recompute-from-scratch.
Hypothesis drives random content through both paths, including
mutation-after-cache (copy-on-write) and reorg replay.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import Blockchain
from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import (
    ContractContext,
    ContractEngine,
    ContractRegistry,
    KeyValueContract,
)
from repro.blockchain.mempool import Mempool
from repro.blockchain.pow import grind_nonce, grind_nonce_parts
from repro.blockchain.transaction import Transaction
from repro.common.fastpath import FLAGS, configured
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import hash_value
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import Signature, SigningKey
from repro.drams.logs import EntryType, LogEntry
from tests.strategies import (
    FASTPATH_KEY as KEY,
    args_dicts,
    headers,
    json_values,
    transactions,
)

ALL_OFF = dict(encoding_cache=False, verify_cache=False,
               contract_inplace=False, compiled_oracle=False)


class TestTransactionEncodingCache:
    @given(transactions())
    @settings(max_examples=120, deadline=None)
    def test_cached_equals_recompute(self, tx):
        cached = (tx.signing_payload(), tx.content_hash(), tx.size_bytes())
        with configured(**ALL_OFF):
            fresh = (tx.signing_payload(), tx.content_hash(), tx.size_bytes())
        assert cached == fresh

    @given(transactions())
    @settings(max_examples=60, deadline=None)
    def test_content_hash_matches_definitional_form(self, tx):
        assert tx.content_hash() == hash_value({
            "sender": tx.sender, "contract": tx.contract, "method": tx.method,
            "args": tx.args, "seq": tx.seq, "tx_id": tx.tx_id,
        })

    @given(transactions(signed=st.just(True)), args_dicts)
    @settings(max_examples=60, deadline=None)
    def test_mutation_after_cache_via_replace(self, tx, new_args):
        before_payload = tx.signing_payload()
        before_hash = tx.content_hash()
        mutated = tx.replace(args=new_args)
        # The original's caches are untouched and its signature still holds.
        assert tx.signing_payload() == before_payload
        assert tx.content_hash() == before_hash
        assert tx.verify(KEY.public)
        # The copy re-encodes from scratch; differential vs caches-off.
        with configured(**ALL_OFF):
            expected_payload = Transaction(
                sender=tx.sender, contract=tx.contract, method=tx.method,
                args=new_args, seq=tx.seq, tx_id=tx.tx_id).signing_payload()
        assert mutated.signing_payload() == expected_payload
        if new_args != tx.args:
            assert mutated.content_hash() != before_hash
            assert not mutated.verify(KEY.public)

    def test_replace_rejects_unknown_fields(self):
        tx = Transaction(sender="a", contract="c", method="m", args={}, seq=1)
        with pytest.raises(Exception):
            tx.replace(nonsense=1)


class TestHeaderEncodingCache:
    @given(headers(), st.integers(0, 2**40))
    @settings(max_examples=120, deadline=None)
    def test_nonce_parts_reproduce_bytes_for_nonce(self, header, nonce):
        prefix, suffix = header.nonce_parts()
        assert prefix + str(nonce).encode() + suffix == header.bytes_for_nonce(nonce)

    @given(headers())
    @settings(max_examples=120, deadline=None)
    def test_cached_hash_equals_recompute(self, header):
        cached = header.block_hash()
        with configured(**ALL_OFF):
            assert cached == header.block_hash()

    @given(headers(), st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_in_place_header_mutation_invalidates_memo(self, header, nonce):
        header.block_hash()  # prime the memo
        header.nonce = nonce
        after_nonce = header.block_hash()
        header.merkle_root = header.merkle_root + "ff"
        after_root = header.block_hash()
        with configured(**ALL_OFF):
            # The memoised hashes track every in-place edit exactly.
            assert after_root == header.block_hash()
            header.merkle_root = header.merkle_root[:-2]
            assert after_nonce == header.block_hash()
        assert after_nonce != after_root


class TestPowGrinding:
    @given(headers())
    @settings(max_examples=30, deadline=None)
    def test_parts_grinding_matches_generic_grinding(self, header):
        generic = grind_nonce(header.bytes_for_nonce, difficulty_bits=6.0,
                              max_attempts=5_000)
        prefix, suffix = header.nonce_parts()
        parts = grind_nonce_parts(prefix, suffix, difficulty_bits=6.0,
                                  max_attempts=5_000)
        assert generic == parts


class TestMerkleAndLogs:
    @given(st.lists(st.text(max_size=20), max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_root_of_matches_tree_root(self, items):
        assert MerkleTree.root_of(items) == MerkleTree(items).root

    @given(args_dicts)
    @settings(max_examples=60, deadline=None)
    def test_log_entry_cached_payload_and_hash(self, payload):
        entry = LogEntry(correlation_id="c", entry_type=EntryType.PEP_IN,
                         tenant="t", component="x", payload=payload,
                         observed_at=0.0)
        assert entry.canonical_payload() == canonical_bytes(payload)
        assert entry.payload_hash() == hash_value(payload)
        with configured(**ALL_OFF):
            assert entry.payload_hash() == hash_value(payload)


class TestSignatureFastPath:
    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_fixed_base_sign_verify_matches_pow(self, message, seed):
        key = SigningKey.generate(seed)
        fast_sig = key.sign(message)
        assert key.public.verify(message, fast_sig)
        with configured(**ALL_OFF):
            slow_sig = key.sign(message)
            assert slow_sig == fast_sig
            assert key.public.verify(message, slow_sig)

    @given(st.integers(2**200, 2**400), st.integers(1, 2**40))
    @settings(max_examples=30, deadline=None)
    def test_oversized_forged_exponents_fall_back(self, e, s):
        # Forged signatures may carry exponents far beyond the table range;
        # both paths must agree (normally: reject).
        sig = Signature(e=e, s=s)
        fast = KEY.public.verify(b"msg", sig)
        with configured(**ALL_OFF):
            assert KEY.public.verify(b"msg", sig) == fast


class TestMempoolSizes:
    @given(st.lists(transactions(signed=st.just(True)), max_size=10),
           st.integers(1, 10), st.integers(50, 5_000))
    @settings(max_examples=60, deadline=None)
    def test_peek_with_cached_sizes_matches_recompute(self, txs, max_txs, max_bytes):
        pool_fast, pool_slow = Mempool(), Mempool()
        for tx in txs:
            pool_fast.add(tx)
            pool_slow.add(tx)
        fast = [tx.tx_id for tx in pool_fast.peek(max_txs, max_bytes)]
        with configured(**ALL_OFF):
            slow = [tx.tx_id for tx in pool_slow.peek(max_txs, max_bytes)]
        assert fast == slow


class TestEngineInPlace:
    ops = st.lists(st.tuples(
        st.sampled_from(["put", "get", "delete", "explode"]),
        st.text(min_size=1, max_size=4), json_values), max_size=12)

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_in_place_execution_matches_deepcopy(self, operations):
        def run():
            registry = ContractRegistry()
            registry.deploy(KeyValueContract())
            engine = ContractEngine(registry)
            receipts = []
            for index, (method, key, value) in enumerate(operations):
                ctx = ContractContext(block_height=1, block_timestamp=1.0,
                                      sender="s", tx_id=f"tx-{index}")
                receipt = engine.execute("kvstore", method,
                                         {"key": key, "value": value}, ctx)
                receipts.append((receipt.ok, receipt.error, receipt.result,
                                 [e.to_dict() for e in receipt.events]))
            return receipts, engine.state_of("kvstore")

        fast = run()
        with configured(**ALL_OFF):
            slow = run()
        assert fast == slow


class TestChainVerificationCaches:
    MINER = "miner-1"
    CLIENT = "client-1"
    MINER_KEY = SigningKey.generate(b"fastpath-miner")
    CLIENT_KEY = SigningKey.generate(b"fastpath-client")

    def lookup(self, name):
        return {self.MINER: self.MINER_KEY.public,
                self.CLIENT: self.CLIENT_KEY.public}.get(name)

    def make_chain(self):
        registry = ContractRegistry()
        registry.deploy(KeyValueContract())
        config = BlockchainConfig(chain_id="fp", difficulty_bits=8.0,
                                  target_block_interval=1.0, retarget_window=0,
                                  pow_mode="simulated", confirmations=2)
        return Blockchain(config, registry, key_lookup=self.lookup)

    def put_tx(self, seq, key="k", value=1):
        return Transaction(sender=self.CLIENT, contract="kvstore", method="put",
                           args={"key": key, "value": value}, seq=seq,
                           tx_id=f"fp-tx-{seq}-{key}").sign(self.CLIENT_KEY)

    def fork(self, chain, parent, txs=(), timestamp=None):
        header = BlockHeader(
            height=parent.height + 1,
            prev_hash=parent.hash,
            merkle_root="",
            timestamp=timestamp if timestamp is not None
            else parent.header.timestamp + 1.0,
            difficulty_bits=chain.expected_difficulty(parent.hash),
            miner=self.MINER,
        )
        block = Block(header=header, transactions=list(txs))
        header.merkle_root = block.compute_merkle_root()
        block.sign(self.MINER_KEY)
        return block

    def run_reorg(self):
        """Grow a branch, reorg to a competing one, replay state."""
        chain = self.make_chain()
        genesis = chain.head
        a1 = self.fork(chain, genesis, txs=[self.put_tx(1, "a", 1)])
        chain.add_block(a1)
        b1 = self.fork(chain, genesis, txs=[self.put_tx(1, "b", 2)],
                       timestamp=1.5)
        chain.add_block(b1)
        b2 = self.fork(chain, b1, txs=[self.put_tx(2, "c", 3)])
        chain.add_block(b2)
        return (chain.head.hash, chain.reorgs, chain.state_of("kvstore"),
                sorted(chain._tx_locations),
                [chain.confirmations(t) for t in sorted(chain._tx_locations)])

    def test_reorg_replay_identical_with_and_without_caches(self):
        fast = self.run_reorg()
        with configured(**ALL_OFF):
            slow = self.run_reorg()
        assert fast == slow
        assert fast[1] >= 1  # the reorg actually happened

    def test_tampered_body_rejected_despite_merkle_cache(self):
        chain = self.make_chain()
        block = chain.create_block(self.MINER, [self.put_tx(1)], 1.0,
                                   signing_key=self.MINER_KEY)
        block.transactions = []  # body substitution after mining
        with pytest.raises(Exception):
            chain.add_block(block)

    def test_tampered_tx_rejected_despite_signature_cache(self):
        chain = self.make_chain()
        tx = self.put_tx(1)
        assert chain.validate_transaction(tx)  # primes the verified-set
        tampered = tx.replace(args={"key": "k", "value": 999})
        block = chain.create_block(self.MINER, [tampered], 1.0,
                                   signing_key=self.MINER_KEY)
        with pytest.raises(Exception):
            chain.add_block(block)


class TestAuditBurstBlockLimits:
    """The audit-burst scenario drives block assembly into its caps."""

    def test_burst_hits_block_caps_and_every_log_still_commits(self):
        from repro.drams.system import DramsConfig
        from repro.harness import MonitoredFederation
        from repro.workload.scenarios import audit_burst_scenario

        max_block_txs = 16
        max_block_bytes = 24_000
        config = DramsConfig(
            chain=BlockchainConfig(
                chain_id="burst-chain", difficulty_bits=10.0,
                target_block_interval=0.5, retarget_window=0,
                max_block_txs=max_block_txs, max_block_bytes=max_block_bytes,
                pow_mode="simulated", confirmations=2),
            timeout_blocks=10, tick_interval=1.0,
            analyser_sweep_interval=1.0, node_hashrate=1024.0, use_tpm=False)
        stack = MonitoredFederation.build(audit_burst_scenario(), clouds=2,
                                          seed=42, with_drams=True,
                                          drams_config=config)
        stack.start()
        stack.issue_requests(80)
        stack.run(until=40.0)

        chain = stack.drams.reference_chain()
        blocks = chain.main_chain()
        body_counts = [len(block.transactions) for block in blocks]
        # The burst actually saturates templates (the calmer scenarios
        # never reach the caps)…
        assert max(body_counts) == max_block_txs
        assert sum(1 for count in body_counts if count == max_block_txs) >= 3
        assert all(block.body_size_bytes() <= max_block_bytes for block in blocks)
        # …and backlogged mempools drain without losing a single log:
        submitted = sum(li.logs_submitted for li in stack.drams.interfaces.values())
        stats = stack.drams.monitor_state()["stats"]
        assert stats["logs"] == submitted == 4 * len(stack.outcomes)
        assert stats["verified"] == len(stack.outcomes) == 80
        assert stack.drams.analyser.checked == 80


class TestCompiledOracle:
    def test_compiled_matches_interpreter_on_all_scenarios(self):
        from repro.analysis.semantics import DecisionOracle
        from repro.common.rng import SeededRng
        from repro.workload.generator import RequestGenerator
        from repro.workload.scenarios import all_scenarios

        for scenario in all_scenarios():
            compiled = DecisionOracle(scenario.policy_document, compiled=True)
            interpreted = DecisionOracle(scenario.policy_document, compiled=False)
            generator = RequestGenerator(scenario.workload,
                                         SeededRng(11, "oracle-diff"))
            for generated in generator.requests(80):
                request = {
                    "subject": {k: [v] for k, v in generated.subject.items()},
                    "resource": {k: [v] for k, v in generated.resource.items()},
                    "action": {k: [v] for k, v in generated.action.items()},
                    "environment": {"origin-tenant": ["tenant-1"]},
                }
                assert (compiled.expected_decision(request)
                        == interpreted.expected_decision(request)), (
                    f"oracle divergence on {scenario.name}: {request}")

    def test_flag_controls_default_mode(self):
        from repro.analysis.semantics import DecisionOracle
        from repro.workload.scenarios import healthcare_scenario

        document = healthcare_scenario().policy_document
        assert DecisionOracle(document).compiled is FLAGS.compiled_oracle
        with configured(compiled_oracle=False):
            assert DecisionOracle(document).compiled is False
