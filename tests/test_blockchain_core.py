"""Transactions, blocks, mempool and the contract engine."""

import pytest

from repro.blockchain.block import Block, BlockHeader, make_genesis
from repro.blockchain.contracts import (
    ContractContext,
    ContractEngine,
    ContractError,
    ContractRegistry,
    KeyValueContract,
)
from repro.blockchain.mempool import Mempool
from repro.blockchain.transaction import Transaction
from repro.common.errors import ValidationError
from repro.crypto.signatures import SigningKey


def make_tx(seq=1, sender="alice", key=None, **args) -> Transaction:
    tx = Transaction(sender=sender, contract="kvstore", method="put",
                     args=args or {"key": "k", "value": 1}, seq=seq)
    if key is not None:
        tx.sign(key)
    return tx


class TestTransaction:
    def test_sign_and_verify(self):
        key = SigningKey.generate(b"alice")
        tx = make_tx(key=key)
        assert tx.verify(key.public)

    def test_unsigned_fails_verification(self):
        key = SigningKey.generate(b"alice")
        assert not make_tx().verify(key.public)

    def test_tampered_args_fail_verification(self):
        key = SigningKey.generate(b"alice")
        tx = make_tx(key=key)
        tampered = tx.replace(args={**tx.args, "value": 999})
        assert not tampered.verify(key.public)
        # The original is untouched and still verifies.
        assert tx.verify(key.public)

    def test_content_hash_excludes_submission_time(self):
        tx = make_tx()
        before = tx.content_hash()
        tx.submitted_at = 123.0
        assert tx.content_hash() == before

    def test_dict_roundtrip_preserves_signature(self):
        key = SigningKey.generate(b"alice")
        tx = make_tx(key=key)
        restored = Transaction.from_dict(tx.to_dict())
        assert restored.verify(key.public)
        assert restored.content_hash() == tx.content_hash()

    def test_malformed_dict_raises(self):
        with pytest.raises(ValidationError):
            Transaction.from_dict({"sender": "x"})

    def test_size_includes_signature_overhead(self):
        key = SigningKey.generate(b"alice")
        unsigned = make_tx()
        signed = make_tx(key=key)
        assert signed.size_bytes() > unsigned.size_bytes()


class TestBlock:
    def make_block(self, txs=(), nonce=0) -> Block:
        header = BlockHeader(height=1, prev_hash="00" * 32, merkle_root="",
                             timestamp=1.0, difficulty_bits=8.0, miner="m",
                             nonce=nonce)
        block = Block(header=header, transactions=list(txs))
        header.merkle_root = block.compute_merkle_root()
        return block

    def test_hash_changes_with_nonce(self):
        assert self.make_block(nonce=0).hash != self.make_block(nonce=1).hash

    def test_hash_survives_serialization_roundtrip(self):
        key = SigningKey.generate(b"m")
        block = self.make_block(txs=[make_tx(key=key)])
        block.sign(key)
        restored = Block.from_dict(block.to_dict())
        assert restored.hash == block.hash
        assert restored.verify_miner_signature(key.public)

    def test_merkle_root_tracks_transactions(self):
        key = SigningKey.generate(b"alice")
        a = self.make_block(txs=[make_tx(seq=1, key=key)])
        b = self.make_block(txs=[make_tx(seq=2, key=key)])
        assert a.header.merkle_root != b.header.merkle_root

    def test_miner_signature_binds_block_hash(self):
        key = SigningKey.generate(b"m")
        block = self.make_block()
        block.sign(key)
        block.header.nonce += 1  # changes the hash
        assert not block.verify_miner_signature(key.public)

    def test_genesis_is_deterministic(self):
        a = make_genesis("chain", "digest", 8.0)
        b = make_genesis("chain", "digest", 8.0)
        assert a.hash == b.hash

    def test_genesis_differs_per_chain_id(self):
        assert (make_genesis("one", "d", 8.0).hash
                != make_genesis("two", "d", 8.0).hash)

    def test_body_size(self):
        key = SigningKey.generate(b"alice")
        assert self.make_block().body_size_bytes() == 0
        assert self.make_block(txs=[make_tx(key=key)]).body_size_bytes() > 0


class TestMempool:
    def test_fifo_order(self):
        pool = Mempool()
        txs = [make_tx(seq=i) for i in range(5)]
        for tx in txs:
            assert pool.add(tx)
        assert pool.peek(10, 10**9) == txs

    def test_duplicate_rejected(self):
        pool = Mempool()
        tx = make_tx()
        assert pool.add(tx)
        assert not pool.add(tx)
        assert len(pool) == 1

    def test_capacity_limit(self):
        pool = Mempool(max_size=2)
        assert pool.add(make_tx(seq=1))
        assert pool.add(make_tx(seq=2))
        assert not pool.add(make_tx(seq=3))

    def test_peek_respects_tx_count(self):
        pool = Mempool()
        for i in range(5):
            pool.add(make_tx(seq=i))
        assert len(pool.peek(3, 10**9)) == 3

    def test_peek_respects_byte_budget(self):
        pool = Mempool()
        for i in range(5):
            pool.add(make_tx(seq=i))
        one_size = pool.pending()[0].size_bytes()
        assert len(pool.peek(10, one_size * 2 + 1)) == 2

    def test_peek_excludes(self):
        pool = Mempool()
        txs = [make_tx(seq=i) for i in range(3)]
        for tx in txs:
            pool.add(tx)
        selected = pool.peek(10, 10**9, exclude={txs[0].tx_id})
        assert txs[0] not in selected

    def test_remove_all(self):
        pool = Mempool()
        txs = [make_tx(seq=i) for i in range(3)]
        for tx in txs:
            pool.add(tx)
        pool.remove_all([txs[0].tx_id, txs[2].tx_id])
        assert pool.pending() == [txs[1]]

    def test_contains(self):
        pool = Mempool()
        tx = make_tx()
        pool.add(tx)
        assert tx.tx_id in pool


class TestContractEngine:
    def engine(self) -> ContractEngine:
        registry = ContractRegistry()
        registry.deploy(KeyValueContract())
        return ContractEngine(registry)

    def ctx(self, height=1, tx_id="tx-1", sender="alice") -> ContractContext:
        return ContractContext(block_height=height, block_timestamp=1.0,
                               sender=sender, tx_id=tx_id)

    def test_put_get(self):
        engine = self.engine()
        receipt = engine.execute("kvstore", "put", {"key": "a", "value": 1},
                                 self.ctx())
        assert receipt.ok
        assert engine.state_of("kvstore")["data"] == {"a": 1}

    def test_events_emitted(self):
        engine = self.engine()
        receipt = engine.execute("kvstore", "put", {"key": "a", "value": 1},
                                 self.ctx())
        assert len(receipt.events) == 1
        assert receipt.events[0].name == "Put"
        assert receipt.events[0].payload["by"] == "alice"

    def test_failed_invocation_reverts_state(self):
        engine = self.engine()
        receipt = engine.execute("kvstore", "delete", {"key": "ghost"}, self.ctx())
        assert not receipt.ok
        assert "no such key" in receipt.error
        assert engine.state_of("kvstore")["writes"] == 0

    def test_partial_mutation_reverted_on_error(self):
        registry = ContractRegistry()

        class Flaky(KeyValueContract):
            name = "flaky"
            # Mutates before raising, so it must opt out of the engine's
            # in-place fast path to keep the revert guarantee.
            checked_invoke = False

            def invoke(self, state, method, args, ctx, emit):
                if method == "boom":
                    state["data"]["partial"] = True
                    raise ContractError("exploded after mutation")
                return super().invoke(state, method, args, ctx, emit)

        registry.deploy(Flaky())
        engine = ContractEngine(registry)
        receipt = engine.execute("flaky", "boom", {}, self.ctx())
        assert not receipt.ok
        assert "partial" not in engine.state_of("flaky")["data"]

    def test_unknown_contract_raises(self):
        with pytest.raises(ValidationError):
            self.engine().execute("ghost", "put", {}, self.ctx())

    def test_unknown_method_reverts(self):
        receipt = self.engine().execute("kvstore", "explode", {}, self.ctx())
        assert not receipt.ok

    def test_gas_scales_with_args(self):
        engine = self.engine()
        small = engine.execute("kvstore", "put", {"key": "a", "value": "x"},
                               self.ctx(tx_id="t1"))
        large = engine.execute("kvstore", "put", {"key": "b", "value": "x" * 500},
                               self.ctx(tx_id="t2"))
        assert large.gas_used > small.gas_used

    def test_dump_and_load_state(self):
        engine = self.engine()
        engine.execute("kvstore", "put", {"key": "a", "value": 1}, self.ctx())
        snapshot = engine.dump_state()
        engine.execute("kvstore", "put", {"key": "b", "value": 2},
                       self.ctx(tx_id="t2"))
        engine.load_state(snapshot)
        assert engine.state_of("kvstore")["data"] == {"a": 1}

    def test_reset_restores_genesis_state(self):
        engine = self.engine()
        engine.execute("kvstore", "put", {"key": "a", "value": 1}, self.ctx())
        engine.reset()
        assert engine.state_of("kvstore")["data"] == {}

    def test_duplicate_deploy_rejected(self):
        registry = ContractRegistry()
        registry.deploy(KeyValueContract())
        with pytest.raises(ValidationError):
            registry.deploy(KeyValueContract())
