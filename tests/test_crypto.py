"""Cryptographic primitives: hashing, AEAD, signatures, keystore, TPM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CryptoError
from repro.crypto.hashing import (
    constant_time_equals,
    hash_pair,
    hash_value,
    hmac_hex,
    sha256_hex,
)
from repro.crypto.keystore import KeyStore
from repro.crypto.signatures import Signature, SigningKey, VerifyingKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.crypto.tpm import SimulatedTpm


class TestHashing:
    def test_hash_value_canonical(self):
        assert hash_value({"a": 1, "b": 2}) == hash_value({"b": 2, "a": 1})

    def test_hash_pair_order_matters(self):
        assert hash_pair("aa", "bb") != hash_pair("bb", "aa")

    def test_hmac_depends_on_key(self):
        assert hmac_hex(b"k1", b"data") != hmac_hex(b"k2", b"data")

    def test_constant_time_equals(self):
        digest = sha256_hex(b"x")
        assert constant_time_equals(digest, digest)
        assert not constant_time_equals(digest, sha256_hex(b"y"))


class TestSymmetric:
    def test_roundtrip(self):
        key = SymmetricKey.generate(entropy=b"test")
        blob = key.encrypt(b"secret log payload")
        assert key.decrypt(blob) == b"secret log payload"

    def test_ciphertext_differs_from_plaintext(self):
        key = SymmetricKey.generate(entropy=b"test")
        blob = key.encrypt(b"secret")
        assert blob.ciphertext != b"secret"

    def test_tampered_ciphertext_rejected(self):
        key = SymmetricKey.generate(entropy=b"test")
        blob = key.encrypt(b"secret")
        tampered = EncryptedBlob(
            nonce=blob.nonce,
            ciphertext=bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:],
            tag=blob.tag)
        with pytest.raises(CryptoError):
            key.decrypt(tampered)

    def test_tampered_tag_rejected(self):
        key = SymmetricKey.generate(entropy=b"test")
        blob = key.encrypt(b"secret")
        tampered = EncryptedBlob(nonce=blob.nonce, ciphertext=blob.ciphertext,
                                 tag="0" * 64)
        with pytest.raises(CryptoError):
            key.decrypt(tampered)

    def test_wrong_key_rejected(self):
        blob = SymmetricKey.generate(entropy=b"one").encrypt(b"secret")
        with pytest.raises(CryptoError):
            SymmetricKey.generate(entropy=b"two").decrypt(blob)

    def test_deterministic_generation_from_entropy(self):
        a = SymmetricKey.generate(entropy=b"same")
        b = SymmetricKey.generate(entropy=b"same")
        assert a.fingerprint() == b.fingerprint()

    def test_blob_dict_roundtrip(self):
        key = SymmetricKey.generate(entropy=b"test")
        blob = key.encrypt(b"payload")
        restored = EncryptedBlob.from_dict(blob.to_dict())
        assert key.decrypt(restored) == b"payload"

    def test_malformed_blob_dict_raises(self):
        with pytest.raises(CryptoError):
            EncryptedBlob.from_dict({"nonce": "zz", "ciphertext": "", "tag": ""})

    def test_bad_key_size_rejected(self):
        with pytest.raises(CryptoError):
            SymmetricKey(b"short")

    def test_explicit_nonce_must_be_right_size(self):
        key = SymmetricKey.generate(entropy=b"test")
        with pytest.raises(CryptoError):
            key.encrypt(b"x", nonce=b"tiny")

    @given(st.binary(max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, plaintext):
        key = SymmetricKey.generate(entropy=b"prop")
        assert key.decrypt(key.encrypt(plaintext)) == plaintext

    def test_empty_plaintext(self):
        key = SymmetricKey.generate(entropy=b"test")
        assert key.decrypt(key.encrypt(b"")) == b""


class TestSignatures:
    def test_sign_verify(self):
        key = SigningKey.generate(b"alice")
        signature = key.sign(b"message")
        assert key.public.verify(b"message", signature)

    def test_wrong_message_fails(self):
        key = SigningKey.generate(b"alice")
        signature = key.sign(b"message")
        assert not key.public.verify(b"other", signature)

    def test_wrong_key_fails(self):
        alice = SigningKey.generate(b"alice")
        bob = SigningKey.generate(b"bob")
        assert not bob.public.verify(b"message", alice.sign(b"message"))

    def test_signature_is_deterministic(self):
        key = SigningKey.generate(b"alice")
        assert key.sign(b"m") == key.sign(b"m")

    def test_signature_dict_roundtrip(self):
        key = SigningKey.generate(b"alice")
        signature = key.sign(b"m")
        assert Signature.from_dict(signature.to_dict()) == signature

    def test_verifying_key_dict_roundtrip(self):
        key = SigningKey.generate(b"alice")
        restored = VerifyingKey.from_dict(key.public.to_dict())
        assert restored.verify(b"m", key.sign(b"m"))

    def test_key_id_stable(self):
        key = SigningKey.generate(b"alice")
        assert key.public.key_id() == SigningKey.generate(b"alice").public.key_id()

    def test_out_of_range_signature_rejected(self):
        key = SigningKey.generate(b"alice")
        assert not key.public.verify(b"m", Signature(e=0, s=0))

    def test_malformed_signature_dict(self):
        with pytest.raises(CryptoError):
            Signature.from_dict({"e": "xx"})

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_verify_property(self, message):
        key = SigningKey.generate(b"prop")
        assert key.public.verify(message, key.sign(message))
        assert not key.public.verify(message + b"!", key.sign(message))


class TestKeyStore:
    def test_symmetric_storage(self):
        store = KeyStore("li@t1")
        key = SymmetricKey.generate(entropy=b"k")
        store.store_symmetric("K", key)
        assert store.symmetric("K") is key
        assert store.has_symmetric("K")

    def test_missing_symmetric_raises(self):
        with pytest.raises(CryptoError):
            KeyStore("x").symmetric("missing")

    def test_drop_symmetric(self):
        store = KeyStore("x")
        store.store_symmetric("K", SymmetricKey.generate(entropy=b"k"))
        store.drop_symmetric("K")
        assert not store.has_symmetric("K")

    def test_signing_key_lifecycle(self):
        store = KeyStore("x")
        with pytest.raises(CryptoError):
            _ = store.signing_key
        key = SigningKey.generate(b"x")
        store.install_signing_key(key)
        assert store.signing_key is key

    def test_peer_registry(self):
        store = KeyStore("x")
        key = SigningKey.generate(b"peer").public
        store.register_peer("peer-1", key)
        assert store.peer_key("peer-1") == key
        assert store.known_peers() == ["peer-1"]

    def test_conflicting_registration_rejected(self):
        store = KeyStore("x")
        store.register_peer("p", SigningKey.generate(b"a").public)
        with pytest.raises(CryptoError):
            store.register_peer("p", SigningKey.generate(b"b").public)

    def test_same_registration_is_idempotent(self):
        store = KeyStore("x")
        key = SigningKey.generate(b"a").public
        store.register_peer("p", key)
        store.register_peer("p", key)

    def test_unknown_peer_raises(self):
        with pytest.raises(CryptoError):
            KeyStore("x").peer_key("ghost")


class TestTpm:
    def make(self) -> SimulatedTpm:
        return SimulatedTpm("tpm-1", endorsement_seed=b"seed")

    def test_seal_unseal_under_same_pcr(self):
        tpm = self.make()
        tpm.extend_pcr({"component": "li", "version": 1})
        tpm.seal("K", "key-material")
        assert tpm.unseal("K") == "key-material"

    def test_unseal_refused_after_measurement_change(self):
        tpm = self.make()
        tpm.extend_pcr({"component": "li", "version": 1})
        tpm.seal("K", "key-material")
        tpm.extend_pcr({"malicious": "patch"})
        with pytest.raises(CryptoError):
            tpm.unseal("K")

    def test_unseal_unknown_name(self):
        with pytest.raises(CryptoError):
            self.make().unseal("nothing")

    def test_pcr_extension_is_order_sensitive(self):
        a = self.make()
        b = self.make()
        a.extend_pcr("m1")
        a.extend_pcr("m2")
        b.extend_pcr("m2")
        b.extend_pcr("m1")
        assert a.pcr != b.pcr

    def test_reset_restores_initial_pcr(self):
        tpm = self.make()
        initial = tpm.pcr
        tpm.extend_pcr("m")
        tpm.reset()
        assert tpm.pcr == initial

    def test_attestation_verifies_with_matching_pcr(self):
        tpm = self.make()
        tpm.extend_pcr("m")
        report = tpm.attest("nonce-1")
        assert report.verify(tpm.endorsement_key, tpm.pcr, "nonce-1")

    def test_attestation_fails_on_wrong_nonce(self):
        tpm = self.make()
        report = tpm.attest("nonce-1")
        assert not report.verify(tpm.endorsement_key, tpm.pcr, "nonce-2")

    def test_attestation_fails_on_pcr_drift(self):
        tpm = self.make()
        expected = tpm.pcr
        tpm.extend_pcr("malicious")
        report = tpm.attest("n")
        assert not report.verify(tpm.endorsement_key, expected, "n")

    def test_attestation_fails_with_wrong_endorsement_key(self):
        tpm = self.make()
        other = SimulatedTpm("tpm-2", endorsement_seed=b"other")
        report = tpm.attest("n")
        assert not report.verify(other.endorsement_key, tpm.pcr, "n")
