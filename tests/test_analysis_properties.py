"""Finite-domain policy verification: completeness, conflicts, change impact."""

import pytest

from repro.analysis.properties import (
    AttributeDomain,
    change_impact,
    check_completeness,
    enumerate_requests,
    find_conflicts,
)
from repro.common.errors import ValidationError
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, PolicySet, Rule, Target


def simple_domain() -> AttributeDomain:
    domain = AttributeDomain()
    domain.declare("subject", "role", ["doctor", "nurse"])
    domain.declare("action", "action-id", ["read", "write"])
    return domain


def permit_doctors_policy() -> dict:
    return policy_to_dict(Policy(
        policy_id="p", rule_combining="first-applicable",
        rules=[Rule("allow-doctors", Effect.PERMIT,
                    target=Target.single("string-equal", "doctor",
                                         "subject", "role"))]))


def total_policy() -> dict:
    return policy_to_dict(Policy(
        policy_id="p", rule_combining="first-applicable",
        rules=[Rule("allow-doctors", Effect.PERMIT,
                    target=Target.single("string-equal", "doctor",
                                         "subject", "role")),
               Rule("default-deny", Effect.DENY)]))


class TestDomain:
    def test_size_is_product(self):
        assert simple_domain().size() == 4

    def test_empty_domain_size_is_one(self):
        assert AttributeDomain().size() == 1

    def test_declare_rejects_empty_values(self):
        with pytest.raises(ValidationError):
            AttributeDomain().declare("subject", "role", [])

    def test_enumerate_covers_product(self):
        requests = list(enumerate_requests(simple_domain()))
        assert len(requests) == 4
        roles = {req["subject"]["role"][0] for req in requests}
        assert roles == {"doctor", "nurse"}


class TestCompleteness:
    def test_gap_detected(self):
        report = check_completeness(permit_doctors_policy(), simple_domain())
        assert not report.holds
        assert report.checked == 4
        assert any(cex["decision"] == "NotApplicable"
                   for cex in report.counterexamples)

    def test_total_policy_is_complete(self):
        report = check_completeness(total_policy(), simple_domain())
        assert report.holds
        assert report.exhaustive
        assert report.counterexamples == []

    def test_summary_mentions_verdict(self):
        report = check_completeness(total_policy(), simple_domain())
        assert "HOLDS" in report.summary()

    def test_sampling_kicks_in_for_large_domains(self):
        domain = simple_domain()
        domain.declare("resource", "resource-id",
                       [f"r{i}" for i in range(200)])
        domain.declare("resource", "tag", [f"t{i}" for i in range(200)])
        report = check_completeness(total_policy(), domain,
                                    max_exhaustive=1000, sample_size=500)
        assert not report.exhaustive
        assert report.checked == 500


class TestConflicts:
    def test_opposite_rules_conflict(self):
        policy = policy_to_dict(Policy(
            policy_id="p", rule_combining="deny-overrides",
            rules=[
                Rule("allow-read", Effect.PERMIT,
                     target=Target.single("string-equal", "read",
                                          "action", "action-id")),
                Rule("deny-doctors", Effect.DENY,
                     target=Target.single("string-equal", "doctor",
                                          "subject", "role")),
            ]))
        report = find_conflicts(policy, simple_domain())
        assert not report.holds
        sample = report.counterexamples[0]
        assert sample["permit_rules"] == ["allow-read"]
        assert sample["deny_rules"] == ["deny-doctors"]

    def test_disjoint_rules_do_not_conflict(self):
        report = find_conflicts(total_policy(), simple_domain())
        # default-deny applies everywhere, allow-doctors only to doctors:
        # they do conflict on doctor requests under this definition.
        assert not report.holds
        policy = policy_to_dict(Policy(
            policy_id="p", rule_combining="first-applicable",
            rules=[
                Rule("allow-doctors", Effect.PERMIT,
                     target=Target.single("string-equal", "doctor",
                                          "subject", "role")),
                Rule("deny-nurses", Effect.DENY,
                     target=Target.single("string-equal", "nurse",
                                          "subject", "role")),
            ]))
        assert find_conflicts(policy, simple_domain()).holds

    def test_conflicts_scan_nested_sets(self):
        root = policy_to_dict(PolicySet(
            policy_set_id="root", policy_combining="deny-overrides",
            children=[
                Policy(policy_id="inner", rule_combining="deny-overrides",
                       rules=[Rule("p1", Effect.PERMIT),
                              Rule("d1", Effect.DENY)]),
            ]))
        report = find_conflicts(root, simple_domain())
        assert not report.holds
        assert report.counterexamples[0]["policy_id"] == "inner"


class TestChangeImpact:
    def test_identical_versions_have_no_impact(self):
        report = change_impact(total_policy(), total_policy(), simple_domain())
        assert report.holds

    def test_changed_rule_is_localised(self):
        old = total_policy()
        new = policy_to_dict(Policy(
            policy_id="p", rule_combining="first-applicable",
            rules=[Rule("allow-nobody", Effect.DENY)]))
        report = change_impact(old, new, simple_domain())
        assert not report.holds
        # Only doctor requests change (Permit -> Deny).
        for cex in report.counterexamples:
            assert cex["request"]["subject"]["role"] == ["doctor"]
            assert cex["old"] == "Permit" and cex["new"] == "Deny"

    def test_impact_counts_all_checked(self):
        report = change_impact(total_policy(), total_policy(), simple_domain())
        assert report.checked == simple_domain().size()
