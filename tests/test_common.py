"""Identifiers and seeded randomness."""

from hypothesis import given, strategies as st

from repro.common.ids import correlation_id, new_id, short_hash
from repro.common.rng import SeededRng


class TestIds:
    def test_new_ids_are_unique(self):
        ids = {new_id("x") for _ in range(1000)}
        assert len(ids) == 1000

    def test_new_id_uses_prefix(self):
        assert new_id("pep").startswith("pep-")

    def test_short_hash_is_deterministic(self):
        assert short_hash({"a": 1}) == short_hash({"a": 1})

    def test_short_hash_respects_length(self):
        assert len(short_hash("x", length=8)) == 8

    def test_correlation_id_ignores_key_order(self):
        assert correlation_id({"a": 1, "b": 2}) == correlation_id({"b": 2, "a": 1})

    def test_correlation_id_is_full_width(self):
        assert len(correlation_id("x")) == 64

    @given(st.dictionaries(st.text(max_size=5), st.integers(), max_size=4))
    def test_correlation_distinct_for_distinct_values(self, value):
        tweaked = dict(value)
        tweaked["__extra__"] = 1
        assert correlation_id(value) != correlation_id(tweaked)


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(7).fork("x")
        b = SeededRng(7).fork("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_give_independent_streams(self):
        root = SeededRng(7)
        a = root.fork("a")
        b = root.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_stable_under_sibling_creation(self):
        # Adding a new consumer must not perturb existing streams.
        root1 = SeededRng(7)
        stream1 = root1.fork("target")
        values1 = [stream1.random() for _ in range(5)]

        root2 = SeededRng(7)
        root2.fork("new-sibling")  # extra fork before the target
        stream2 = root2.fork("target")
        values2 = [stream2.random() for _ in range(5)]
        assert values1 == values2

    def test_expovariate_positive(self, rng):
        assert all(rng.expovariate(2.0) > 0 for _ in range(100))

    def test_expovariate_rejects_bad_rate(self, rng):
        import pytest

        with pytest.raises(ValueError):
            rng.expovariate(0)

    def test_choice_rejects_empty(self, rng):
        import pytest

        with pytest.raises(ValueError):
            rng.choice([])

    def test_zipf_index_in_range(self, rng):
        draws = [rng.zipf_index(10) for _ in range(500)]
        assert all(0 <= draw < 10 for draw in draws)

    def test_zipf_is_skewed_toward_low_indices(self, rng):
        draws = [rng.zipf_index(50, skew=1.2) for _ in range(2000)]
        head = sum(1 for draw in draws if draw < 5)
        tail = sum(1 for draw in draws if draw >= 45)
        assert head > tail * 3

    def test_zipf_rejects_empty_domain(self, rng):
        import pytest

        with pytest.raises(ValueError):
            rng.zipf_index(0)

    def test_sample_and_shuffle(self, rng):
        population = list(range(20))
        sample = rng.sample(population, 5)
        assert len(sample) == 5 and set(sample) <= set(population)
        copy = list(population)
        rng.shuffle(copy)
        assert sorted(copy) == population
