"""Targets, rules, policies, policy sets, obligations, PDP."""

import pytest

from repro.common.errors import PolicyError
from repro.xacml.attributes import DataType
from repro.xacml.context import Decision, Obligation, RequestContext, StatusCode
from repro.xacml.expressions import Apply, AttributeDesignator, Literal
from repro.xacml.parser import policy_from_dict, policy_to_dict
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import (
    AllOf,
    AnyOf,
    Effect,
    Match,
    MatchResult,
    Policy,
    PolicySet,
    Rule,
    Target,
)


def doctor_request(action="read", role="doctor"):
    return RequestContext.of(
        subject={"subject-id": "alice", "role": role},
        resource={"resource-id": "r1", "type": "medical-record"},
        action={"action-id": action},
    )


def match(function, value, category, attribute_id, data_type=DataType.STRING):
    return Match(function=function, value=value,
                 designator=AttributeDesignator(category, attribute_id, data_type))


class TestMatch:
    def test_match_against_bag(self):
        m = match("string-equal", "doctor", "subject", "role")
        assert m.evaluate(doctor_request()) is MatchResult.MATCH

    def test_no_match(self):
        m = match("string-equal", "admin", "subject", "role")
        assert m.evaluate(doctor_request()) is MatchResult.NO_MATCH

    def test_missing_attribute_is_no_match(self):
        m = match("string-equal", "x", "subject", "ghost")
        assert m.evaluate(doctor_request()) is MatchResult.NO_MATCH

    def test_type_error_is_indeterminate(self):
        m = match("integer-greater-than", 3, "subject", "role", DataType.INTEGER)
        assert m.evaluate(doctor_request()) is MatchResult.INDETERMINATE

    def test_unknown_function_rejected(self):
        with pytest.raises(PolicyError):
            match("no-such-fn", "x", "subject", "role")

    def test_higher_order_rejected(self):
        with pytest.raises(PolicyError):
            match("any-of", "x", "subject", "role")


class TestTarget:
    def test_empty_target_matches_everything(self):
        assert Target.match_all().evaluate(doctor_request()) is MatchResult.MATCH

    def test_single_helper(self):
        target = Target.single("string-equal", "doctor", "subject", "role")
        assert target.evaluate(doctor_request()) is MatchResult.MATCH
        assert target.evaluate(doctor_request(role="nurse")) is MatchResult.NO_MATCH

    def test_anyof_is_disjunction(self):
        target = Target(any_ofs=(AnyOf(all_ofs=(
            AllOf(matches=(match("string-equal", "admin", "subject", "role"),)),
            AllOf(matches=(match("string-equal", "doctor", "subject", "role"),)),
        )),))
        assert target.evaluate(doctor_request()) is MatchResult.MATCH

    def test_allof_is_conjunction(self):
        target = Target(any_ofs=(AnyOf(all_ofs=(
            AllOf(matches=(
                match("string-equal", "doctor", "subject", "role"),
                match("string-equal", "write", "action", "action-id"),
            )),
        )),))
        assert target.evaluate(doctor_request("read")) is MatchResult.NO_MATCH
        assert target.evaluate(doctor_request("write")) is MatchResult.MATCH

    def test_top_level_anyofs_conjoin(self):
        target = Target(any_ofs=(
            Target.single("string-equal", "doctor", "subject", "role").any_ofs[0],
            Target.single("string-equal", "read", "action", "action-id").any_ofs[0],
        ))
        assert target.evaluate(doctor_request("read")) is MatchResult.MATCH
        assert target.evaluate(doctor_request("write")) is MatchResult.NO_MATCH


class TestRule:
    def test_unconditional_rule_returns_effect(self):
        rule = Rule("r", Effect.PERMIT)
        assert rule.evaluate(doctor_request()) is Decision.PERMIT

    def test_target_gates_rule(self):
        rule = Rule("r", Effect.PERMIT,
                    target=Target.single("string-equal", "admin", "subject", "role"))
        assert rule.evaluate(doctor_request()) is Decision.NOT_APPLICABLE

    def test_condition_false_is_not_applicable(self):
        rule = Rule("r", Effect.PERMIT, condition=Literal(False))
        assert rule.evaluate(doctor_request()) is Decision.NOT_APPLICABLE

    def test_condition_error_is_effect_indeterminate(self):
        broken = Apply("one-and-only",
                       (AttributeDesignator("subject", "ghost"),))
        permit_rule = Rule("r", Effect.PERMIT,
                           condition=Apply("string-equal", (broken, Literal("x"))))
        assert permit_rule.evaluate(doctor_request()) is Decision.INDETERMINATE_P
        deny_rule = Rule("r", Effect.DENY,
                         condition=Apply("string-equal", (broken, Literal("x"))))
        assert deny_rule.evaluate(doctor_request()) is Decision.INDETERMINATE_D

    def test_non_boolean_condition_is_indeterminate(self):
        rule = Rule("r", Effect.PERMIT, condition=Literal("not-a-bool"))
        assert rule.evaluate(doctor_request()) is Decision.INDETERMINATE_P


class TestPolicy:
    def test_rules_combine(self):
        policy = Policy("p", "first-applicable", rules=[
            Rule("allow-read", Effect.PERMIT,
                 target=Target.single("string-equal", "read", "action", "action-id")),
            Rule("deny", Effect.DENY),
        ])
        assert policy.evaluate(doctor_request("read")) is Decision.PERMIT
        assert policy.evaluate(doctor_request("write")) is Decision.DENY

    def test_policy_target_gates_all_rules(self):
        policy = Policy("p", "permit-overrides",
                        target=Target.single("string-equal", "admin",
                                             "subject", "role"),
                        rules=[Rule("r", Effect.PERMIT)])
        assert policy.evaluate(doctor_request()) is Decision.NOT_APPLICABLE

    def test_policy_requires_rules(self):
        with pytest.raises(PolicyError):
            Policy("p", "deny-overrides", rules=[])

    def test_unknown_combining_rejected(self):
        with pytest.raises(PolicyError):
            Policy("p", "magic", rules=[Rule("r", Effect.PERMIT)])

    def test_obligations_follow_decision(self):
        policy = Policy("p", "first-applicable",
                        rules=[Rule("r", Effect.PERMIT)],
                        obligations=[
                            Obligation("log-it", "Permit", {"level": "info"}),
                            Obligation("alert", "Deny"),
                        ])
        decision, obligations = policy.evaluate_full(doctor_request())
        assert decision is Decision.PERMIT
        assert [ob.obligation_id for ob in obligations] == ["log-it"]


class TestPolicySet:
    def build_set(self) -> PolicySet:
        records = Policy("records", "first-applicable",
                         target=Target.single("string-equal", "medical-record",
                                              "resource", "type"),
                         rules=[Rule("allow-doctors", Effect.PERMIT,
                                     target=Target.single("string-equal", "doctor",
                                                          "subject", "role")),
                                Rule("deny", Effect.DENY)],
                         obligations=[Obligation("audit", "Permit")])
        return PolicySet("root", "deny-unless-permit", children=[records],
                         obligations=[Obligation("root-log", "Permit")])

    def test_nested_evaluation(self):
        assert self.build_set().evaluate(doctor_request()) is Decision.PERMIT

    def test_deny_unless_permit_closes_gaps(self):
        request = RequestContext.of(subject={"role": "doctor"},
                                    resource={"type": "unknown-type"},
                                    action={"action-id": "read"})
        assert self.build_set().evaluate(request) is Decision.DENY

    def test_obligations_propagate_from_agreeing_children(self):
        decision, obligations = self.build_set().evaluate_full(doctor_request())
        ids = sorted(ob.obligation_id for ob in obligations)
        assert decision is Decision.PERMIT
        assert ids == ["audit", "root-log"]

    def test_disagreeing_child_obligations_not_collected(self):
        request = doctor_request(role="nurse")  # records policy denies
        policy_set = self.build_set()
        decision, obligations = policy_set.evaluate_full(request)
        assert decision is Decision.DENY
        assert obligations == []  # root's obligation is Permit-only

    def test_iter_policies(self):
        assert [p.policy_id for p in self.build_set().iter_policies()] == ["records"]

    def test_empty_policy_set_rejected(self):
        with pytest.raises(PolicyError):
            PolicySet("root", "deny-overrides", children=[])


class TestPdp:
    def test_response_contains_obligations(self):
        policy = Policy("p", "first-applicable",
                        rules=[Rule("r", Effect.PERMIT)],
                        obligations=[Obligation("notify", "Permit")])
        response = PolicyDecisionPoint(policy).evaluate(doctor_request())
        assert response.decision is Decision.PERMIT
        assert response.status_code == StatusCode.OK
        assert [ob.obligation_id for ob in response.obligations] == ["notify"]

    def test_indeterminate_collapses_with_error_status(self):
        broken = Apply("one-and-only", (AttributeDesignator("subject", "ghost"),))
        policy = Policy("p", "first-applicable", rules=[
            Rule("r", Effect.PERMIT,
                 condition=Apply("string-equal", (broken, Literal("x"))))])
        response = PolicyDecisionPoint(policy).evaluate(doctor_request())
        assert response.decision is Decision.INDETERMINATE
        assert response.status_code == StatusCode.PROCESSING_ERROR

    def test_evaluation_counter(self):
        policy = Policy("p", "first-applicable", rules=[Rule("r", Effect.PERMIT)])
        pdp = PolicyDecisionPoint(policy)
        pdp.evaluate(doctor_request())
        pdp.evaluate(doctor_request())
        assert pdp.evaluations == 2

    def test_root_id(self):
        policy = Policy("p", "first-applicable", rules=[Rule("r", Effect.PERMIT)])
        assert PolicyDecisionPoint(policy).root_id == "p"

    def test_rejects_non_policy_root(self):
        with pytest.raises(PolicyError):
            PolicyDecisionPoint({"kind": "policy"})


class TestParserRoundtrip:
    def test_full_tree_roundtrip(self):
        original = TestPolicySet().build_set()
        document = policy_to_dict(original)
        restored = policy_from_dict(document)
        for request in (doctor_request(), doctor_request(role="nurse"),
                        doctor_request(action="write")):
            assert restored.evaluate(request) is original.evaluate(request)

    def test_roundtrip_is_stable(self):
        document = policy_to_dict(TestPolicySet().build_set())
        assert policy_to_dict(policy_from_dict(document)) == document

    def test_unknown_kind_rejected(self):
        with pytest.raises(PolicyError):
            policy_from_dict({"kind": "wizard"})

    def test_missing_fields_rejected(self):
        with pytest.raises(PolicyError):
            policy_from_dict({"kind": "policy", "policy_id": "p"})

    def test_malformed_rule_rejected(self):
        with pytest.raises(PolicyError):
            policy_from_dict({
                "kind": "policy", "policy_id": "p",
                "rule_combining": "deny-overrides",
                "rules": [{"rule_id": "r", "effect": "Maybe"}],
            })
