"""End-to-end attack detection: every threat class against a live deployment."""

import pytest

from repro.drams.alerts import AlertType
from repro.harness import MonitoredFederation
from repro.threats.adversary import Adversary
from repro.threats.attacks import (
    ATTACK_CATALOGUE,
    CircumventionAttack,
    DecisionTamperAttack,
    EvaluationTamperAttack,
    LogTamperAttack,
    PolicySwapAttack,
    ProbeSuppressionAttack,
    ReplayAttack,
    RequestTamperAttack,
)
from repro.workload.scenarios import healthcare_scenario
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule
from tests.conftest import fast_drams_config


def build_stack(seed=50, **config_overrides) -> MonitoredFederation:
    stack = MonitoredFederation.build(
        healthcare_scenario(), clouds=2, seed=seed,
        drams_config=fast_drams_config(**config_overrides))
    stack.start()
    return stack


def run_attack(attack, seed=50, requests=8, horizon=40.0, **config_overrides):
    stack = build_stack(seed=seed, **config_overrides)
    adversary = Adversary(stack.drams)
    adversary.launch(attack, at=0.2)
    stack.issue_requests(requests)
    stack.run(until=horizon)
    return stack, adversary, adversary.records()[0]


class TestComponentAttacks:
    def test_request_tamper_detected(self):
        attack = RequestTamperAttack("tenant-1", escalated_value="doctor")
        stack, adversary, record = run_attack(attack, seed=51)
        assert record.detected
        assert {a.alert_type for a in record.matched_alerts} == {
            AlertType.REQUEST_MISMATCH}

    def test_decision_tamper_detected(self):
        attack = DecisionTamperAttack("tenant-2")
        stack, adversary, record = run_attack(attack, seed=52)
        assert record.detected
        assert record.detection_latency is not None
        assert record.detection_latency < 20.0

    def test_circumvention_detected_via_timeout(self):
        attack = CircumventionAttack("tenant-1")
        stack, adversary, record = run_attack(attack, seed=53)
        assert record.detected
        assert {a.alert_type for a in record.matched_alerts} == {
            AlertType.MISSING_LOG}

    def test_evaluation_tamper_detected_by_analyser(self):
        attack = EvaluationTamperAttack()
        stack, adversary, record = run_attack(attack, seed=54)
        assert record.detected
        assert {a.alert_type for a in record.matched_alerts} == {
            AlertType.INCORRECT_DECISION}

    def test_policy_swap_detected_by_analyser(self):
        rogue = policy_to_dict(Policy(
            policy_id="rogue", rule_combining="permit-overrides",
            rules=[Rule("allow-everything", Effect.PERMIT)]))
        attack = PolicySwapAttack(rogue)
        stack, adversary, record = run_attack(attack, seed=55)
        assert record.detected


class TestMonitoringAttacks:
    def test_probe_suppression_detected(self):
        attack = ProbeSuppressionAttack("pep:tenant-1")
        stack, adversary, record = run_attack(attack, seed=56)
        assert record.detected
        assert {a.alert_type for a in record.matched_alerts} == {
            AlertType.MISSING_LOG}

    def test_pdp_probe_suppression_detected(self):
        attack = ProbeSuppressionAttack("pdp")
        stack, adversary, record = run_attack(attack, seed=57)
        assert record.detected

    def test_log_tamper_without_tpm_detected_as_mismatch(self):
        attack = LogTamperAttack("tenant-1")
        stack, adversary, record = run_attack(attack, seed=58, use_tpm=False)
        assert record.detected
        assert AlertType.DECISION_MISMATCH in {
            a.alert_type for a in record.matched_alerts}

    def test_log_tamper_with_tpm_silences_and_flags_li(self):
        attack = LogTamperAttack("tenant-1")
        stack, adversary, record = run_attack(
            attack, seed=59, use_tpm=True, attestation_interval=2.0)
        assert record.detected
        types = {a.alert_type for a in record.matched_alerts}
        assert AlertType.ATTESTATION_FAILURE in types or \
            AlertType.MISSING_LOG in types
        li = stack.drams.interfaces["tenant-1"]
        assert li.key_failures > 0  # the sealed key was denied

    def test_replay_detected_as_equivocation(self):
        stack = build_stack(seed=60)
        adversary = Adversary(stack.drams)
        attack = ReplayAttack("tenant-1")
        adversary.launch(attack, at=0.2)
        stack.issue_requests(6)
        stack.sim.schedule(10.0, lambda: attack.replay_now(
            stack.drams, {"subject-id": "mallory", "role": "doctor"}))
        stack.run(until=40.0)
        record = adversary.records()[0]
        assert record.detected
        assert {a.alert_type for a in record.matched_alerts} == {
            AlertType.EQUIVOCATION}


class TestAdversaryScoring:
    def test_no_attack_no_detection(self):
        stack = build_stack(seed=61)
        adversary = Adversary(stack.drams)
        stack.issue_requests(6)
        stack.run(until=30.0)
        assert adversary.records() == []
        assert adversary.false_positives() == []

    def test_honest_traffic_produces_no_false_positives_during_attack(self):
        attack = DecisionTamperAttack("tenant-1")
        stack, adversary, record = run_attack(attack, seed=62, requests=10)
        assert record.detected
        assert adversary.false_positives() == []

    def test_lift_stops_the_attack(self):
        stack = build_stack(seed=63)
        adversary = Adversary(stack.drams)
        attack = DecisionTamperAttack("tenant-1")
        adversary.launch(attack)
        adversary.lift_all()
        stack.issue_requests(6)
        stack.run(until=30.0)
        assert stack.drams.alerts.count(AlertType.DECISION_MISMATCH) == 0

    def test_detection_rate_aggregates(self):
        stack = build_stack(seed=64)
        adversary = Adversary(stack.drams)
        # Two attacks on different tenants and different legs (a PDP-side
        # evaluation tamper would mask a PEP-side forced Permit, so pick
        # non-interacting ones).
        adversary.launch(RequestTamperAttack("tenant-1",
                                             escalated_value="doctor"), at=0.2)
        adversary.launch(DecisionTamperAttack("tenant-2"), at=0.2)
        stack.issue_requests(10)
        stack.run(until=40.0)
        assert adversary.detection_rate() == 1.0

    def test_interacting_attacks_can_mask_each_other(self):
        # Documented limitation: if the PDP already flips every Deny to
        # Permit, a PEP that forces Permit produces no decision mismatch —
        # the analyser still catches the PDP, but the PEP tamper is
        # unobservable (it changes nothing).
        stack = build_stack(seed=66)
        adversary = Adversary(stack.drams)
        adversary.launch(EvaluationTamperAttack(), at=0.2)
        adversary.launch(DecisionTamperAttack("tenant-1"), at=0.2)
        stack.issue_requests(10)
        stack.run(until=40.0)
        by_name = {record.attack_name: record for record in adversary.records()}
        assert by_name["evaluation-tamper"].detected

    def test_unknown_tenant_rejected(self):
        stack = build_stack(seed=65)
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            RequestTamperAttack("ghost-tenant").inject(stack.drams)

    def test_catalogue_lists_all_attacks(self):
        assert set(ATTACK_CATALOGUE) == {
            "request-tamper", "decision-tamper", "pdp-circumvention",
            "evaluation-tamper", "policy-swap", "probe-suppression",
            "log-tamper", "replay", "stale-policy-replay",
            "tampered-prp-replica"}
