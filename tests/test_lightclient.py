"""Light-client monitoring: header sync, decision receipts, sampling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.common.serialization import canonical_bytes
from repro.crypto.hashing import sha256_hex
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import SigningKey
from repro.crypto.symmetric import SymmetricKey
from repro.drams.contract import CONTRACT_NAME
from repro.drams.logs import EntryType
from repro.drams.system import DramsConfig
from repro.harness import MonitoredFederation
from repro.lightclient import (
    DecisionReceipt,
    HeaderClient,
    SamplingAnalyser,
    detection_probability,
    sample_admit,
    sideband_link,
)
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.workload.scenarios import healthcare_scenario

KEY = SymmetricKey.generate(entropy=b"lightclient-test-key")


def build_receipt(corr="corr-1", entry_type=EntryType.PDP_OUT, version=3,
                  fingerprint="fp-abc", tx_stamp=None, bad_payload_hash=False,
                  contract=CONTRACT_NAME, method="record_log"):
    """A synthetic but structurally faithful receipt (no chain needed)."""
    payload = {"decision": "Permit", "policy_version": version,
               "policy_fingerprint": fingerprint}
    plaintext = canonical_bytes(payload)
    args = {
        "correlation_id": corr,
        "entry_type": entry_type,
        "payload_hash": sha256_hex(plaintext if not bad_payload_hash
                                   else plaintext + b"!"),
        "ciphertext": KEY.encrypt(plaintext).to_dict(),
    }
    stamp_version, stamp_fingerprint = (
        tx_stamp if tx_stamp is not None else (version, fingerprint))
    if stamp_fingerprint:
        args["policy_fingerprint"] = stamp_fingerprint
        args["policy_version"] = stamp_version
    tx = Transaction(sender="li@tenant", contract=contract, method=method,
                     args=args, seq=1)
    tree = MerkleTree([tx.content_hash(), "sibling-leaf"])
    header = BlockHeader(height=1, prev_hash="aa" * 32, merkle_root=tree.root,
                         timestamp=1.0, difficulty_bits=8.0, miner="m")
    return DecisionReceipt(correlation_id=corr, entry_type=entry_type, tx=tx,
                           proof=tree.proof(0), header=header, tree_size=2)


class TestReceiptVerification:
    def test_genuine_receipt_verifies(self):
        receipt = build_receipt()
        result = receipt.verify(receipt.header, federation_key=KEY)
        assert result.ok and result.reason == "ok"
        assert result.payload["decision"] == "Permit"
        assert receipt.policy_stamp == (3, "fp-abc")
        # leaf + path + header + plaintext commitment
        assert result.hashes_verified == 3 + len(receipt.proof.path)

    def test_verifies_without_key_from_commitments_alone(self):
        receipt = build_receipt()
        result = receipt.verify(receipt.header)
        assert result.ok and result.payload is None

    def test_wrong_contract_rejected(self):
        receipt = build_receipt(contract="kvstore")
        assert receipt.verify(receipt.header).reason == "not-a-monitor-log-tx"

    def test_coordinate_mismatch_rejected(self):
        receipt = build_receipt()
        receipt.correlation_id = "someone-elses"
        assert receipt.verify(receipt.header).reason == "tx-coordinates-mismatch"

    def test_mutated_tx_args_rejected(self):
        receipt = build_receipt()
        receipt.tx = receipt.tx.replace(
            args={**receipt.tx.args, "payload_hash": "00" * 32})
        assert receipt.verify(receipt.header).reason == "leaf-commitment-mismatch"

    def test_mutated_proof_rejected(self):
        receipt = build_receipt()
        sibling, is_right = receipt.proof.path[0]
        receipt.proof = type(receipt.proof)(
            leaf_index=receipt.proof.leaf_index, leaf=receipt.proof.leaf,
            path=(("ff" * 32, is_right),) + receipt.proof.path[1:])
        assert receipt.verify(receipt.header).reason == "inclusion-proof-invalid"

    def test_mutated_header_rejected(self):
        receipt = build_receipt()
        trusted = receipt.header
        forged = BlockHeader(height=trusted.height, prev_hash=trusted.prev_hash,
                             merkle_root=trusted.merkle_root,
                             timestamp=trusted.timestamp + 1.0,
                             difficulty_bits=trusted.difficulty_bits,
                             miner=trusted.miner)
        receipt.header = forged
        assert receipt.verify(trusted).reason == "header-not-on-verified-chain"

    def test_untrusted_header_rejected(self):
        receipt = build_receipt()
        assert receipt.verify(None).reason == "header-not-on-verified-chain"

    def test_tampered_ciphertext_rejected(self):
        receipt = build_receipt()
        blob = dict(receipt.tx.args["ciphertext"])
        blob["ciphertext"] = blob["ciphertext"][:-4] + "beef"
        # Rebuilding the tx would change the leaf; tamper the args dict in
        # place to model a receipt whose commitments are intact but whose
        # ciphertext was swapped.
        receipt.tx.args["ciphertext"] = blob
        result = receipt.verify(receipt.header, federation_key=KEY)
        assert result.reason in ("ciphertext-tampered", "leaf-commitment-mismatch")
        assert not result.ok

    def test_payload_commitment_mismatch_rejected(self):
        receipt = build_receipt(bad_payload_hash=True)
        result = receipt.verify(receipt.header, federation_key=KEY)
        assert result.reason == "payload-commitment-mismatch"

    def test_policy_stamp_mismatch_rejected(self):
        receipt = build_receipt(version=3, fingerprint="fp-abc",
                                tx_stamp=(4, "fp-abc"))
        result = receipt.verify(receipt.header, federation_key=KEY)
        assert result.reason == "policy-stamp-mismatch"

    def test_expected_stamp_pin(self):
        receipt = build_receipt(version=3, fingerprint="fp-abc")
        assert receipt.verify(receipt.header, federation_key=KEY,
                              expected_stamp=(3, "fp-abc")).ok
        assert receipt.verify(receipt.header, federation_key=KEY,
                              expected_stamp=(9, "fp-abc")
                              ).reason == "unexpected-policy-stamp"

    def test_json_round_trip_preserves_verification(self):
        receipt = build_receipt()
        revived = DecisionReceipt.from_dict(receipt.to_dict())
        assert revived.to_dict() == receipt.to_dict()
        assert revived.verify(receipt.header, federation_key=KEY).ok

    def test_malformed_dict_raises(self):
        with pytest.raises(ValidationError):
            DecisionReceipt.from_dict({"correlation_id": "x"})

    @given(corr=st.text(min_size=1, max_size=16),
           version=st.integers(min_value=0, max_value=99),
           fingerprint=st.text(
               alphabet="0123456789abcdef", min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_receipt_json_round_trip_property(self, corr, version, fingerprint):
        receipt = build_receipt(corr=corr, version=version,
                                fingerprint=fingerprint)
        revived = DecisionReceipt.from_dict(receipt.to_dict())
        assert revived.to_dict() == receipt.to_dict()
        result = revived.verify(receipt.header, federation_key=KEY)
        assert result.ok, result.reason


class TestSampling:
    def test_rate_edges(self):
        assert sample_admit(0, 1.0, "anything")
        assert not sample_admit(0, 0.0, "anything")

    def test_deterministic_per_seed(self):
        picks = [sample_admit("s1", 0.5, f"c{i}") for i in range(64)]
        assert picks == [sample_admit("s1", 0.5, f"c{i}") for i in range(64)]
        assert picks != [sample_admit("s2", 0.5, f"c{i}") for i in range(64)]

    def test_observed_fraction_near_rate(self):
        n = 4000
        admitted = sum(sample_admit(7, 0.1, f"corr-{i}") for i in range(n))
        assert 0.07 < admitted / n < 0.13

    def test_detection_probability_closed_form(self):
        assert detection_probability(0.1, 0) == 0.0
        assert detection_probability(0.1, 1) == pytest.approx(0.1)
        assert detection_probability(0.1, 10) == pytest.approx(1 - 0.9 ** 10)
        assert detection_probability(1.0, 1) == 1.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError):
            DramsConfig(analyser_mode="nope")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValidationError):
            DramsConfig(analyser_mode="sampling", sample_rate=0.0)
        with pytest.raises(ValidationError):
            SamplingAnalyser(None, "a", None, sample_rate=1.5)


NODE = "bcnode@t"
NODE_KEY = SigningKey.generate(NODE.encode())


def make_chain_env():
    sim = Simulator()
    rng = SeededRng(11)
    network = Network(sim, rng)
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    config = BlockchainConfig(chain_id="lc-t", difficulty_bits=8.0,
                              target_block_interval=1.0, retarget_window=0,
                              pow_mode="simulated", confirmations=2)
    node = BlockchainNode(network, NODE, config, registry, rng,
                          key_lookup=lambda n: NODE_KEY.public if n == NODE else None,
                          signing_key=NODE_KEY, hashrate=1024.0)
    client = HeaderClient(network, "hc@t", config, NODE)
    sideband_link(network, client.address, NODE)
    return sim, node, client


def grow(chain, count):
    for _ in range(count):
        block = chain.create_block(NODE, [],
                                   timestamp=chain.head.header.timestamp + 1.0,
                                   signing_key=NODE_KEY)
        chain.add_block(block)


def fork_block(chain, parent, timestamp):
    header = BlockHeader(height=parent.height + 1, prev_hash=parent.hash,
                         merkle_root="", timestamp=timestamp,
                         difficulty_bits=chain.expected_difficulty(parent.hash),
                         miner=NODE)
    block = Block(header=header, transactions=[])
    header.merkle_root = block.compute_merkle_root()
    block.sign(NODE_KEY)
    return block


class TestHeaderClient:
    def test_genesis_matches_server(self):
        _, node, client = make_chain_env()
        assert client.head.block_hash() == node.chain.head.hash

    def test_sync_tracks_chain(self):
        sim, node, client = make_chain_env()
        grow(node.chain, 5)
        client.sync()
        sim.run()
        assert client.height == 5
        assert client.head.block_hash() == node.chain.head.hash
        assert client.headers_validated == 5
        assert client.headers_rejected == 0

    def test_sync_pages_past_batch_size(self):
        sim, node, client = make_chain_env()
        grow(node.chain, HeaderClient.BATCH * 2 + 7)
        client.sync()
        sim.run()
        assert client.height == HeaderClient.BATCH * 2 + 7
        assert client.sync_rounds >= 3

    def test_follows_reorg_by_total_work(self):
        sim, node, client = make_chain_env()
        chain = node.chain
        genesis = chain.head
        a1 = fork_block(chain, genesis, 1.0)
        chain.add_block(a1)
        client.sync()
        sim.run()
        assert client.height == 1
        b1 = fork_block(chain, genesis, 1.5)
        chain.add_block(b1)
        b2 = fork_block(chain, b1, 2.5)
        chain.add_block(b2)
        assert chain.head.hash == b2.hash
        client.sync()
        sim.run()
        assert client.height == 2
        assert client.head.block_hash() == b2.hash
        assert client.reorgs == 1
        # The abandoned header is retained but is off the verified branch.
        assert client.header_for(a1.hash) is None
        assert client.confirmations_of(a1.hash) == 0
        assert client.confirmations_of(b1.hash) == 2

    def test_rejects_tampered_headers(self):
        sim, node, client = make_chain_env()
        grow(node.chain, 3)
        client.sync()
        sim.run()
        assert client.height == 3
        tip = client.head
        bogus = BlockHeader(height=tip.height + 1, prev_hash="ff" * 32,
                            merkle_root="", timestamp=tip.timestamp + 1.0,
                            difficulty_bits=tip.difficulty_bits, miner=NODE)
        assert not client._ingest([bogus])
        assert client.headers_rejected == 1
        assert client.height == 3


class TestLightClientsEndToEnd:
    def _build(self, **kwargs):
        return MonitoredFederation.build(healthcare_scenario(), **kwargs)

    def test_every_enforced_decision_gets_an_accepted_receipt(self):
        stack = self._build(light_clients=True)
        stack.start()
        stack.issue_requests(20)
        stack.run(until=60.0)
        per_tenant = {}
        for outcome in stack.outcomes:
            per_tenant.setdefault(outcome.request.origin_tenant, []).append(outcome)
        assert stack.outcomes
        for tenant, consumer in stack.light_clients.items():
            expected = len(per_tenant.get(tenant, []))
            assert consumer.receipts_accepted == expected
            assert consumer.receipts_rejected == 0
            assert consumer.outstanding == 0
            for corr, receipt in consumer.receipts.items():
                assert receipt.payload is not None
        stats = stack.drams.stats()
        assert set(stats["light_clients"]) == set(stack.light_clients)

    def test_sampling_analyser_audits_a_fraction(self):
        config = DramsConfig(analyser_mode="sampling", sample_rate=0.3,
                             sample_seed=5)
        stack = self._build(drams_config=config)
        stack.start()
        stack.issue_requests(30)
        stack.run(until=60.0)
        analyser = stack.drams.analyser
        assert isinstance(analyser, SamplingAnalyser)
        stats = analyser.sampling_stats()
        assert stats["correlations_seen"] >= 30
        assert 0 < stats["sampled_in"] < stats["correlations_seen"]
        assert stack.drams.stats()["sampling"] == stats

    def test_light_clients_require_drams(self):
        with pytest.raises(ValidationError):
            self._build(with_drams=False, light_clients=True)
