"""The expression language and function library."""

import pytest

from repro.common.errors import PolicyError
from repro.xacml.attributes import Bag, DataType
from repro.xacml.context import RequestContext
from repro.xacml.expressions import (
    Apply,
    AttributeDesignator,
    EvaluationError,
    Literal,
)


@pytest.fixture
def request_ctx() -> RequestContext:
    return RequestContext.of(
        subject={"subject-id": "alice", "role": ["doctor", "researcher"],
                 "clearance": 3},
        resource={"resource-id": "rec-1", "type": "medical-record",
                  "sensitivity": 2},
        action={"action-id": "read"},
        environment={"time-of-day": 36000.0},
    )


def apply(function, *args):
    return Apply(function, tuple(args))


def lit(value):
    return Literal(value)


def desig(category, attribute_id, data_type=DataType.STRING, must=False):
    return AttributeDesignator(category, attribute_id, data_type, must)


class TestLiterals:
    def test_literal_evaluates_to_value(self, request_ctx):
        assert lit("x").evaluate(request_ctx) == "x"

    def test_literal_infers_type(self):
        assert lit(5).data_type == DataType.INTEGER
        assert lit(True).data_type == DataType.BOOLEAN

    def test_literal_type_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            Literal("x", data_type=DataType.INTEGER)


class TestDesignators:
    def test_returns_bag_of_values(self, request_ctx):
        bag = desig("subject", "role").evaluate(request_ctx)
        assert isinstance(bag, Bag)
        assert sorted(bag.values) == ["doctor", "researcher"]

    def test_missing_attribute_returns_empty_bag(self, request_ctx):
        bag = desig("subject", "ghost").evaluate(request_ctx)
        assert len(bag) == 0

    def test_must_be_present_raises_on_missing(self, request_ctx):
        with pytest.raises(EvaluationError) as info:
            desig("subject", "ghost", must=True).evaluate(request_ctx)
        assert info.value.missing_attribute

    def test_type_mismatch_raises(self, request_ctx):
        with pytest.raises(EvaluationError):
            desig("subject", "role", DataType.INTEGER).evaluate(request_ctx)


class TestEqualityAndComparison:
    def test_string_equal(self, request_ctx):
        assert apply("string-equal", lit("a"), lit("a")).evaluate(request_ctx)
        assert not apply("string-equal", lit("a"), lit("b")).evaluate(request_ctx)

    def test_integer_comparisons(self, request_ctx):
        assert apply("integer-greater-than", lit(3), lit(2)).evaluate(request_ctx)
        assert apply("integer-less-than-or-equal", lit(2), lit(2)).evaluate(request_ctx)
        assert not apply("integer-less-than", lit(3), lit(2)).evaluate(request_ctx)

    def test_greater_or_equal_is_not_equality(self, request_ctx):
        # Regression guard for the endswith("-equal") bug found in the
        # analyser's twin implementation.
        assert apply("integer-greater-than-or-equal",
                     lit(3), lit(1)).evaluate(request_ctx)

    def test_time_in_range(self, request_ctx):
        assert apply("time-in-range", lit(10.0), lit(5.0), lit(15.0)
                     ).evaluate(request_ctx)
        assert not apply("time-in-range", lit(20.0), lit(5.0), lit(15.0)
                         ).evaluate(request_ctx)

    def test_comparison_on_non_numeric_raises(self, request_ctx):
        with pytest.raises(EvaluationError):
            apply("integer-greater-than", lit("a"), lit(1)).evaluate(request_ctx)

    def test_wrong_arity_raises(self, request_ctx):
        with pytest.raises(EvaluationError):
            apply("string-equal", lit("a")).evaluate(request_ctx)


class TestArithmetic:
    def test_add_multiply(self, request_ctx):
        assert apply("integer-add", lit(1), lit(2), lit(3)).evaluate(request_ctx) == 6
        assert apply("integer-multiply", lit(2), lit(3)).evaluate(request_ctx) == 6

    def test_subtract_mod_abs(self, request_ctx):
        assert apply("integer-subtract", lit(5), lit(3)).evaluate(request_ctx) == 2
        assert apply("integer-mod", lit(7), lit(3)).evaluate(request_ctx) == 1
        assert apply("integer-abs", lit(-4)).evaluate(request_ctx) == 4

    def test_double_add(self, request_ctx):
        assert apply("double-add", lit(0.5), lit(1.5)).evaluate(request_ctx) == 2.0


class TestBooleans:
    def test_and_or_not(self, request_ctx):
        assert apply("and", lit(True), lit(True)).evaluate(request_ctx)
        assert not apply("and", lit(True), lit(False)).evaluate(request_ctx)
        assert apply("or", lit(False), lit(True)).evaluate(request_ctx)
        assert apply("not", lit(False)).evaluate(request_ctx)

    def test_empty_and_is_true(self, request_ctx):
        assert apply("and").evaluate(request_ctx) is True

    def test_n_of(self, request_ctx):
        assert apply("n-of", lit(2), lit(True), lit(False), lit(True)
                     ).evaluate(request_ctx)
        assert not apply("n-of", lit(3), lit(True), lit(False), lit(True)
                         ).evaluate(request_ctx)

    def test_non_boolean_operand_raises(self, request_ctx):
        with pytest.raises(EvaluationError):
            apply("and", lit(1)).evaluate(request_ctx)


class TestStrings:
    def test_concatenate(self, request_ctx):
        assert apply("string-concatenate", lit("a"), lit("b")
                     ).evaluate(request_ctx) == "ab"

    def test_starts_ends_contains(self, request_ctx):
        assert apply("string-starts-with", lit("med"), lit("medical")
                     ).evaluate(request_ctx)
        assert apply("string-ends-with", lit("cal"), lit("medical")
                     ).evaluate(request_ctx)
        assert apply("string-contains", lit("dic"), lit("medical")
                     ).evaluate(request_ctx)

    def test_regexp_match(self, request_ctx):
        assert apply("string-regexp-match", lit("^rec-[0-9]+$"), lit("rec-42")
                     ).evaluate(request_ctx)
        assert not apply("string-regexp-match", lit("^x"), lit("rec-42")
                         ).evaluate(request_ctx)

    def test_lower_case(self, request_ctx):
        assert apply("string-normalize-to-lower-case", lit("AbC")
                     ).evaluate(request_ctx) == "abc"


class TestBagFunctions:
    def test_one_and_only(self, request_ctx):
        value = apply("one-and-only", desig("action", "action-id")
                      ).evaluate(request_ctx)
        assert value == "read"

    def test_one_and_only_multivalued_raises(self, request_ctx):
        with pytest.raises(PolicyError):
            apply("one-and-only", desig("subject", "role")).evaluate(request_ctx)

    def test_bag_size(self, request_ctx):
        assert apply("bag-size", desig("subject", "role")
                     ).evaluate(request_ctx) == 2

    def test_is_in(self, request_ctx):
        assert apply("is-in", lit("doctor"), desig("subject", "role")
                     ).evaluate(request_ctx)

    def test_intersection_union(self, request_ctx):
        roles = desig("subject", "role")
        other = apply("bag", lit("doctor"), lit("admin"))
        intersection = apply("intersection", roles, other).evaluate(request_ctx)
        assert intersection.values == ["doctor"]
        union = apply("union", roles, other).evaluate(request_ctx)
        assert sorted(union.values) == ["admin", "doctor", "researcher"]

    def test_at_least_one_member_of(self, request_ctx):
        other = apply("bag", lit("doctor"), lit("admin"))
        assert apply("at-least-one-member-of", desig("subject", "role"), other
                     ).evaluate(request_ctx)

    def test_subset(self, request_ctx):
        sub = apply("bag", lit("doctor"))
        assert apply("subset", sub, desig("subject", "role")).evaluate(request_ctx)
        assert not apply("subset", desig("subject", "role"), sub
                         ).evaluate(request_ctx)

    def test_bag_of_non_bag_raises(self, request_ctx):
        with pytest.raises(EvaluationError):
            apply("bag-size", lit("x")).evaluate(request_ctx)


class TestHigherOrder:
    def test_any_of(self, request_ctx):
        expr = apply("any-of", lit("string-equal"), lit("doctor"),
                     desig("subject", "role"))
        assert expr.evaluate(request_ctx)

    def test_any_of_no_match(self, request_ctx):
        expr = apply("any-of", lit("string-equal"), lit("admin"),
                     desig("subject", "role"))
        assert not expr.evaluate(request_ctx)

    def test_all_of(self, request_ctx):
        expr = apply("all-of", lit("string-starts-with"), lit(""),
                     desig("subject", "role"))
        assert expr.evaluate(request_ctx)

    def test_any_of_any(self, request_ctx):
        expr = apply("any-of-any", lit("string-equal"),
                     desig("subject", "role"),
                     apply("bag", lit("researcher"), lit("x")))
        assert expr.evaluate(request_ctx)

    def test_higher_order_needs_function_literal(self, request_ctx):
        expr = apply("any-of", lit("doctor"), lit("doctor"),
                     desig("subject", "role"))
        with pytest.raises(EvaluationError):
            expr.evaluate(request_ctx)

    def test_unknown_function_rejected_at_build_time(self):
        with pytest.raises(PolicyError):
            apply("frobnicate", lit(1))

    def test_serialization_roundtrip(self, request_ctx):
        from repro.xacml.parser import expression_from_dict

        expr = apply("and",
                     apply("any-of", lit("string-equal"), lit("read"),
                           desig("action", "action-id")),
                     apply("integer-greater-than",
                           apply("one-and-only",
                                 desig("subject", "clearance", DataType.INTEGER)),
                           lit(1)))
        restored = expression_from_dict(expr.to_dict())
        assert restored.evaluate(request_ctx) == expr.evaluate(request_ctx) is True
