"""Canonical serialization: the root of all hash comparability."""

import dataclasses
import math

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SerializationError
from repro.common.serialization import canonical_bytes, canonical_json, from_json

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


class TestCanonicalJson:
    def test_dict_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        text = canonical_json({"a": [1, 2], "b": "x"})
        assert " " not in text and "\n" not in text

    def test_nested_dicts_sorted(self):
        assert canonical_json({"z": {"b": 1, "a": 2}}) == '{"z":{"a":2,"b":1}}'

    def test_tuple_equals_list(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])

    def test_dataclass_equals_dict(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        assert canonical_json(Point(1, 2)) == canonical_json({"x": 1, "y": 2})

    def test_bytes_envelope(self):
        text = canonical_json(b"\x01\x02")
        assert text == '{"__bytes__":"0102"}'

    def test_int_and_float_encode_differently(self):
        # The blockchain header relies on this distinction being stable.
        assert canonical_json(10) != canonical_json(10.0)

    def test_set_is_normalised_deterministically(self):
        assert canonical_json({3, 1, 2}) == canonical_json({2, 3, 1})

    def test_nan_rejected(self):
        with pytest.raises(SerializationError):
            canonical_json(float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(SerializationError):
            canonical_json(float("inf"))

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(SerializationError):
            canonical_json({1: "a"})

    def test_arbitrary_object_rejected(self):
        with pytest.raises(SerializationError):
            canonical_json(object())

    def test_enum_uses_value(self):
        from enum import Enum

        class Colour(Enum):
            RED = "red"

        assert canonical_json(Colour.RED) == '"red"'


class TestFromJson:
    def test_roundtrip_simple(self):
        value = {"a": [1, 2.5, None, True], "b": "text"}
        assert from_json(canonical_json(value)) == value

    def test_roundtrip_bytes(self):
        value = {"blob": b"\xde\xad\xbe\xef"}
        assert from_json(canonical_json(value)) == value

    def test_invalid_json_raises(self):
        with pytest.raises(SerializationError):
            from_json("{not json")

    def test_malformed_bytes_envelope_raises(self):
        with pytest.raises(SerializationError):
            from_json('{"__bytes__":"zz"}')


class TestProperties:
    @given(json_values)
    def test_encoding_is_deterministic(self, value):
        assert canonical_json(value) == canonical_json(value)

    @given(json_values)
    def test_roundtrip_preserves_value(self, value):
        restored = from_json(canonical_json(value))
        # Float re-parse may widen but equality must hold.
        assert restored == value or _almost_equal(restored, value)

    @given(st.dictionaries(st.text(max_size=8), json_scalars, max_size=6))
    def test_canonical_bytes_is_utf8_of_json(self, value):
        assert canonical_bytes(value).decode("utf-8") == canonical_json(value)


def _almost_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9)
    if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
        return all(_almost_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict) and a.keys() == b.keys():
        return all(_almost_equal(a[k], b[k]) for k in a)
    return a == b
