"""Storage backends: database, pure chain, hybrid anchoring, auditor."""

import pytest

from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.blockchain.node import BlockchainNode
from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.crypto.signatures import SigningKey
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.storage.auditor import IntegrityAuditor
from repro.storage.database import DatabaseConfig, DatabaseStore
from repro.storage.hybrid import HybridStore
from repro.storage.purechain import PureChainStore


@pytest.fixture
def chain_env():
    sim = Simulator()
    rng = SeededRng(31, "storage-tests")
    net = Network(sim, rng, ConstantLatency(0.002))
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    config = BlockchainConfig(chain_id="storage", difficulty_bits=8.0,
                              target_block_interval=0.5, retarget_window=0,
                              pow_mode="simulated", confirmations=1)
    node_key = SigningKey.generate(b"node")
    client_key = SigningKey.generate(b"client")
    keys = {"node-1": node_key.public, "client": client_key.public}
    node = BlockchainNode(net, "node-1", config, registry, rng,
                          key_lookup=keys.get, signing_key=node_key,
                          hashrate=512.0)
    node.connect([])
    node.start()
    return sim, rng, node, client_key


class TestDatabase:
    def test_write_then_read(self, sim, rng):
        db = DatabaseStore(sim, rng)
        acks = []
        db.write("k", {"v": 1}, on_ack=acks.append)
        results = []
        sim.run()
        db.read("k", results.append)
        sim.run()
        assert acks == ["k"] and results == [{"v": 1}]

    def test_write_has_latency(self, sim, rng):
        db = DatabaseStore(sim, rng, DatabaseConfig(write_latency=0.01, jitter=0.0))
        db.write("k", 1)
        sim.run()
        assert sim.now == pytest.approx(0.01)

    def test_read_missing_returns_none(self, sim, rng):
        db = DatabaseStore(sim, rng)
        results = []
        db.read("ghost", results.append)
        sim.run()
        assert results == [None]

    def test_tamper_rewrites_silently(self, sim, rng):
        db = DatabaseStore(sim, rng)
        db.write("k", "honest")
        sim.run()
        assert db.tamper("k", "forged")
        assert db.get("k") == "forged"
        assert "k" in db.tampered_keys

    def test_tamper_missing_key_fails(self, sim, rng):
        assert not DatabaseStore(sim, rng).tamper("ghost", 1)

    def test_delete(self, sim, rng):
        db = DatabaseStore(sim, rng)
        db.write("k", 1)
        sim.run()
        assert db.delete("k")
        assert "k" not in db

    def test_keys_in_insertion_order(self, sim, rng):
        db = DatabaseStore(sim, rng, DatabaseConfig(write_latency=0.0, jitter=0.0))
        for key in ("b", "a", "c"):
            db.write(key, 1)
        sim.run()
        assert db.keys_in_order() == ["b", "a", "c"]

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            DatabaseConfig(write_latency=-1)
        with pytest.raises(ValidationError):
            DatabaseConfig(jitter=1.5)


class TestPureChainStore:
    def test_store_becomes_durable(self, chain_env):
        sim, rng, node, client_key = chain_env
        store = PureChainStore(node, "client", client_key)
        durable = []
        store.store("log-1", {"entry": "x"},
                    on_durable=lambda key, latency: durable.append((key, latency)))
        sim.run(until=10.0)
        assert durable and durable[0][0] == "log-1"
        assert durable[0][1] > 0
        assert store.get("log-1") == {"entry": "x"}

    def test_durable_latency_tracks_finality(self, chain_env):
        sim, rng, node, client_key = chain_env
        store = PureChainStore(node, "client", client_key)
        for i in range(5):
            store.store(f"log-{i}", i)
        sim.run(until=20.0)
        assert len(store.durable_latencies) == 5
        assert store.pending_count() == 0

    def test_unsigned_sender_rejected(self, chain_env):
        sim, rng, node, client_key = chain_env
        rogue = SigningKey.generate(b"rogue")
        store = PureChainStore(node, "rogue", rogue)
        assert store.store("k", 1) is None
        assert store.rejected == 1


class TestHybridStore:
    def build(self, chain_env, anchor_interval=1.0):
        sim, rng, node, client_key = chain_env
        db = DatabaseStore(sim, rng)
        store = HybridStore(db, node, "client", client_key,
                            anchor_interval=anchor_interval)
        return sim, db, store

    def test_ack_is_db_fast(self, chain_env):
        sim, db, store = self.build(chain_env)
        acks = []
        store.store("k", {"v": 1}, on_ack=lambda key, latency: acks.append(latency))
        sim.run(until=5.0)
        assert acks and acks[0] < 0.01  # milliseconds, not block time

    def test_anchor_covers_batch(self, chain_env):
        sim, db, store = self.build(chain_env)
        store.start()
        for i in range(5):
            store.store(f"k{i}", i)
        sim.run(until=10.0)
        assert store.anchors
        anchored_keys = [key for anchor in store.anchors for key in anchor.keys]
        assert sorted(anchored_keys) == [f"k{i}" for i in range(5)]

    def test_anchor_appears_on_chain(self, chain_env):
        sim, db, store = self.build(chain_env)
        store.start()
        store.store("k", "v")
        sim.run(until=10.0)
        onchain = store.onchain_anchor(0)
        assert onchain is not None
        assert onchain["root"] == store.anchors[0].root

    def test_no_anchor_for_empty_batch(self, chain_env):
        sim, db, store = self.build(chain_env)
        store.start()
        sim.run(until=5.0)
        assert store.anchors == []

    def test_integrity_window_formula(self, chain_env):
        sim, db, store = self.build(chain_env, anchor_interval=4.0)
        window = store.integrity_window()
        assert window == pytest.approx(4.0 + 0.5)  # interval + finality

    def test_anchor_interval_validation(self, chain_env):
        sim, rng, node, client_key = chain_env
        with pytest.raises(ValidationError):
            HybridStore(DatabaseStore(sim, rng), node, "client", client_key,
                        anchor_interval=0)


class TestAuditor:
    def deploy(self, chain_env, rows=6):
        sim, db, store = TestHybridStore().build(chain_env)
        store.start()
        for i in range(rows):
            store.store(f"k{i}", {"value": i})
        sim.run(until=10.0)
        return sim, db, store, IntegrityAuditor(db, store)

    def test_clean_database_audits_clean(self, chain_env):
        sim, db, store, auditor = self.deploy(chain_env)
        report = auditor.audit()
        assert report.clean
        assert report.batches_verified == report.anchors_final > 0

    def test_tampered_row_detected(self, chain_env):
        sim, db, store, auditor = self.deploy(chain_env)
        db.tamper("k2", {"value": 999})
        report = auditor.audit()
        assert not report.clean
        assert report.batches_violated
        assert "k2" in report.suspect_keys

    def test_deleted_row_detected_by_name(self, chain_env):
        sim, db, store, auditor = self.deploy(chain_env)
        db.delete("k3")
        report = auditor.audit()
        assert "k3" in report.missing_rows
        assert not report.clean

    def test_unanchored_rows_reported_as_window(self, chain_env):
        sim, db, store, auditor = self.deploy(chain_env)
        store.stop()
        store.store("late", 1)
        sim.run(until=11.0)
        report = auditor.audit()
        assert "late" in report.unanchored_keys

    def test_tamper_inside_window_is_invisible(self, chain_env):
        """The integrity window is real: pre-anchor tampering is undetectable."""
        sim, db, store, auditor = self.deploy(chain_env, rows=0)
        store.stop()  # no more anchors will happen
        store.store("fresh", "original")
        sim.run(until=11.0)
        db.tamper("fresh", "forged")
        report = auditor.audit()
        assert report.batches_violated == []  # nothing anchored, nothing caught
        assert "fresh" in report.unanchored_keys

    def test_summary_text(self, chain_env):
        sim, db, store, auditor = self.deploy(chain_env)
        assert "CLEAN" in auditor.audit().summary()
        db.tamper("k0", "x")
        assert "TAMPERING" in auditor.audit().summary()
