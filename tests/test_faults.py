"""Fault-injection plane: network fault primitives, crash/restart
semantics per layer, the FaultPlan DSL, retry backoff, and the
duplication/reordering idempotency properties."""

import pytest

from repro.accesscontrol.pep import PolicyEnforcementPoint, RetryBackoff
from repro.accesscontrol.plane import ShardedPdpPlane
from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import SigningKey
from repro.faults import (
    ChaosController,
    FaultEvent,
    FaultPlan,
    clock_skew,
    crash,
    latency_spike,
    link_degrade,
    partition,
    restart,
)
from repro.federation.federation import Federation, FederationConfig
from repro.harness import MonitoredFederation
from repro.policydist import PrpReplica, ReplicatedPrpPlane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Host, Message, Network
from repro.simnet.simulator import Simulator
from repro.workload.scenarios import (
    healthcare_scenario,
    partition_storm_scenario,
)
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule
from tests.conftest import fast_drams_config


class Recorder(Host):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.received: list[Message] = []
        self.received_at: list[float] = []

    def receive(self, message):
        self.received.append(message)
        self.received_at.append(self.sim.now)


def net_pair(latency=0.5, seed=11):
    sim = Simulator()
    net = Network(sim, SeededRng(seed, "fault-tests"), ConstantLatency(latency))
    return sim, net, Recorder(net, "a"), Recorder(net, "b")


def doc(tag="base"):
    return policy_to_dict(
        Policy(
            policy_id=f"p-{tag}",
            rule_combining="first-applicable",
            rules=[Rule(f"deny-{tag}", Effect.DENY)],
        )
    )


# -- network primitives ------------------------------------------------------------


class TestInFlightDeliveryToCrashedHost:
    def test_message_to_detached_host_is_dropped_and_counted(self):
        sim, net, a, b = net_pair(latency=0.5)
        a.send("b", "ping", {"x": 1})
        sim.schedule(0.1, lambda: net.detach("b"))
        sim.run(until=2.0)
        assert b.received == []
        assert net.stats.dropped == 1
        assert net.stats.dropped_dead == 1

    def test_restart_does_not_resurrect_inflight_messages(self):
        # A message scheduled toward incarnation N must not arrive at
        # incarnation N+1: the restarted process never saw the request.
        sim, net, a, b = net_pair(latency=0.5)
        a.send("b", "ping", {"x": 1})
        sim.schedule(0.1, lambda: net.detach("b"))
        sim.schedule(0.2, lambda: net.attach(b))
        sim.schedule(0.7, lambda: a.send("b", "ping", {"x": 2}))
        sim.run(until=5.0)
        assert [m.payload["x"] for m in b.received] == [2]
        assert net.stats.dropped_dead == 1

    def test_is_attached_tracks_lifecycle(self):
        _, net, _, b = net_pair()
        assert net.is_attached("b")
        net.detach("b")
        assert not net.is_attached("b")
        assert net.host("b") is None
        net.attach(b)
        assert net.is_attached("b")


class TestAsymmetricPartition:
    def test_one_way_partition_blocks_only_forward(self):
        sim, net, a, b = net_pair(latency=0.01)
        net.partition(["a"], ["b"], symmetric=False)
        assert net.is_partitioned("a", "b")
        assert not net.is_partitioned("b", "a")
        a.send("b", "ping", {})
        b.send("a", "pong", {})
        sim.run(until=1.0)
        assert b.received == []
        assert len(a.received) == 1

    def test_heal_partition_restores_both_structures(self):
        sim, net, a, b = net_pair(latency=0.01)
        net.partition(["a"], ["b"], symmetric=True)
        net.partition(["b"], ["a"], symmetric=False)
        net.heal_partition(["a"], ["b"])
        assert not net.is_partitioned("a", "b")
        assert not net.is_partitioned("b", "a")
        a.send("b", "ping", {})
        sim.run(until=1.0)
        assert len(b.received) == 1


class TestLinkFaults:
    def test_total_loss_drops_every_message(self):
        sim, net, a, b = net_pair(latency=0.01)
        fault = net.set_link_fault("a", "b", loss=1.0)
        for _ in range(5):
            a.send("b", "ping", {})
        sim.run(until=1.0)
        assert b.received == []
        assert fault.dropped == 5
        assert net.stats.dropped == 5

    def test_duplication_delivers_same_message_twice(self):
        sim, net, a, b = net_pair(latency=0.01)
        net.set_link_fault("a", "b", duplicate=1.0)
        a.send("b", "ping", {"x": 1})
        sim.run(until=1.0)
        assert len(b.received) == 2
        assert b.received[0].msg_id == b.received[1].msg_id
        assert net.stats.duplicated == 1
        assert net.stats.delivered == 2

    def test_extra_latency_delays_delivery(self):
        sim, net, a, b = net_pair(latency=0.01)
        net.set_link_fault("a", "b", extra_latency=0.4)
        a.send("b", "ping", {})
        sim.run(until=1.0)
        assert b.received_at == [pytest.approx(0.41)]

    def test_reorder_jitter_spreads_arrivals_without_losing_any(self):
        sim, net, a, b = net_pair(latency=0.01)
        net.set_link_fault("a", "b", reorder_jitter=0.5)
        for i in range(10):
            a.send("b", "ping", {"i": i})
        sim.run(until=2.0)
        assert sorted(m.payload["i"] for m in b.received) == list(range(10))
        assert all(0.01 <= at <= 0.51 for at in b.received_at)
        spread = max(b.received_at) - min(b.received_at)
        assert spread > 0.0

    def test_symmetric_fault_and_clear(self):
        sim, net, a, b = net_pair(latency=0.01)
        net.set_link_fault("a", "b", loss=1.0, symmetric=True)
        assert net.link_fault("b", "a") is not None
        net.clear_link_fault("a", "b", symmetric=True)
        assert net.link_fault("a", "b") is None
        assert net.link_fault("b", "a") is None
        a.send("b", "ping", {})
        sim.run(until=1.0)
        assert len(b.received) == 1

    def test_fault_validation(self):
        _, net, _, _ = net_pair()
        with pytest.raises(ValueError):
            net.set_link_fault("a", "b", loss=1.5)
        with pytest.raises(ValueError):
            net.set_link_fault("a", "b", reorder_jitter=-1)


class TestClockSkew:
    def test_local_now_offsets_simulator_time(self):
        sim, net, a, _ = net_pair()
        assert a.local_now == sim.now
        a.clock_offset = 2.5
        sim.run(until=1.0)
        assert a.local_now == pytest.approx(sim.now + 2.5)


# -- retry backoff (satellite 1) ---------------------------------------------------


class TestRetryBackoff:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryBackoff(base=0.0, cap=1.0)
        with pytest.raises(ValidationError):
            RetryBackoff(base=1.0, cap=0.5)
        with pytest.raises(ValidationError):
            RetryBackoff(base=0.1, cap=1.0, multiplier=0.5)

    def test_first_window_clamps_to_base_and_budget(self):
        assert RetryBackoff(base=0.2, cap=1.0).first_window(30.0) == 0.2
        assert RetryBackoff(base=0.2, cap=1.0).first_window(0.05) == 0.05

    def test_next_window_decorrelated_and_bounded(self):
        rng = SeededRng(7, "backoff")
        backoff = RetryBackoff(base=0.1, cap=0.8, multiplier=3.0)
        previous = backoff.first_window(30.0)
        for _ in range(50):
            window = backoff.next_window(previous, 30.0, rng)
            assert 0.1 <= window <= 0.8
            previous = window
        # The remaining budget is a hard clamp.
        assert backoff.next_window(0.5, 0.03, rng) == 0.03

    def test_default_pep_draws_no_backoff_randomness(self, network):
        plane = ShardedPdpPlane(shards=2)
        stack = MonitoredFederation.build(
            healthcare_scenario(), clouds=2, seed=17, with_drams=False, plane=plane
        )
        for pep in stack.peps.values():
            assert pep.backoff is None
            assert pep._backoff_rng is None

    def test_whole_request_bound_survives_backoff(self):
        # Partition the PEP from every shard: each attempt burns one
        # backoff window, and the final timeout denial must still land
        # within request_timeout of submission.
        plane = ShardedPdpPlane(shards=3)
        stack = MonitoredFederation.build(
            healthcare_scenario(),
            clouds=2,
            seed=17,
            with_drams=False,
            plane=plane,
            pep_kwargs={
                "request_timeout": 1.0,
                "backoff": RetryBackoff(base=0.2, cap=0.6),
            },
        )
        pep = stack.peps["tenant-1"]
        addresses = [s.address for s in plane.services]
        stack.federation.network.partition([pep.address], addresses)
        stack.issue_requests(4, start_at=0.1)
        stack.run(until=10.0)
        assert pep.timeouts > 0
        for outcome in pep.enforced:
            assert outcome.decision.status_code == "timeout"
            assert outcome.latency <= 1.0 + 1e-6

    def test_backoff_failover_still_reaches_a_live_shard(self):
        plane = ShardedPdpPlane(shards=2)
        stack = MonitoredFederation.build(
            healthcare_scenario(),
            clouds=2,
            seed=17,
            with_drams=False,
            plane=plane,
            pep_kwargs={
                "request_timeout": 2.0,
                "backoff": RetryBackoff(base=0.2, cap=0.6),
            },
        )
        plane.crash_shard(plane.services[0].address)
        stack.issue_requests(20, start_at=0.1)
        stack.run(until=20.0)
        total = sum(len(pep.enforced) for pep in stack.peps.values())
        assert total == 20
        # Crashed shard still sits in the ring: re-routes around it are
        # failovers (a fault), never membership churn.
        assert sum(pep.failovers for pep in stack.peps.values()) > 0
        assert sum(pep.churn_reroutes for pep in stack.peps.values()) == 0
        assert sum(pep.timeouts for pep in stack.peps.values()) == 0


# -- the FaultPlan DSL -------------------------------------------------------------


class TestFaultPlanDsl:
    def plan(self):
        return FaultPlan(
            name="storm",
            events=(
                partition(["pep@tenant-2"], ["pdp-*@*"], at=0.5, heal_at=1.5),
                link_degrade(["a"], ["b"], at=0.2, until=0.8, loss=0.3,
                             duplicate=0.1, reorder=0.05),
                latency_spike(["a"], ["b"], at=0.1, extra_latency=0.2),
                crash("pdp-1@infrastructure", at=2.0, restart_at=3.0),
                restart("pdp-1@infrastructure", at=4.0),
                clock_skew("bcnode@tenant-1", 1.5, at=0.3, until=0.9),
            ),
        )

    def test_roundtrips_through_json_form(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_duration_spans_last_reversal(self):
        assert self.plan().duration() == 4.0
        assert FaultPlan().duration() == 0.0

    def test_shifted_translates_every_instant(self):
        shifted = self.plan().shifted(10.0)
        assert shifted.events[0].at == 10.5
        assert shifted.events[0].until == 11.5
        assert shifted.events[2].until is None

    def test_kind_validation(self):
        with pytest.raises(ValidationError, match="unknown fault kind"):
            FaultEvent(kind="meteor", at=0.0)
        with pytest.raises(ValidationError, match="after onset"):
            crash("x", at=2.0, restart_at=1.0)
        with pytest.raises(ValidationError, match="group_a and group_b"):
            FaultEvent(kind="partition", at=0.0)
        with pytest.raises(ValidationError, match="at least one target"):
            FaultEvent(kind="crash", at=0.0)
        with pytest.raises(ValidationError, match="targets, not groups"):
            FaultEvent(kind="crash", at=0.0, targets=("x",), group_a=("y",))
        with pytest.raises(ValidationError, match="at least one of"):
            FaultEvent(kind="link_degrade", at=0.0, group_a=("a",), group_b=("b",))
        with pytest.raises(ValidationError, match="extra_latency > 0"):
            FaultEvent(kind="latency_spike", at=0.0, group_a=("a",), group_b=("b",))
        with pytest.raises(ValidationError, match="non-zero skew"):
            FaultEvent(kind="clock_skew", at=0.0, targets=("x",))
        with pytest.raises(ValidationError, match="loss must be"):
            FaultEvent(kind="link_degrade", at=0.0, group_a=("a",),
                       group_b=("b",), loss=2.0)

    def test_from_dict_rejects_unknown_fields_and_bad_shapes(self):
        with pytest.raises(ValidationError, match="unknown fault event field"):
            FaultEvent.from_dict({"kind": "crash", "at": 0.0, "targets": ["x"],
                                  "blast_radius": 3})
        with pytest.raises(ValidationError, match="'kind' and 'at'"):
            FaultEvent.from_dict({"kind": "crash"})
        with pytest.raises(ValidationError, match="list of addresses"):
            FaultEvent.from_dict({"kind": "crash", "at": 0.0, "targets": "x"})
        with pytest.raises(ValidationError, match="unknown fault plan field"):
            FaultPlan.from_dict({"events": [], "revision": 2})
        with pytest.raises(ValidationError, match="must be a list"):
            FaultPlan.from_dict({"events": {}})

    def test_defaults_omitted_from_wire_form(self):
        event = crash("x", at=1.0).to_dict()
        assert event == {"kind": "crash", "at": 1.0, "targets": ["x"]}


# -- PDP shard crash/restart -------------------------------------------------------


class TestPdpShardCrashRestart:
    def build(self, **pep_kwargs):
        plane = ShardedPdpPlane(shards=3, cache_policy="partitioned")
        stack = MonitoredFederation.build(
            healthcare_scenario(),
            clouds=2,
            seed=23,
            with_drams=False,
            plane=plane,
            pep_kwargs=pep_kwargs or {"request_timeout": 2.0},
        )
        return stack, plane

    def test_crash_loses_inflight_and_stays_in_ring(self):
        stack, plane = self.build()
        victim = plane.services[0]
        events = []
        plane.on_membership(lambda event, svc: events.append((event, svc.address)))
        stack.issue_requests(30, start_at=0.1)
        stack.sim.run(until=0.15)
        plane.crash_shard(victim.address)
        assert victim.crashed
        assert victim.crashes == 1
        assert victim.pending_evaluations == 0
        # The ring does not learn about real crashes: the shard keeps its
        # arc and the PEP's timeout is the failure detector.
        assert victim.address in [s.address for s in plane.services]
        assert ("crashed", victim.address) in events
        stack.run(until=30.0)
        assert len(stack.outcomes) == 30
        assert sum(pep.timeouts for pep in stack.peps.values()) == 0
        assert sum(pep.failovers for pep in stack.peps.values()) > 0

    def test_crash_invalidates_partitioned_cache(self):
        stack, plane = self.build()
        victim = plane.services[0]
        stack.issue_requests(40, start_at=0.1)
        stack.run(until=20.0)
        plane.crash_shard(victim.address)
        assert len(victim.decision_cache) == 0

    def test_restart_rewarms_from_survivor_caches(self):
        stack, plane = self.build()
        victim = plane.services[0]
        stack.issue_requests(40, start_at=0.1)
        stack.run(until=20.0)
        plane.crash_shard(victim.address)
        # Survivors absorb the crashed arc while it is down.
        stack.issue_requests(40, start_at=stack.sim.now + 0.1)
        stack.run(until=stack.sim.now + 20.0)
        warmed_before = plane.warmed_entries
        restarted = plane.restart_shard(victim.address)
        assert restarted is victim
        assert not victim.crashed
        assert plane.warmed_entries > warmed_before
        assert len(victim.decision_cache) > 0

    def test_crashed_shard_cannot_be_drained(self):
        stack, plane = self.build()
        victim = plane.services[-1]
        plane.crash_shard(victim.address)
        with pytest.raises(ValidationError):
            plane.drain_shard(victim.address)
        # Auto-pick skips the crashed tail and picks a live shard.
        drained = plane.drain_shard()
        assert drained is not victim

    def test_restart_requires_a_crashed_shard(self):
        stack, plane = self.build()
        with pytest.raises(ValidationError):
            plane.restart_shard(plane.services[0].address)

    def test_drams_probes_detach_and_reattach_across_crash(self):
        plane = ShardedPdpPlane(shards=2)
        stack = MonitoredFederation.build(
            healthcare_scenario(),
            clouds=2,
            seed=29,
            with_drams=True,
            drams_config=fast_drams_config(),
            plane=plane,
        )
        stack.start()
        victim = plane.services[0]
        assert victim in stack.drams.pdp_services
        plane.crash_shard(victim.address)
        assert victim not in stack.drams.pdp_services
        plane.restart_shard(victim.address)
        assert victim in stack.drams.pdp_services
        assert stack.drams.pdp_services.count(victim) == 1


# -- PRP replica crash/restart -----------------------------------------------------


def deployed_policy_plane(**kwargs):
    federation = Federation(FederationConfig(name="faults-policydist", seed=5))
    plane = ReplicatedPrpPlane(**kwargs).deploy(federation)
    return federation, plane


class TestPrpReplicaCrashRestart:
    def test_crash_loses_staged_but_not_applied_history(self):
        replica = PrpReplica("pdp-0")
        store = PolicyRetrievalPoint()
        for index, document in enumerate([doc("a"), doc("b"), doc("c")]):
            store.publish(document, publisher="pap@test", published_at=float(index))
        records = [version.to_record() for version in store.history()]
        replica.apply_record(records[0])
        replica.apply_record(records[2])  # out of order: staged, not applied
        assert replica.version_count() == 1
        assert replica.lose_staged() == 1
        # The durable store survives; the staging buffer does not.
        assert replica.version_count() == 1
        replica.apply_record(records[1])
        assert replica.version_count() == 2

    def test_crashed_replica_rebootstraps_through_anti_entropy(self):
        federation, plane = deployed_policy_plane(
            propagation_delay=0.1, anti_entropy_interval=0.5
        )
        replica = plane.retrieval_point_for("pdp-0")
        plane.authority.publish(doc("a"), publisher="pap@test")
        federation.sim.run(until=1.0)
        assert replica.version_count() == 1
        plane.crash_replica("pdp-0")
        # Published while the replica is dark: the fan-out record dies on
        # the detached host.
        plane.authority.publish(doc("b"), publisher="pap@test")
        plane.authority.publish(doc("c"), publisher="pap@test")
        federation.sim.run(until=3.0)
        assert replica.version_count() == 1
        plane.restart_replica("pdp-0")
        federation.sim.run(until=6.0)
        assert replica.version_count() == 3
        assert replica.current().fingerprint == plane.authority.current().fingerprint

    def test_crashed_replica_does_not_pull_while_down(self):
        federation, plane = deployed_policy_plane(anti_entropy_interval=0.2)
        plane.retrieval_point_for("pdp-0")
        plane.authority.publish(doc("a"), publisher="pap@test")
        plane.crash_replica("pdp-0")
        before = federation.network.stats.sent
        federation.sim.run(until=2.0)
        replica_sends = [
            address for address in plane.replica_addresses()
            if plane.consumer_at(address) == "pdp-0"
        ]
        assert replica_sends  # the host exists, it just stays silent
        assert plane.replicas()["pdp-0"].version_count() == 0
        # No NetworkError was raised by a detached sender during the run.
        assert federation.network.stats.sent >= before


# -- blockchain node crash/rejoin --------------------------------------------------


def build_cluster(n=3, latency=0.005, hashrate=256.0, seed=5):
    rng = SeededRng(seed, "fault-node-tests")
    sim = Simulator()
    net = Network(sim, rng, ConstantLatency(latency))
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    config = BlockchainConfig(
        chain_id="fault-cluster", difficulty_bits=8.0, target_block_interval=0.5,
        retarget_window=0, pow_mode="simulated", confirmations=1,
    )
    keys = {f"n{i}": SigningKey.generate(f"n{i}".encode()) for i in range(n)}
    client_key = SigningKey.generate(b"client")
    all_keys = {name: key.public for name, key in keys.items()}
    all_keys["client"] = client_key.public
    nodes = [
        BlockchainNode(net, f"n{i}", config, registry, rng,
                       key_lookup=all_keys.get, signing_key=keys[f"n{i}"],
                       hashrate=hashrate)
        for i in range(n)
    ]
    addresses = [node.address for node in nodes]
    for node in nodes:
        node.connect(addresses)
    return sim, net, nodes, client_key


class TestChainNodeCrashRejoin:
    def test_rejoining_node_syncs_to_peer_head_without_forking(self):
        sim, net, nodes, _ = build_cluster(n=3)
        for node in nodes:
            node.start()
        sim.run(until=5.0)
        nodes[0].crash()
        assert nodes[0].crashed
        assert not net.is_attached(nodes[0].address)
        sim.run(until=12.0)
        behind = nodes[0].chain.height
        assert nodes[1].chain.height > behind
        nodes[0].restart()
        assert nodes[0].resyncs == 1
        sim.run(until=25.0)
        assert not nodes[0].crashed and not nodes[0]._syncing
        heads = {node.chain.head.hash for node in nodes}
        assert len(heads) == 1
        assert nodes[0].chain.height > behind

    def test_mempool_journal_survives_crash_and_refloods(self):
        sim, net, nodes, client_key = build_cluster(n=3)
        for node in nodes:
            node.start()
        sim.run(until=3.0)
        nodes[0].crash()
        tx = Transaction(sender="client", contract="kvstore", method="put",
                         args={"key": "k", "value": "v"}, seq=1).sign(client_key)
        # Accepted into the crashed node's mempool (the write-ahead
        # journal) but not gossiped while dark.
        assert nodes[0].submit_transaction(tx)
        sim.run(until=6.0)
        assert nodes[1].chain.tx_location(tx.tx_id) is None
        nodes[0].restart()
        sim.run(until=20.0)
        assert nodes[1].chain.tx_location(tx.tx_id) is not None

    def test_crash_is_idempotent_and_stops_mining(self):
        sim, net, nodes, _ = build_cluster(n=3)
        for node in nodes:
            node.start()
        sim.run(until=2.0)
        height = nodes[0].chain.height
        nodes[0].crash()
        nodes[0].crash()
        assert nodes[0].crashes == 1
        sim.run(until=6.0)
        assert nodes[0].chain.height == height


# -- idempotency properties (satellite 3) ------------------------------------------


class TestDistributionIdempotency:
    def converged_fingerprints(self, plane):
        authority = plane.authority
        return {
            consumer: (store.version_count(), store.current().fingerprint)
            for consumer, store in plane.replicas().items()
        }, (authority.version_count(), authority.current().fingerprint)

    def test_duplicated_prp_records_never_change_converged_state(self):
        federation, plane = deployed_policy_plane(
            propagation_delay=0.05, anti_entropy_interval=0.5
        )
        replica = plane.retrieval_point_for("pdp-0")
        target = next(
            address for address in plane.replica_addresses()
            if plane.consumer_at(address) == "pdp-0"
        )
        federation.network.set_link_fault(
            plane.origin_address, target, duplicate=1.0, symmetric=True
        )
        for tag in ("a", "b", "c", "d"):
            plane.authority.publish(doc(tag), publisher="pap@test")
        federation.sim.run(until=5.0)
        replicas, authority = self.converged_fingerprints(plane)
        assert all(state == authority for state in replicas.values())
        assert replica.records_duplicate > 0

    def test_reordered_prp_records_never_change_converged_state(self):
        federation, plane = deployed_policy_plane(
            propagation_delay=0.05, anti_entropy_interval=0.5
        )
        for consumer in ("pdp-0", "pdp-1"):
            plane.retrieval_point_for(consumer)
        targets = plane.replica_addresses()
        for target in targets:
            federation.network.set_link_fault(
                plane.origin_address, target, reorder_jitter=0.4
            )
        for tag in ("a", "b", "c", "d", "e"):
            plane.authority.publish(doc(tag), publisher="pap@test")
        federation.sim.run(until=6.0)
        replicas, authority = self.converged_fingerprints(plane)
        assert all(state == authority for state in replicas.values())

    def test_degraded_gossip_links_never_change_decisions(self):
        # Decision output is a pure function of policy and request: a
        # loadview-gossip layer that sees duplicated/reordered loadview
        # messages may route differently, never decide differently.
        from repro.accesscontrol.autoscale import CrossPepLoadView

        def run(faulty):
            plane = ShardedPdpPlane(
                shards=2, queue_aware=True,
                load_view=CrossPepLoadView(gossip_interval=0.05),
            )
            stack = MonitoredFederation.build(
                healthcare_scenario(), clouds=2, seed=41,
                with_drams=False, plane=plane,
            )
            if faulty:
                peps = [pep.address for pep in stack.peps.values()]
                for src in peps:
                    for dst in peps:
                        if src != dst:
                            stack.federation.network.set_link_fault(
                                src, dst, duplicate=1.0, reorder_jitter=0.2
                            )
            stack.issue_requests(40, start_at=0.1)
            stack.run(until=30.0)
            assert len(stack.outcomes) == 40
            return sorted(
                (hash_value(o.request.content), o.decision.decision,
                 hash_value(o.decision.obligations))
                for o in stack.outcomes
            )

        assert run(faulty=False) == run(faulty=True)


# -- the ChaosController -----------------------------------------------------------


class TestChaosController:
    def storm_stack(self, plan=None, seed=47, with_drams=False):
        plane = ShardedPdpPlane(shards=2)
        stack = MonitoredFederation.build(
            partition_storm_scenario(),
            clouds=2,
            seed=seed,
            with_drams=with_drams,
            drams_config=fast_drams_config() if with_drams else None,
            plane=plane,
            pep_kwargs={
                "request_timeout": 2.0,
                "backoff": RetryBackoff(base=0.2, cap=0.6),
            },
        )
        if with_drams:
            stack.start()
        controller = stack.inject_faults(plan) if plan is not None else None
        return stack, plane, controller

    def fingerprint(self, stack):
        return sorted(
            (round(o.requested_at, 9), hash_value(o.request.content),
             o.decision.decision, o.decision.status_code)
            for o in stack.outcomes
        )

    def test_empty_plan_is_a_strict_noop(self):
        from repro.common.ids import reset_id_counter

        def run(with_controller):
            reset_id_counter()
            stack, _, controller = self.storm_stack(
                plan=FaultPlan() if with_controller else None
            )
            stack.issue_requests(30, start_at=0.1)
            stack.run(until=20.0)
            if with_controller:
                assert controller.applied == []
            return self.fingerprint(stack)

        assert run(with_controller=False) == run(with_controller=True)

    def test_arm_is_idempotent(self):
        plan = FaultPlan(events=(clock_skew("pep@tenant-1", 1.0, at=0.1),))
        stack, _, controller = self.storm_stack(plan)
        controller.arm()
        stack.run(until=1.0)
        assert len(controller.applied) == 1

    def test_partition_applies_and_heals_on_schedule(self):
        plan = FaultPlan(events=(
            partition(["pep@tenant-2"], ["pdp-*@*"], at=0.5, heal_at=1.5),
        ))
        stack, plane, controller = self.storm_stack(plan)
        net = stack.federation.network
        pep = stack.peps["tenant-2"]
        shard = plane.services[0].address
        stack.sim.run(until=1.0)
        assert net.is_partitioned(pep.address, shard)
        stack.sim.run(until=2.0)
        assert not net.is_partitioned(pep.address, shard)

    def test_crash_and_restart_record_shard_ttr(self):
        plan = FaultPlan(events=(
            crash("pdp-0@*", at=0.5, restart_at=1.5),
        ))
        stack, plane, controller = self.storm_stack(plan)
        stack.issue_requests(40, start_at=0.1)
        # A second wave after the scripted restart, so the recovered
        # shard has post-restart work (its TTR endpoint).
        stack.issue_requests(20, start_at=2.0)
        stack.run(until=20.0)
        assert plane.services[0].crashes == 1
        assert not plane.services[0].crashed
        slos = controller.recorder.slos()
        recovered = [r for r in slos["recoveries"] if r["component"] == "pdp-shard"]
        assert len(recovered) == 1
        assert recovered[0]["ttr"] >= 0.0
        assert slos["watches_outstanding"] == 0
        assert len(stack.outcomes) == 60

    def test_chain_node_crash_restart_through_controller(self):
        plan = FaultPlan(events=(
            crash("bcnode@tenant-2", at=1.0, restart_at=3.0),
        ))
        stack, _, controller = self.storm_stack(plan, with_drams=True)
        stack.issue_requests(10, start_at=0.1)
        stack.run(until=15.0)
        slos = controller.recorder.slos()
        recovered = [r for r in slos["recoveries"] if r["component"] == "chain-node"]
        assert len(recovered) == 1
        node = stack.drams.nodes["tenant-2"]
        assert not node.crashed and not node._syncing

    def test_clock_skew_sets_and_resets_offset(self):
        plan = FaultPlan(events=(
            clock_skew("pep@tenant-1", 2.0, at=0.5, until=1.5),
        ))
        stack, _, _ = self.storm_stack(plan)
        host = stack.federation.network.host("pep@tenant-1")
        stack.sim.run(until=1.0)
        assert host.clock_offset == 2.0
        stack.sim.run(until=2.0)
        assert host.clock_offset == 0.0

    def test_generic_host_crash_restart_roundtrip(self):
        plan = FaultPlan(events=(
            crash("li@tenant-1", at=0.5, restart_at=1.0),
        ))
        stack, _, controller = self.storm_stack(plan, with_drams=True)
        net = stack.federation.network
        stack.sim.run(until=0.7)
        assert not net.is_attached("li@tenant-1")
        stack.sim.run(until=1.2)
        assert net.is_attached("li@tenant-1")

    def test_unknown_target_pattern_raises(self):
        stack, _, controller = self.storm_stack(FaultPlan())
        with pytest.raises(ValidationError, match="matched no host"):
            controller._resolve(("no-such-*@anywhere",))
        # Literal addresses pass through unexpanded (they may name a
        # component that attaches later).
        assert controller._resolve(("x@y",)) == ["x@y"]

    def test_pattern_resolution_expands_and_dedupes(self):
        stack, plane, controller = self.storm_stack(FaultPlan())
        shard = plane.services[0].address
        resolved = controller._resolve(("pdp-*@*", shard))
        assert resolved == [s.address for s in plane.services]

    def test_controller_rejects_non_plan(self):
        stack, _, _ = self.storm_stack()
        with pytest.raises(ValidationError, match="FaultPlan"):
            ChaosController(
                {"events": []}, sim=stack.sim, network=stack.federation.network
            )
