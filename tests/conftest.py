"""Shared fixtures.

Integration fixtures use deliberately fast parameters (short block
intervals, tiny federations) so the suite stays quick; the benchmarks are
where realistic parameters live.
"""

from __future__ import annotations

import pytest

from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.common.ids import reset_id_counter
from repro.common.rng import SeededRng
from repro.drams.system import DramsConfig
from repro.harness import MonitoredFederation
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.workload.scenarios import healthcare_scenario, ministry_scenario


@pytest.fixture(autouse=True)
def _fresh_id_counter():
    """Start every test's minted ids from the same origin.

    The id counter is process-global and id-derived artefacts feed
    timing (tx ids → canonical sizes → sampled latencies), so without
    this, adding a test in one module could shift the deterministic
    behaviour of every module collected after it.
    """
    reset_id_counter()


@pytest.fixture
def rng() -> SeededRng:
    return SeededRng(1234, "tests")


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim, rng) -> Network:
    return Network(sim, rng, default_latency=ConstantLatency(0.001))


@pytest.fixture
def kv_registry() -> ContractRegistry:
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    return registry


@pytest.fixture
def fast_chain_config() -> BlockchainConfig:
    return BlockchainConfig(
        chain_id="test-chain",
        difficulty_bits=8.0,
        target_block_interval=0.5,
        retarget_window=0,
        pow_mode="simulated",
        confirmations=1,
    )


def fast_drams_config(**overrides) -> DramsConfig:
    """DRAMS config tuned for test speed (sub-second blocks)."""
    defaults = dict(
        chain=BlockchainConfig(
            chain_id="test-drams-chain",
            difficulty_bits=8.0,
            target_block_interval=0.5,
            retarget_window=0,
            pow_mode="simulated",
            confirmations=1,
        ),
        timeout_blocks=4,
        tick_interval=1.0,
        analyser_sweep_interval=1.0,
        node_hashrate=256.0,
        use_tpm=False,
    )
    defaults.update(overrides)
    return DramsConfig(**defaults)


@pytest.fixture
def healthcare_stack() -> MonitoredFederation:
    stack = MonitoredFederation.build(
        healthcare_scenario(), clouds=2, seed=42,
        drams_config=fast_drams_config())
    stack.start()
    return stack


@pytest.fixture
def ministry_stack() -> MonitoredFederation:
    stack = MonitoredFederation.build(
        ministry_scenario(), clouds=2, seed=43,
        drams_config=fast_drams_config())
    stack.start()
    return stack
