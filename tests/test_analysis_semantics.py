"""Direct unit tests for the document-level semantics (the Analyser's oracle).

The differential suite pins oracle and PDP to each other; these tests pin
the oracle to *the spec* independently, so a correlated bug in both
engines would still have to get past here.
"""

import pytest

from repro.analysis.semantics import (
    DecisionOracle,
    _Error,
    _eval_expression,
    _eval_rule,
    _eval_target,
    _interp_function,
    evaluate_document,
)
from repro.common.errors import PolicyError


class TestFunctionInterpretations:
    def test_equality_family(self):
        assert _interp_function("string-equal", ["a", "a"]) is True
        assert _interp_function("integer-equal", [1, 2]) is False
        assert _interp_function("boolean-equal", [True, True]) is True

    def test_greater_or_equal_is_not_equality(self):
        # Regression: "-equal" suffix matching must not capture comparisons.
        assert _interp_function("integer-greater-than-or-equal", [3, 1]) is True
        assert _interp_function("integer-less-than-or-equal", [1, 3]) is True

    def test_comparisons(self):
        assert _interp_function("integer-greater-than", [3, 2]) is True
        assert _interp_function("integer-less-than", [3, 2]) is False
        assert _interp_function("time-in-range", [10.0, 5.0, 15.0]) is True

    def test_arithmetic(self):
        assert _interp_function("integer-add", [1, 2, 3]) == 6
        assert _interp_function("integer-subtract", [5, 2]) == 3
        assert _interp_function("integer-multiply", [2, 3, 4]) == 24
        assert _interp_function("integer-mod", [7, 3]) == 1
        assert _interp_function("integer-abs", [-4]) == 4
        assert _interp_function("double-add", [0.5, 0.25]) == 0.75

    def test_booleans(self):
        assert _interp_function("and", [True, True]) is True
        assert _interp_function("or", [False, True]) is True
        assert _interp_function("not", [False]) is True
        assert _interp_function("n-of", [2, True, True, False]) is True

    def test_strings(self):
        assert _interp_function("string-concatenate", ["a", "b"]) == "ab"
        assert _interp_function("string-starts-with", ["me", "med"]) is True
        assert _interp_function("string-ends-with", ["ed", "med"]) is True
        assert _interp_function("string-contains", ["e", "med"]) is True
        assert _interp_function("string-regexp-match", ["^m", "med"]) is True
        assert _interp_function("string-normalize-to-lower-case", ["AB"]) == "ab"

    def test_bags(self):
        assert _interp_function("one-and-only", [["x"]]) == "x"
        assert _interp_function("bag-size", [[1, 2, 3]]) == 3
        assert _interp_function("is-in", ["a", ["a", "b"]]) is True
        assert _interp_function("bag", [1, 2]) == [1, 2]
        assert _interp_function("intersection", [[1, 2], [2, 3]]) == [2]
        assert sorted(_interp_function("union", [[1], [2, 1]])) == [1, 2]
        assert _interp_function("at-least-one-member-of", [[1], [1, 2]]) is True
        assert _interp_function("subset", [[1], [1, 2]]) is True

    def test_one_and_only_errors(self):
        with pytest.raises(_Error):
            _interp_function("one-and-only", [[]])
        with pytest.raises(_Error):
            _interp_function("one-and-only", [[1, 2]])

    def test_type_errors_raise(self):
        with pytest.raises(_Error):
            _interp_function("integer-greater-than", ["a", 1])
        with pytest.raises(_Error):
            _interp_function("and", [1])
        with pytest.raises(_Error):
            _interp_function("string-contains", [1, "x"])

    def test_unknown_function_raises(self):
        with pytest.raises(_Error):
            _interp_function("frobnicate", [])

    def test_arity_errors(self):
        with pytest.raises(_Error):
            _interp_function("string-equal", ["a"])
        with pytest.raises(_Error):
            _interp_function("n-of", [])


class TestExpressionEvaluation:
    REQUEST = {"subject": {"role": ["doctor", "nurse"], "clearance": [3]},
               "action": {"action-id": ["read"]}}

    def test_literal(self):
        assert _eval_expression({"literal": 5}, self.REQUEST) == 5

    def test_designator_returns_bag(self):
        expr = {"designator": {"category": "subject", "attribute_id": "role"}}
        assert sorted(_eval_expression(expr, self.REQUEST)) == ["doctor", "nurse"]

    def test_missing_attribute_empty_bag(self):
        expr = {"designator": {"category": "subject", "attribute_id": "ghost"}}
        assert _eval_expression(expr, self.REQUEST) == []

    def test_must_be_present_raises(self):
        expr = {"designator": {"category": "subject", "attribute_id": "ghost",
                               "must_be_present": True}}
        with pytest.raises(_Error):
            _eval_expression(expr, self.REQUEST)

    def test_higher_order_any_of(self):
        expr = {"apply": "any-of", "arguments": [
            {"literal": "string-equal"},
            {"literal": "doctor"},
            {"designator": {"category": "subject", "attribute_id": "role"}}]}
        assert _eval_expression(expr, self.REQUEST) is True

    def test_higher_order_all_of(self):
        expr = {"apply": "all-of", "arguments": [
            {"literal": "string-starts-with"},
            {"literal": ""},
            {"designator": {"category": "subject", "attribute_id": "role"}}]}
        assert _eval_expression(expr, self.REQUEST) is True

    def test_any_of_any(self):
        expr = {"apply": "any-of-any", "arguments": [
            {"literal": "string-equal"},
            {"designator": {"category": "subject", "attribute_id": "role"}},
            {"apply": "bag", "arguments": [{"literal": "nurse"}]}]}
        assert _eval_expression(expr, self.REQUEST) is True

    def test_unrecognised_node_raises(self):
        with pytest.raises(_Error):
            _eval_expression({"mystery": 1}, self.REQUEST)


class TestTargetSemantics:
    def match(self, value, attribute="role"):
        return {"function": "string-equal", "value": value,
                "category": "subject", "attribute_id": attribute}

    def test_empty_target_is_true(self):
        assert _eval_target(None, {}) == "T"
        assert _eval_target([], {}) == "T"

    def test_disjunction_of_conjunction(self):
        request = {"subject": {"role": ["doctor"]}}
        target = [[[self.match("admin")], [self.match("doctor")]]]
        assert _eval_target(target, request) == "T"

    def test_conjunction_fails_on_one_false(self):
        request = {"subject": {"role": ["doctor"]}}
        target = [[[self.match("doctor"), self.match("admin")]]]
        assert _eval_target(target, request) == "F"

    def test_error_propagates_as_E(self):
        request = {"subject": {"role": ["doctor"]}}
        bad = {"function": "integer-greater-than", "value": 3,
               "category": "subject", "attribute_id": "role"}
        assert _eval_target([[[bad]]], request) == "E"


class TestRuleAndDocument:
    def test_rule_effect_indeterminate_on_condition_error(self):
        rule = {"rule_id": "r", "effect": "Permit", "target": None,
                "condition": {"apply": "one-and-only", "arguments": [
                    {"designator": {"category": "subject",
                                    "attribute_id": "ghost",
                                    "must_be_present": True}}]}}
        assert _eval_rule(rule, {}) == "Indeterminate{P}"

    def test_document_collapses_indeterminates(self):
        document = {"kind": "policy", "policy_id": "p",
                    "rule_combining": "deny-overrides",
                    "rules": [{"rule_id": "r", "effect": "Deny", "target": None,
                               "condition": {"apply": "one-and-only",
                                             "arguments": [{"designator": {
                                                 "category": "subject",
                                                 "attribute_id": "ghost",
                                                 "must_be_present": True}}]}}]}
        assert evaluate_document(document, {}) == "Indeterminate"

    def test_unknown_kind_raises(self):
        with pytest.raises(PolicyError):
            evaluate_document({"kind": "wizard"}, {})

    def test_oracle_counts_checks(self):
        document = {"kind": "policy", "policy_id": "p",
                    "rule_combining": "permit-overrides",
                    "rules": [{"rule_id": "r", "effect": "Permit",
                               "target": None, "condition": None}]}
        oracle = DecisionOracle(document)
        oracle.expected_decision({})
        oracle.expected_decision({})
        assert oracle.checks == 2

    def test_oracle_rejects_non_policy(self):
        with pytest.raises(PolicyError):
            DecisionOracle({"kind": "request"})
