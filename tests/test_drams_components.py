"""Probes, Logging Interface, Analyser — component-level behaviour.

These use a real (fast) DRAMS deployment from the harness but inspect the
individual components rather than end-to-end detection (that lives in
test_threats.py).
"""

import pytest

from repro.common.errors import CryptoError, ValidationError
from repro.crypto.symmetric import SymmetricKey
from repro.drams.logs import EntryType, LogEntry
from repro.workload.scenarios import healthcare_scenario
from repro.harness import MonitoredFederation
from tests.conftest import fast_drams_config


def issue_one(stack, role="doctor", action="read"):
    tenant = sorted(stack.peps)[0]
    outcomes = []
    stack.peps[tenant].request_access(
        subject={"subject-id": "u1", "role": role},
        resource={"resource-id": "r1", "type": "medical-record",
                  "owner-tenant": tenant},
        action={"action-id": action},
        callback=outcomes.append)
    return tenant, outcomes


class TestLogEntry:
    def test_entry_type_validated(self):
        with pytest.raises(ValidationError):
            LogEntry(correlation_id="c", entry_type="nope", tenant="t",
                     component="x", payload={}, observed_at=0.0)

    def test_payload_hash_is_canonical(self):
        a = LogEntry("c", EntryType.PEP_IN, "t", "x", {"b": 1, "a": 2}, 0.0)
        b = LogEntry("c", EntryType.PEP_IN, "t", "x", {"a": 2, "b": 1}, 5.0)
        assert a.payload_hash() == b.payload_hash()

    def test_dict_roundtrip(self):
        entry = LogEntry("c", EntryType.PDP_OUT, "t", "x", {"d": "Permit"}, 1.5)
        assert LogEntry.from_dict(entry.to_dict()).payload_hash() == entry.payload_hash()


class TestProbes:
    def test_four_entries_per_request(self, healthcare_stack):
        stack = healthcare_stack
        issue_one(stack)
        stack.run(until=20.0)
        records = stack.drams.monitor_state()["records"]
        assert len(records) == 1
        record = next(iter(records.values()))
        assert sorted(record["entries"]) == sorted(EntryType.ALL)

    def test_probe_observation_counters(self, healthcare_stack):
        stack = healthcare_stack
        tenant, _ = issue_one(stack)
        stack.run(until=20.0)
        assert stack.drams.probes[f"pep:{tenant}"].observations == 2
        assert stack.drams.probes["pdp"].observations == 2

    def test_suppressed_probe_logs_nothing(self, healthcare_stack):
        stack = healthcare_stack
        tenant = sorted(stack.peps)[0]
        stack.drams.probes[f"pep:{tenant}"].suppressed = True
        issue_one(stack)
        stack.run(until=5.0)
        assert stack.drams.probes[f"pep:{tenant}"].observations == 0

    def test_selective_suppression(self, healthcare_stack):
        stack = healthcare_stack
        tenant = sorted(stack.peps)[0]
        probe = stack.drams.probes[f"pep:{tenant}"]
        probe.suppressed_types.add(EntryType.PEP_OUT)
        issue_one(stack)
        stack.run(until=20.0)
        record = next(iter(stack.drams.monitor_state()["records"].values()))
        assert EntryType.PEP_IN in record["entries"]
        assert EntryType.PEP_OUT not in record["entries"]


class TestLoggingInterface:
    def test_payloads_are_encrypted_on_chain(self, healthcare_stack):
        stack = healthcare_stack
        issue_one(stack)
        stack.run(until=20.0)
        record = next(iter(stack.drams.monitor_state()["records"].values()))
        entry = record["entries"][EntryType.PEP_IN]
        ciphertext = entry["ciphertext"]["ciphertext"]
        assert "subject-id" not in bytes.fromhex(ciphertext).decode("latin-1")

    def test_read_log_plaintext_roundtrip(self, healthcare_stack):
        stack = healthcare_stack
        issue_one(stack)
        stack.run(until=20.0)
        li = stack.drams.interfaces[sorted(stack.peps)[0]]
        corr = next(iter(stack.drams.monitor_state()["records"]))
        payload = li.read_log_plaintext(corr, EntryType.PDP_OUT)
        assert payload is not None and payload["decision"] in ("Permit", "Deny")

    def test_read_log_plaintext_missing_returns_none(self, healthcare_stack):
        li = healthcare_stack.drams.interfaces[sorted(healthcare_stack.peps)[0]]
        assert li.read_log_plaintext("nope", EntryType.PEP_IN) is None

    def test_commit_latency_tracked(self, healthcare_stack):
        stack = healthcare_stack
        issue_one(stack)
        stack.run(until=20.0)
        latencies = stack.drams.commit_latencies()
        assert len(latencies) == 4
        assert all(latency > 0 for latency in latencies)

    def test_wrong_key_cannot_decrypt(self, healthcare_stack):
        stack = healthcare_stack
        issue_one(stack)
        stack.run(until=20.0)
        record = next(iter(stack.drams.monitor_state()["records"].values()))
        blob_dict = record["entries"][EntryType.PEP_IN]["ciphertext"]
        from repro.crypto.symmetric import EncryptedBlob

        wrong = SymmetricKey.generate(entropy=b"not-the-federation-key")
        with pytest.raises(CryptoError):
            wrong.decrypt(EncryptedBlob.from_dict(blob_dict))

    def test_tpm_deployment_seals_key(self):
        stack = MonitoredFederation.build(
            healthcare_scenario(), clouds=2, seed=77,
            drams_config=fast_drams_config(use_tpm=True))
        stack.start()
        li = stack.drams.interfaces[sorted(stack.peps)[0]]
        assert li.tpm is not None
        issue_one(stack)
        stack.run(until=20.0)
        assert li.logs_submitted == 2  # pep-in + pep-out
        # Simulate compromise: measurement drift blocks the key.
        li.tpm.extend_pcr("malware")
        issue_one(stack, role="nurse")
        stack.run(until=40.0)
        assert li.key_failures > 0


class TestAnalyser:
    def test_checks_every_decision(self, healthcare_stack):
        stack = healthcare_stack
        for _ in range(3):
            issue_one(stack)
        stack.run(until=25.0)
        assert stack.drams.analyser.checked == 3
        assert stack.drams.analyser.violations_reported == 0

    def test_detects_flipped_decision(self, healthcare_stack):
        stack = healthcare_stack
        from repro.accesscontrol.messages import AccessDecision

        def flip(request, decision):
            flipped = AccessDecision.from_dict(decision.to_dict())
            flipped.decision = "Permit" if decision.decision == "Deny" else "Deny"
            return flipped

        stack.pdp_service.evaluation_interceptor = flip
        issue_one(stack)
        stack.run(until=25.0)
        assert stack.drams.analyser.violations_reported == 1
        from repro.drams.alerts import AlertType

        assert stack.drams.alerts.count(AlertType.INCORRECT_DECISION) == 1

    def test_sweep_is_idempotent(self, healthcare_stack):
        stack = healthcare_stack
        issue_one(stack)
        stack.run(until=25.0)
        checked = stack.drams.analyser.checked
        assert stack.drams.analyser.sweep() == 0
        assert stack.drams.analyser.checked == checked


class TestSystem:
    def test_honest_run_is_alert_free(self, ministry_stack):
        stack = ministry_stack
        stack.issue_requests(15)
        stack.run(until=40.0)
        assert stack.drams.alerts.count() == 0
        stats = stack.drams.stats()
        assert stats["monitor"]["verified"] == 15
        assert stats["logs_submitted"] == 60

    def test_stats_shape(self, healthcare_stack):
        stats = healthcare_stack.drams.stats()
        assert {"chain_height", "reorgs", "monitor", "alerts_by_type",
                "logs_submitted", "analyser_checked"} <= set(stats)

    def test_all_nodes_converge(self, healthcare_stack):
        stack = healthcare_stack
        stack.issue_requests(10)
        stack.run(until=30.0)
        heads = {node.chain.head.hash for node in stack.drams.nodes.values()}
        assert len(heads) == 1

    def test_attestation_round_passes_for_honest_lis(self):
        stack = MonitoredFederation.build(
            healthcare_scenario(), clouds=2, seed=78,
            drams_config=fast_drams_config(use_tpm=True))
        stack.start()
        assert stack.drams.run_attestation_round() == []

    def test_attestation_round_flags_drift(self):
        stack = MonitoredFederation.build(
            healthcare_scenario(), clouds=2, seed=79,
            drams_config=fast_drams_config(use_tpm=True))
        stack.start()
        li = stack.drams.interfaces[sorted(stack.peps)[0]]
        li.tpm.extend_pcr("tampered")
        failed = stack.drams.run_attestation_round()
        assert failed == [li.address]
        from repro.drams.alerts import AlertType

        assert stack.drams.alerts.count(AlertType.ATTESTATION_FAILURE) == 1

    def test_stop_halts_all_activity(self, healthcare_stack):
        stack = healthcare_stack
        stack.run(until=5.0)
        stack.drams.stop()
        executed_before = stack.sim.executed_events
        stack.run(until=30.0)
        # Only already-queued deliveries drain; no new mining/tick load.
        assert stack.sim.executed_events - executed_before < 50
