"""Decision cache: LRU bounds, key projection, PDP-service integration."""

import pytest

from repro.accesscontrol.decision_cache import DecisionCache, project_attributes
from repro.accesscontrol.messages import AccessDecision
from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import SinglePdpPlane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.common.rng import SeededRng
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.parser import policy_from_dict
from repro.xacml.policy import Effect, Policy, Rule, Target


def doctors_policy(policy_id: str = "p") -> Policy:
    return Policy(
        policy_id=policy_id, rule_combining="first-applicable",
        rules=[
            Rule("allow-doctors", Effect.PERMIT,
                 target=Target.single("string-equal", "doctor",
                                      "subject", "role")),
            Rule("deny", Effect.DENY),
        ])


def deny_all_policy(policy_id: str = "deny-all") -> Policy:
    return Policy(policy_id=policy_id, rule_combining="first-applicable",
                  rules=[Rule("deny", Effect.DENY)])


@pytest.fixture
def deployment():
    sim = Simulator()
    network = Network(sim, SeededRng(11, "cache-tests"), ConstantLatency(0.001))
    prp = PolicyRetrievalPoint()
    pap = PolicyAdministrationPoint(prp, administrator="admin")
    pap.publish(doctors_policy())
    pdp = PdpService(network, "pdp@infra", prp)
    pep = PolicyEnforcementPoint(network, "pep@t1", "tenant-1",
                                 SinglePdpPlane.wrap(pdp), request_timeout=5.0)
    return sim, prp, pap, pdp, pep


def ask(sim, pep, outcomes, role="doctor", until=None):
    pep.request_access(subject={"subject-id": "s", "role": role},
                       resource={"resource-id": "r"},
                       action={"action-id": "read"},
                       callback=outcomes.append)
    sim.run(until=until if until is not None else sim.now + 2.0)


class TestDecisionCacheUnit:
    def test_lru_eviction_order(self):
        cache = DecisionCache(max_entries=2)
        response = {"decision": "Permit", "status_code": "ok", "obligations": []}
        cache.put("a", "fp", response)
        cache.put("b", "fp", response)
        assert cache.get("a") is not None  # refresh a → b is now oldest
        cache.put("c", "fp", response)
        assert cache.contains("a") and cache.contains("c")
        assert not cache.contains("b")
        assert cache.evictions == 1

    def test_counters_and_stats(self):
        cache = DecisionCache(max_entries=4)
        assert cache.get("missing") is None
        cache.put("k", "fp", {"decision": "Deny", "status_code": "ok",
                              "obligations": []})
        assert cache.get("k")["decision"] == "Deny"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1

    def test_returned_entries_are_copies(self):
        cache = DecisionCache()
        cache.put("k", "fp", {"decision": "Permit", "status_code": "ok",
                              "obligations": [{"obligation_id": "o",
                                               "attributes": {"reason": "x"}}]})
        first = cache.get("k")
        first["decision"] = "Deny"
        first["obligations"][0]["obligation_id"] = "tampered"
        first["obligations"][0]["attributes"]["reason"] = "tampered"
        second = cache.get("k")
        assert second["decision"] == "Permit"
        assert second["obligations"][0]["obligation_id"] == "o"
        assert second["obligations"][0]["attributes"]["reason"] == "x"

    def test_invalidate_by_fingerprint(self):
        cache = DecisionCache()
        response = {"decision": "Permit", "status_code": "ok", "obligations": []}
        cache.put("a", "fp-1", response)
        cache.put("b", "fp-2", response)
        assert cache.invalidate("fp-1") == 1
        assert not cache.contains("a") and cache.contains("b")
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            DecisionCache(max_entries=0)


class TestKeyProjection:
    def test_projection_drops_unreferenced_attributes(self):
        footprint = {("subject", "role"), ("action", "action-id")}
        content = {"subject": {"role": ["doctor"], "shoe-size": [42]},
                   "action": {"action-id": ["read"]},
                   "environment": {"time-of-day": [123.4]}}
        assert project_attributes(content, footprint) == {
            "subject": {"role": ["doctor"]},
            "action": {"action-id": ["read"]},
        }

    def test_irrelevant_attributes_share_one_key(self):
        footprint = {("subject", "role")}
        a = {"subject": {"role": ["doctor"]},
             "environment": {"time-of-day": [1.0]}}
        b = {"subject": {"role": ["doctor"]},
             "environment": {"time-of-day": [999.0]}}
        assert (DecisionCache.request_key("fp", a, footprint)
                == DecisionCache.request_key("fp", b, footprint))

    def test_relevant_attributes_split_keys(self):
        footprint = {("subject", "role")}
        a = {"subject": {"role": ["doctor"]}}
        b = {"subject": {"role": ["nurse"]}}
        assert (DecisionCache.request_key("fp", a, footprint)
                != DecisionCache.request_key("fp", b, footprint))

    def test_fingerprint_splits_keys(self):
        content = {"subject": {"role": ["doctor"]}}
        assert (DecisionCache.request_key("fp-1", content)
                != DecisionCache.request_key("fp-2", content))


class TestPdpServiceIntegration:
    def test_repeated_request_hits_cache(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        outcomes = []
        for _ in range(3):
            ask(sim, pep, outcomes)
        assert [o.granted for o in outcomes] == [True, True, True]
        assert pdp.decision_cache.hits == 2
        assert pdp.decision_cache.misses == 1
        # The policy tree was walked exactly once.
        assert pdp._compiled_current()[1].pdp.evaluations == 1

    def test_cache_hit_shrinks_processing_delay(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        outcomes = []
        ask(sim, pep, outcomes)
        ask(sim, pep, outcomes)
        assert outcomes[1].latency < outcomes[0].latency

    def test_publish_invalidates_cache(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        outcomes = []
        ask(sim, pep, outcomes)
        assert len(pdp.decision_cache) == 1
        pap.publish(deny_all_policy())
        assert len(pdp.decision_cache) == 0
        assert pdp.decision_cache.invalidations == 1
        ask(sim, pep, outcomes)
        assert not outcomes[1].granted  # fresh decision under the new policy

    def test_time_varying_environment_still_hits(self, deployment):
        # time-of-day differs between the two requests (simulated clock
        # advances) but the doctors policy never reads it, so the footprint
        # projection maps both requests onto one cache key.
        sim, prp, pap, pdp, pep = deployment
        outcomes = []
        ask(sim, pep, outcomes)
        sim.run(until=sim.now + 100.0)
        ask(sim, pep, outcomes)
        assert pdp.decision_cache.hits == 1

    def test_pdp_lru_survives_policy_flip_flop(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        a, b = doctors_policy(), deny_all_policy()
        outcomes = []
        for policy in (a, b, a, b, a, b):
            pap.publish(policy)
            ask(sim, pep, outcomes)
        # Two distinct fingerprints → exactly two compilations, ever.
        assert pdp.pdp_compilations == 2
        assert [o.granted for o in outcomes] == [True, False] * 3

    def test_pdp_lru_is_bounded(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        for i in range(pdp.pdp_cache_size + 3):
            pap.publish(doctors_policy(policy_id=f"p-{i}"))
            pdp._compiled_current()
        assert len(pdp._pdp_cache) == pdp.pdp_cache_size

    def test_policy_override_bypasses_cache(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        outcomes = []
        ask(sim, pep, outcomes, role="clerk")
        assert not outcomes[0].granted
        rogue = PolicyDecisionPoint(policy_from_dict(
            {"kind": "policy", "policy_id": "rogue",
             "rule_combining": "first-applicable",
             "rules": [{"rule_id": "allow-all", "effect": "Permit",
                        "target": None, "condition": None}]}))
        pdp.policy_override = rogue
        before = pdp.decision_cache.stats()
        ask(sim, pep, outcomes, role="clerk")
        assert outcomes[1].granted  # rogue decision served...
        after = pdp.decision_cache.stats()
        assert after["hits"] == before["hits"]  # ...without touching the cache
        assert after["entries"] == before["entries"]
        pdp.policy_override = None
        ask(sim, pep, outcomes, role="clerk")
        assert not outcomes[2].granted  # honest path unpolluted

    def test_tampered_decisions_are_not_cached(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        pdp.evaluation_interceptor = lambda request, decision: AccessDecision(
            request_id=decision.request_id,
            decision="Deny" if decision.decision == "Permit" else "Permit",
            decided_at=decision.decided_at)
        outcomes = []
        ask(sim, pep, outcomes)
        assert not outcomes[0].granted  # tampering flips the emitted decision
        pdp.evaluation_interceptor = None
        ask(sim, pep, outcomes)
        # The cached entry holds the honest pre-interceptor decision.
        assert pdp.decision_cache.hits == 1
        assert outcomes[1].granted

    def test_shared_cache_binds_prp_once(self, deployment):
        sim, prp, pap, pdp, pep = deployment
        listeners_before = len(prp._listeners)
        shared = pdp.decision_cache
        network = Network(sim, SeededRng(13, "cache-share"),
                          ConstantLatency(0.001))
        PdpService(network, "pdp2@infra", prp, decision_cache=shared)
        PdpService(network, "pdp3@infra", prp, decision_cache=shared)
        # The shared cache registered its flush listener exactly once.
        assert len(prp._listeners) == listeners_before

    def test_racing_publish_beats_stale_cache_entry(self, deployment):
        # A policy published inside the receive->evaluate window must win
        # over the cache-key snapshot taken at receipt.
        sim, prp, pap, pdp, pep = deployment
        outcomes = []
        ask(sim, pep, outcomes)  # warm: Permit cached
        assert outcomes[0].granted
        pep.request_access(subject={"subject-id": "s", "role": "doctor"},
                           resource={"resource-id": "r"},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        # Network latency is 1ms, PDP hit-delay 0.5ms: land the publish
        # between the PDP receiving the request and deciding it.
        sim.schedule(0.00115, lambda: pap.publish(deny_all_policy()))
        sim.run(until=sim.now + 2.0)
        assert not outcomes[1].granted

    def test_cache_can_be_disabled(self):
        sim = Simulator()
        network = Network(sim, SeededRng(12, "cache-off"), ConstantLatency(0.001))
        prp = PolicyRetrievalPoint()
        PolicyAdministrationPoint(prp, "admin").publish(doctors_policy())
        pdp = PdpService(network, "pdp@infra", prp, use_decision_cache=False)
        pep = PolicyEnforcementPoint(network, "pep@t1", "tenant-1",
                                     SinglePdpPlane.wrap(pdp), request_timeout=5.0)
        outcomes = []
        for _ in range(2):
            ask(sim, pep, outcomes)
        assert pdp.decision_cache is None
        assert [o.granted for o in outcomes] == [True, True]
        assert pdp._compiled_current()[1].pdp.evaluations == 2
