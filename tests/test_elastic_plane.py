"""Elastic decision plane: runtime membership, drain semantics, probe
lifecycle, queue-aware and locality-aware routing."""

import pytest

from repro.accesscontrol.messages import AccessRequest
from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.plane import ShardedPdpPlane, SinglePdpPlane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.common.errors import ValidationError
from repro.harness import MonitoredFederation
from repro.workload.scenarios import elastic_scale_scenario, healthcare_scenario
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule, Target
from tests.conftest import fast_drams_config


def doctors_policy() -> Policy:
    return Policy(
        policy_id="p",
        rule_combining="first-applicable",
        rules=[
            Rule(
                "allow-doctors",
                Effect.PERMIT,
                target=Target.single("string-equal", "doctor", "subject", "role"),
            ),
            Rule("deny", Effect.DENY),
        ],
    )


def request_with(role="doctor", origin="tenant-1", extra=None):
    content = {
        "subject": {"role": [role]},
        "action": {"action-id": ["read"]},
        "environment": {"origin-tenant": [origin]},
    }
    if extra:
        content.update(extra)
    return AccessRequest(content=content, origin_tenant=origin)


def build_stack(plane, scenario=None, with_drams=False, seed=31, **kwargs):
    stack = MonitoredFederation.build(
        scenario or healthcare_scenario(),
        clouds=2,
        seed=seed,
        with_drams=with_drams,
        drams_config=fast_drams_config() if with_drams else None,
        plane=plane,
        **kwargs,
    )
    if with_drams:
        stack.start()
    return stack


class TestAddShard:
    def test_add_shard_joins_ring_and_serves(self):
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane)
        added = plane.add_shard()
        assert added.address == "pdp-2@infrastructure"
        assert [s.address for s in plane.services] == [
            "pdp-0@infrastructure",
            "pdp-1@infrastructure",
            "pdp-2@infrastructure",
        ]
        assert plane.shards == 3
        # The new shard owns part of the key space.
        primaries = {plane.endpoints(request_with(role=f"role-{i}"))[0] for i in range(64)}
        assert added.address in primaries
        stack.issue_requests(30)
        stack.run(until=30.0)
        assert len(stack.outcomes) == 30
        assert sum(pep.timeouts for pep in stack.peps.values()) == 0
        assert sum(s.requests_served for s in plane.services) == 30

    def test_add_shard_shares_the_shared_cache(self):
        plane = ShardedPdpPlane(shards=2, cache_policy="shared")
        build_stack(plane)
        added = plane.add_shard()
        assert added.decision_cache is plane.services[0].decision_cache

    def test_add_shard_partitioned_gets_own_cache(self):
        plane = ShardedPdpPlane(shards=2, cache_policy="partitioned")
        build_stack(plane)
        added = plane.add_shard()
        caches = plane.caches()
        assert len(caches) == 3
        assert added.decision_cache in caches

    def test_add_shard_requires_deployment(self):
        with pytest.raises(ValidationError, match="deployed"):
            ShardedPdpPlane(shards=2).add_shard()

    def test_over_plane_cannot_add(self, network):
        pdp = PdpService(network, "pdp-0@infra", PolicyRetrievalPoint())
        plane = ShardedPdpPlane.over([pdp])
        with pytest.raises(ValidationError):
            plane.add_shard()

    def test_added_addresses_never_reuse_indices(self):
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane)
        plane.add_shard()
        plane.drain_shard("pdp-2@infrastructure")
        stack.run(until=stack.sim.now + 10.0)
        again = plane.add_shard()
        assert again.address == "pdp-3@infrastructure"  # never resurrect pdp-2


class TestDrainShard:
    def test_drained_shard_leaves_the_ring_immediately(self):
        plane = ShardedPdpPlane(shards=3)
        stack = build_stack(plane)
        drained = plane.drain_shard()
        assert drained.address == "pdp-2@infrastructure"
        assert plane.shards == 2
        assert plane.draining() == [drained]
        for i in range(32):
            assert drained.address not in plane.endpoints(request_with(role=f"r{i}"))
        stack.issue_requests(20)
        stack.run(until=30.0)
        assert len(stack.outcomes) == 20
        assert drained.requests_served == 0  # nothing routed after drain

    def test_drain_finishes_in_flight_work_then_detaches(self):
        plane = ShardedPdpPlane(
            shards=2,
            drain_grace=0.5,
            service_kwargs={"base_processing_delay": 0.2, "per_rule_delay": 0.0},
        )
        stack = build_stack(plane)
        victim = plane.services[1]
        stack.issue_requests(12)
        stack.run(until=0.6)  # requests are in flight / evaluating
        plane.drain_shard(victim.address)
        removed = []
        plane.on_membership(lambda event, service: removed.append((event, service)))
        stack.run(until=30.0)
        assert ("removed", victim) in removed
        assert victim.pending_evaluations == 0
        assert len(stack.outcomes) == 12
        assert sum(pep.timeouts for pep in stack.peps.values()) == 0
        # Quiescent shard left the network fabric.
        assert victim.address not in stack.federation.network.hosts()

    def test_cannot_drain_last_shard(self):
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane)
        plane.drain_shard()
        with pytest.raises(ValidationError, match="last routable"):
            plane.drain_shard()
        stack.run(until=10.0)

    def test_drain_unknown_address_rejected(self):
        plane = ShardedPdpPlane(shards=2)
        build_stack(plane)
        with pytest.raises(ValidationError, match="no routable shard"):
            plane.drain_shard("pdp-9@infrastructure")

    def test_partitioned_cache_entries_rehome_to_survivors(self):
        plane = ShardedPdpPlane(shards=3, cache_policy="partitioned")
        stack = build_stack(plane)
        stack.issue_requests(24)
        stack.run(until=30.0)
        victim = plane.services[-1]
        victim_entries = victim.decision_cache.export_entries()
        assert victim_entries  # the workload warmed the victim's cache
        survivor_caches = [s.decision_cache for s in plane.services[:-1]]
        plane.drain_shard(victim.address)
        migrated_keys = set()
        for cache in survivor_caches:
            migrated_keys.update(key for key, _, _ in cache.export_entries())
        for key, _, _ in victim_entries:
            assert key in migrated_keys
        stack.run(until=stack.sim.now + 10.0)

    def test_pep_replans_failover_around_drained_shard(self):
        # A request dispatched to a shard that drains (and goes quiescent)
        # before answering must fail over to a *surviving* shard on the
        # re-planned route, not be retried against the removed one.  The
        # re-route counts as membership churn, not a failover: the shard
        # was drained out from under the attempt, it did not fault.
        plane = ShardedPdpPlane(shards=2, drain_grace=0.0, drain_poll_interval=0.05)
        stack = build_stack(plane)
        pep = next(iter(stack.peps.values()))
        request = request_with()
        order = plane.endpoints(request)
        victim = next(s for s in plane.services if s.address == order[0])
        # Silence the victim: it receives but never evaluates.
        victim.receive = lambda message: None
        outcomes = []
        pep.submit(request, outcomes.append)
        stack.run(until=0.2)
        plane.drain_shard(victim.address)
        stack.run(until=60.0)
        assert len(outcomes) == 1
        assert outcomes[0].decision.status_code != "timeout"
        assert pep.failovers == 0
        assert pep.churn_reroutes == 1

    def test_unresponsive_listed_shard_still_counts_as_failover(self):
        # The counterpart: a shard that stays in the membership but never
        # answers is a fault — the retry must keep incrementing
        # ``failovers``, untouched by the churn-attribution fix.
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane)
        pep = next(iter(stack.peps.values()))
        request = request_with()
        order = plane.endpoints(request)
        victim = next(s for s in plane.services if s.address == order[0])
        victim.receive = lambda message: None
        outcomes = []
        pep.submit(request, outcomes.append)
        stack.run(until=60.0)
        assert len(outcomes) == 1
        assert outcomes[0].decision.status_code != "timeout"
        assert pep.failovers == 1
        assert pep.churn_reroutes == 0


class TestProbeLifecycle:
    def test_added_shard_is_probed_before_first_request(self):
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane, with_drams=True, seed=32)
        added = stack.add_pdp_shard()
        key = f"pdp:{added.address}"
        assert key in stack.drams.probes
        probe = stack.drams.probes[key]
        assert probe.component_host is added
        assert added in stack.drams.pdp_services
        stack.issue_requests(20)
        stack.run(until=40.0)
        assert len(stack.outcomes) == 20
        assert added.requests_served > 0
        # pdp-in + pdp-out per decision: complete coverage, no alert gap.
        assert probe.observations == 2 * added.requests_served
        assert stack.drams.alerts.count() == 0
        assert stack.drams.analyser.checked == 20
        assert stack.drams.analyser.pending_correlations == 0

    def test_added_shard_is_never_double_probed(self):
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane, with_drams=True, seed=33)
        added = stack.add_pdp_shard()
        assert len(added.on_decision) == 1
        assert len(added.on_request_received) == 1
        # A duplicate membership announcement must not attach twice.
        plane._notify_membership("added", added)
        assert len(added.on_decision) == 1
        assert len(added.on_request_received) == 1

    def test_drained_shard_keeps_probe_until_quiescent(self):
        plane = ShardedPdpPlane(shards=2, drain_grace=0.5)
        stack = build_stack(plane, with_drams=True, seed=34)
        stack.issue_requests(16)
        stack.run(until=1.0)
        victim = plane.services[1]
        probe = next(p for p in stack.drams.probes.values() if p.component_host is victim)
        stack.drain_pdp_shard(victim.address)
        assert not probe.detached  # still covering in-flight work
        stack.run(until=60.0)
        assert probe.detached
        assert victim.on_decision == []  # hooks actually removed
        assert victim.on_request_received == []
        # Every decision the drained shard made was observed and checked.
        assert len(stack.outcomes) == 16
        assert stack.drams.alerts.count() == 0
        assert stack.drams.analyser.checked == 16
        assert stack.drams.analyser.pending_correlations == 0

    def test_removed_shard_leaves_drams_pdp_services(self):
        plane = ShardedPdpPlane(shards=2, drain_grace=0.2)
        stack = build_stack(plane, with_drams=True, seed=38)
        added = stack.add_pdp_shard()
        assert added in stack.drams.pdp_services
        primary = stack.drams.pdp_service
        stack.drain_pdp_shard(added.address)
        stack.run(until=30.0)
        # Quiescent + off the network: shard-indexed experiments must not
        # be able to target it through the DRAMS view any more.
        assert added not in stack.drams.pdp_services
        assert stack.drams.pdp_service is primary  # primary stays pinned
        assert stack.drams.pdp_services == plane.services

    def test_full_add_drain_cycle_under_traffic_no_alert_gap(self):
        plane = ShardedPdpPlane(shards=2, drain_grace=0.5)
        stack = build_stack(plane, with_drams=True, seed=35)
        stack.issue_requests(24)
        stack.add_pdp_shard(at=0.8)
        stack.drain_pdp_shard("pdp-0@infrastructure", at=2.0)
        stack.run(until=90.0)
        assert len(stack.outcomes) == 24
        assert sum(pep.timeouts for pep in stack.peps.values()) == 0
        assert stack.drams.alerts.count() == 0
        assert stack.drams.analyser.checked == 24
        assert stack.drams.analyser.pending_correlations == 0


class TestQueueAwareRouting:
    def make_pool(self, network, count=2, serialize=True):
        prp = PolicyRetrievalPoint()
        PolicyAdministrationPoint(prp, "admin").publish(doctors_policy())
        services = [
            PdpService(
                network,
                f"pdp-{i}@infra",
                prp,
                serialize_evaluations=serialize,
            )
            for i in range(count)
        ]
        return prp, services

    def test_prefers_idle_shard_over_busy_one(self, network):
        prp, services = self.make_pool(network)
        plane = ShardedPdpPlane.over(services, prp=prp, queue_aware=True)
        request = request_with()
        ring_order = ShardedPdpPlane.over(services, prp=prp).endpoints(request)
        busy = next(s for s in services if s.address == ring_order[0])
        idle = next(s for s in services if s.address == ring_order[1])
        busy._busy_until = busy.sim.now + 5.0  # deep backlog on the primary
        assert plane.endpoints(request) == (idle.address, busy.address)

    def test_idle_pool_keeps_ring_order(self, network):
        # Requests spaced beyond the routing horizon see a genuinely idle
        # pool and must route exactly like a queue-blind plane; disabling
        # the in-flight projection models that spacing without having to
        # drive the simulator between calls.
        prp, services = self.make_pool(network, count=4)
        queue_blind = ShardedPdpPlane.over(services, prp=prp)
        queue_aware = ShardedPdpPlane.over(services, prp=prp, queue_aware=True, routing_horizon=0.0)
        for role in ("doctor", "nurse", "clerk", "auditor"):
            request = request_with(role=role)
            assert queue_aware.endpoints(request) == queue_blind.endpoints(request)

    def test_burst_spreads_via_inflight_projection(self, network):
        # Same-instant dispatches must NOT herd onto one shard: each real
        # dispatch is projected onto its target until it becomes visible
        # in the shard's busy cursor, so a burst round-robins the pool.
        prp, services = self.make_pool(network, count=4)
        plane = ShardedPdpPlane.over(services, prp=prp, queue_aware=True)
        request = request_with()
        primaries = []
        for _ in range(8):
            primary = plane.endpoints(request)[0]
            plane.note_dispatch(primary)  # what the PEP does per send
            primaries.append(primary)
        assert len(set(primaries)) == 4  # every shard drafted into the burst

    def test_inspection_queries_never_charge_a_shard(self, network):
        # endpoints() is also called for failover re-planning and pure
        # inspection; only note_dispatch (a real send) may feed the
        # in-flight projection, or phantom routes would inflate shards
        # the PEP never actually retried.
        prp, services = self.make_pool(network, count=4)
        plane = ShardedPdpPlane.over(services, prp=prp, queue_aware=True)
        request = request_with()
        first = plane.endpoints(request)
        for _ in range(8):
            assert plane.endpoints(request) == first
        assert not plane._recent_routes

    def test_threshold_hysteresis_preserves_affinity(self, network):
        prp, services = self.make_pool(network)
        plane = ShardedPdpPlane.over(services, prp=prp, queue_aware=True, queue_threshold=1.0)
        request = request_with()
        ring_order = plane.endpoints(request)
        primary = next(s for s in services if s.address == ring_order[0])
        primary._busy_until = primary.sim.now + 0.5  # below the threshold
        assert plane.endpoints(request) == ring_order

    def test_unserialized_shards_report_idle(self, network):
        prp, services = self.make_pool(network, serialize=False)
        services[0]._busy_until = services[0].sim.now + 9.0
        assert services[0].busy_seconds() == 0.0

    def test_busy_cursor_tracks_backlog(self, network):
        prp, services = self.make_pool(network, count=1)
        service = services[0]
        assert service.busy_seconds() == 0.0
        for _ in range(3):
            service.receive(
                FakeMessage("pep@t1", service.address, "ac_request", request_with().to_dict())
            )
        assert service.busy_seconds() > 0.0
        assert service.pending_evaluations == 3
        service.sim.run(until=10.0)
        assert service.pending_evaluations == 0
        assert service.busy_seconds() == 0.0


class FakeMessage:
    def __init__(self, src, dst, kind, payload):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload


class TestLocalityRouting:
    def test_shards_place_round_robin_across_clouds(self):
        plane = ShardedPdpPlane(shards=4, locality_aware=True)
        build_stack(plane)
        assert plane.describe()["shard_clouds"] == {
            "pdp-0@infrastructure": "cloud-1",
            "pdp-1@infrastructure": "cloud-2",
            "pdp-2@infrastructure": "cloud-1",
            "pdp-3@infrastructure": "cloud-2",
        }

    def test_prefers_colocated_shard(self):
        plane = ShardedPdpPlane(shards=4, locality_aware=True)
        build_stack(plane)
        clouds = plane.describe()["shard_clouds"]
        for origin, cloud in (("tenant-1", "cloud-1"), ("tenant-2", "cloud-2")):
            for role in ("doctor", "nurse", "clerk"):
                order = plane.endpoints(request_with(role=role, origin=origin))
                assert clouds[order[0]] == cloud
                # Co-located shards first, the rest keep ring order behind.
                local = [a for a in order if clouds[a] == cloud]
                assert list(order[: len(local)]) == local

    def test_colocated_links_use_metro_latency(self):
        plane = ShardedPdpPlane(shards=2, locality_aware=True)
        stack = build_stack(plane)
        network = stack.federation.network
        pep = stack.peps["tenant-1"]
        local = network._latency_for(pep.address, "pdp-0@infrastructure")
        remote = network._latency_for(pep.address, "pdp-1@infrastructure")
        assert "2.00ms" in local.describe()
        assert local is not network.default_latency
        assert remote is network.default_latency  # cross-cloud stays WAN

    def test_added_shard_gets_wired_links_without_refinalize(self):
        # add_shard wires only the new hosts (O(hosts), not a full
        # re-finalize) yet must produce the same overrides finalize
        # would: LAN to co-tenant infra hosts, metro to the co-located
        # PEP when the plane is locality-aware.
        plane = ShardedPdpPlane(shards=2, locality_aware=True)
        stack = build_stack(plane)
        added = plane.add_shard()  # index 2 → cloud-1, same as tenant-1's PEP
        network = stack.federation.network
        lan = network._latency_for(added.address, "pdp-0@infrastructure")
        assert lan is not network.default_latency
        assert "0.30ms" in lan.describe()
        metro = network._latency_for(added.address, stack.peps["tenant-1"].address)
        assert "2.00ms" in metro.describe()
        far = network._latency_for(added.address, stack.peps["tenant-2"].address)
        assert far is network.default_latency  # cross-cloud stays WAN

    def test_locality_plane_decisions_match_plain_sharded(self):
        def run(plane):
            stack = build_stack(plane, seed=36)
            stack.issue_requests(20)
            stack.run(until=60.0)
            return sorted(
                (o.requested_at, o.decision.decision, o.decision.status_code)
                for o in stack.outcomes
            )

        plain = run(ShardedPdpPlane(shards=4))
        routed = run(ShardedPdpPlane(shards=4, locality_aware=True, queue_aware=True))
        assert plain == routed


class TestElasticScaleScenario:
    def test_scenario_registered_and_complete(self):
        scenario = elastic_scale_scenario()
        assert scenario.name == "elastic-scale"
        assert scenario.workload.arrival_rate > 2000.0
        from repro.workload.scenarios import all_scenarios

        assert [s.name for s in all_scenarios()].count("elastic-scale") == 1

    def test_single_plane_still_works_for_small_runs(self):
        stack = build_stack(SinglePdpPlane(), scenario=elastic_scale_scenario(), seed=37)
        stack.issue_requests(15)
        stack.run(until=30.0)
        assert len(stack.outcomes) == 15
