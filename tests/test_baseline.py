"""The centralized-monitor baseline: equal detection, single point of failure."""

from repro.baselines.central import attach_centralized_monitoring
from repro.drams.alerts import AlertType
from repro.harness import MonitoredFederation
from repro.workload.scenarios import healthcare_scenario


def build_baseline_stack(seed=70):
    """Unmonitored access control stack + centralized monitor."""
    stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                      seed=seed, with_drams=False)
    monitor, probes = attach_centralized_monitoring(
        stack.federation, stack.plane, stack.peps, stack.prp,
        timeout_seconds=5.0)
    monitor.start()
    return stack, monitor, probes


class TestHonestOperation:
    def test_collects_all_logs(self):
        stack, monitor, probes = build_baseline_stack()
        stack.issue_requests(10)
        stack.run(until=30.0)
        assert monitor.logs_received == 40
        assert monitor.alerts.count() == 0

    def test_checks_decisions(self):
        stack, monitor, probes = build_baseline_stack(seed=71)
        stack.issue_requests(5)
        stack.run(until=30.0)
        assert monitor.checked_decisions == 5


class TestDetection:
    def test_detects_decision_tamper(self):
        stack, monitor, probes = build_baseline_stack(seed=72)
        from repro.accesscontrol.messages import AccessDecision

        pep = stack.peps["tenant-1"]

        def force_permit(request, decision):
            forged = AccessDecision.from_dict(decision.to_dict())
            forged.decision = "Permit"
            return forged

        pep.enforcement_interceptor = force_permit
        stack.issue_requests(10)
        stack.run(until=30.0)
        assert monitor.alerts.count(AlertType.DECISION_MISMATCH) > 0

    def test_detects_missing_logs_via_sweep(self):
        stack, monitor, probes = build_baseline_stack(seed=73)
        from repro.accesscontrol.messages import AccessDecision

        pep = stack.peps["tenant-1"]
        pep.bypass = lambda request: AccessDecision(
            request_id=request.request_id, decision="Permit")
        stack.issue_requests(6)
        stack.run(until=30.0)
        assert monitor.alerts.count(AlertType.MISSING_LOG) > 0

    def test_detects_incorrect_decision(self):
        stack, monitor, probes = build_baseline_stack(seed=74)
        from repro.accesscontrol.messages import AccessDecision

        def flip(request, decision):
            forged = AccessDecision.from_dict(decision.to_dict())
            forged.decision = ("Permit" if decision.decision == "Deny"
                               else "Deny")
            return forged

        stack.pdp_service.evaluation_interceptor = flip
        stack.issue_requests(6)
        stack.run(until=30.0)
        assert monitor.alerts.count(AlertType.INCORRECT_DECISION) > 0


class TestSinglePointOfFailure:
    def test_compromise_blinds_the_monitor(self):
        stack, monitor, probes = build_baseline_stack(seed=75)
        from repro.accesscontrol.messages import AccessDecision

        pep = stack.peps["tenant-1"]

        def force_permit(request, decision):
            forged = AccessDecision.from_dict(decision.to_dict())
            forged.decision = "Permit"
            return forged

        pep.enforcement_interceptor = force_permit
        monitor.compromise()  # attacker owns the collector first
        stack.issue_requests(10)
        stack.run(until=30.0)
        # Same attack as above, zero detections, evidence discarded.
        assert monitor.alerts.count() == 0
        assert monitor.logs_discarded > 0
        assert monitor.records == {}

    def test_compromise_also_destroys_history(self):
        stack, monitor, probes = build_baseline_stack(seed=76)
        stack.issue_requests(5)
        stack.run(until=20.0)
        assert monitor.records
        monitor.compromise()
        assert monitor.records == {}  # no tamper evidence remains


class TestContrastWithDrams:
    def test_drams_survives_single_tenant_monitor_compromise(self):
        """The architectural claim: one compromised LI cannot blind DRAMS."""
        from tests.conftest import fast_drams_config

        stack = MonitoredFederation.build(
            healthcare_scenario(), clouds=2, seed=77,
            drams_config=fast_drams_config())
        stack.start()
        from repro.accesscontrol.messages import AccessDecision

        # Attacker controls tenant-1 end to end: tampers enforcement AND
        # silences that tenant's probe agent (its own logging path).
        pep = stack.peps["tenant-1"]

        def force_permit(request, decision):
            forged = AccessDecision.from_dict(decision.to_dict())
            forged.decision = "Permit"
            return forged

        pep.enforcement_interceptor = force_permit
        stack.drams.probes["pep:tenant-1"].suppressed = True
        stack.issue_requests(10)
        stack.run(until=40.0)
        # The PDP-side logs still reach the chain from the infrastructure
        # tenant, so the timeout sweep exposes the silenced PEP.
        assert stack.drams.alerts.count(AlertType.MISSING_LOG) > 0
