"""Chain validation, fork choice, state replay, difficulty schedule."""

import pytest

from repro.blockchain.chain import Blockchain, ChainValidationError
from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.blockchain.transaction import Transaction
from repro.crypto.signatures import SigningKey

MINER = "miner-1"
CLIENT = "client-1"

MINER_KEY = SigningKey.generate(MINER.encode())
CLIENT_KEY = SigningKey.generate(CLIENT.encode())
KEYS = {MINER: MINER_KEY.public, CLIENT: CLIENT_KEY.public}


def lookup(name):
    return KEYS.get(name)


def make_chain(**config_overrides) -> Blockchain:
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    defaults = dict(chain_id="t", difficulty_bits=8.0, target_block_interval=1.0,
                    retarget_window=0, pow_mode="simulated", confirmations=2)
    defaults.update(config_overrides)
    return Blockchain(BlockchainConfig(**defaults), registry, key_lookup=lookup)


def put_tx(seq, key="k", value=1) -> Transaction:
    return Transaction(sender=CLIENT, contract="kvstore", method="put",
                       args={"key": key, "value": value}, seq=seq).sign(CLIENT_KEY)


def extend(chain, txs=(), timestamp=None) -> object:
    block = chain.create_block(MINER, list(txs),
                               timestamp=timestamp if timestamp is not None
                               else chain.head.header.timestamp + 1.0,
                               signing_key=MINER_KEY)
    chain.add_block(block)
    return block


class TestBasicGrowth:
    def test_genesis_exists(self):
        chain = make_chain()
        assert chain.height == 0
        assert chain.block_count() == 1

    def test_blocks_extend_head(self):
        chain = make_chain()
        extend(chain)
        extend(chain)
        assert chain.height == 2

    def test_transactions_apply_to_state(self):
        chain = make_chain()
        extend(chain, [put_tx(1, "a", 10)])
        assert chain.state_of("kvstore")["data"] == {"a": 10}

    def test_tx_location_and_confirmations(self):
        chain = make_chain(confirmations=2)
        tx = put_tx(1)
        extend(chain, [tx])
        location = chain.tx_location(tx.tx_id)
        assert location is not None and location.height == 1
        assert chain.confirmations(tx.tx_id) == 1
        assert not chain.is_final(tx.tx_id)
        extend(chain)
        assert chain.confirmations(tx.tx_id) == 2
        assert chain.is_final(tx.tx_id)

    def test_duplicate_block_is_noop(self):
        chain = make_chain()
        block = extend(chain)
        assert chain.add_block(block) is False


class TestValidation:
    def test_unknown_parent_rejected(self):
        chain = make_chain()
        block = chain.create_block(MINER, [], 1.0, signing_key=MINER_KEY)
        block.header.prev_hash = "ff" * 32
        block.header.merkle_root = block.compute_merkle_root()
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_wrong_merkle_root_rejected(self):
        chain = make_chain()
        block = chain.create_block(MINER, [put_tx(1)], 1.0, signing_key=MINER_KEY)
        block.transactions = []
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_decreasing_timestamp_rejected(self):
        chain = make_chain()
        extend(chain, timestamp=10.0)
        block = chain.create_block(MINER, [], timestamp=5.0, signing_key=MINER_KEY)
        block.header.timestamp = 5.0  # create_block clamps; force violation
        block.header.merkle_root = block.compute_merkle_root()
        block.sign(MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_unknown_sender_rejected(self):
        chain = make_chain()
        rogue_key = SigningKey.generate(b"rogue")
        tx = Transaction(sender="rogue", contract="kvstore", method="put",
                         args={"key": "a", "value": 1}, seq=1).sign(rogue_key)
        block = chain.create_block(MINER, [tx], 1.0, signing_key=MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_bad_tx_signature_rejected(self):
        chain = make_chain()
        tx = put_tx(1)
        # Tamper after signing (copy-on-write keeps the stale signature).
        tx = tx.replace(args={**tx.args, "value": 999})
        block = chain.create_block(MINER, [tx], 1.0, signing_key=MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_unsigned_miner_rejected(self):
        chain = make_chain()
        block = chain.create_block(MINER, [], 1.0, signing_key=None)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_duplicate_tx_in_block_rejected(self):
        chain = make_chain()
        tx = put_tx(1)
        block = chain.create_block(MINER, [tx, tx], 1.0, signing_key=MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_too_many_txs_rejected(self):
        chain = make_chain(max_block_txs=1)
        txs = [put_tx(1, "a"), put_tx(2, "b")]
        block = chain.create_block(MINER, txs, 1.0, signing_key=MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_oversized_body_rejected(self):
        chain = make_chain(max_block_bytes=100)
        block = chain.create_block(MINER, [put_tx(1, "k", "x" * 500)], 1.0,
                                   signing_key=MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)

    def test_rejected_blocks_counted(self):
        chain = make_chain()
        block = chain.create_block(MINER, [], 1.0)  # unsigned
        with pytest.raises(ChainValidationError):
            chain.add_block(block)
        assert chain.rejected_blocks == 1

    def test_real_pow_mode_checks_hash(self):
        chain = make_chain(pow_mode="real", difficulty_bits=8.0)
        block = chain.create_block(MINER, [], 1.0, signing_key=MINER_KEY)
        assert chain.add_block(block)  # ground nonce passes
        bad = chain.create_block(MINER, [], 2.0, signing_key=MINER_KEY)
        bad.header.nonce = 0
        while int(bad.hash, 16) < (1 << 248):
            bad.header.nonce += 1  # find a nonce that fails the target
        bad.sign(MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(bad)


class TestReplayProtection:
    def test_same_seq_applied_once(self):
        chain = make_chain()
        extend(chain, [put_tx(1, "a", 1)])
        # A different tx with the same seq is skipped at application time.
        duplicate_seq = put_tx(1, "b", 2)
        extend(chain, [duplicate_seq])
        assert "b" not in chain.state_of("kvstore")["data"]

    def test_included_tx_not_revalidated(self):
        chain = make_chain()
        tx = put_tx(1)
        extend(chain, [tx])
        assert not chain.validate_transaction(tx)

    def test_out_of_order_seqs_all_apply(self):
        chain = make_chain()
        extend(chain, [put_tx(5, "e", 5)])
        extend(chain, [put_tx(2, "b", 2)])
        data = chain.state_of("kvstore")["data"]
        assert data == {"e": 5, "b": 2}


class TestForkChoice:
    def fork(self, chain, parent, txs=(), timestamp=None, miner=MINER):
        """Build a block on an arbitrary parent (not just the head)."""
        from repro.blockchain.block import Block, BlockHeader

        header = BlockHeader(
            height=parent.height + 1,
            prev_hash=parent.hash,
            merkle_root="",
            timestamp=timestamp if timestamp is not None
            else parent.header.timestamp + 1.0,
            difficulty_bits=chain.expected_difficulty(parent.hash),
            miner=miner,
        )
        block = Block(header=header, transactions=list(txs))
        header.merkle_root = block.compute_merkle_root()
        block.sign(MINER_KEY)
        return block

    def test_longer_branch_wins(self):
        chain = make_chain()
        genesis = chain.head
        a1 = self.fork(chain, genesis)
        chain.add_block(a1)
        b1 = self.fork(chain, genesis, timestamp=1.5)
        chain.add_block(b1)
        assert chain.head.hash == min(a1.hash, b1.hash)  # tie → lowest hash
        b2 = self.fork(chain, b1)
        chain.add_block(b2)
        assert chain.head.hash == b2.hash

    def test_reorg_replays_state(self):
        chain = make_chain()
        genesis = chain.head
        a1 = self.fork(chain, genesis, txs=[put_tx(1, "a", 1)])
        chain.add_block(a1)
        assert chain.state_of("kvstore")["data"] == {"a": 1}
        b1 = self.fork(chain, genesis, txs=[put_tx(1, "b", 2)], timestamp=1.5)
        chain.add_block(b1)
        b2 = self.fork(chain, b1, txs=[put_tx(2, "c", 3)])
        chain.add_block(b2)
        assert chain.head.hash == b2.hash
        assert chain.reorgs >= 1
        data = chain.state_of("kvstore")["data"]
        assert data == {"b": 2, "c": 3}

    def test_reorg_moves_tx_locations(self):
        chain = make_chain()
        genesis = chain.head
        tx = put_tx(1, "a", 1)
        a1 = self.fork(chain, genesis, txs=[tx])
        chain.add_block(a1)
        b1 = self.fork(chain, genesis, timestamp=1.5)
        chain.add_block(b1)
        b2 = self.fork(chain, b1)
        chain.add_block(b2)
        if chain.head.hash == b2.hash:
            assert chain.tx_location(tx.tx_id) is None

    def test_events_fire_on_newly_applied_blocks(self):
        chain = make_chain()
        seen = []
        chain.subscribe_events(lambda event, block_hash: seen.append(event.name))
        extend(chain, [put_tx(1)])
        assert seen == ["Put"]

    def test_reorg_surfaces_orphaned_txs(self):
        chain = make_chain()
        genesis = chain.head
        tx = put_tx(1, "orphan-me", 1)
        a1 = self.fork(chain, genesis, txs=[tx])
        chain.add_block(a1)
        assert chain.tx_location(tx.tx_id) is not None
        b1 = self.fork(chain, genesis, timestamp=1.5)
        chain.add_block(b1)
        b2 = self.fork(chain, b1)
        chain.add_block(b2)
        assert chain.head.hash == b2.hash
        orphans = chain.take_orphaned_txs()
        assert [o.tx_id for o in orphans] == [tx.tx_id]
        # Draining is one-shot.
        assert chain.take_orphaned_txs() == []

    def test_orphaned_tx_already_on_winning_branch_not_surfaced(self):
        chain = make_chain()
        genesis = chain.head
        tx = put_tx(1, "shared", 1)
        a1 = self.fork(chain, genesis, txs=[tx])
        chain.add_block(a1)
        b1 = self.fork(chain, genesis, txs=[tx], timestamp=1.5)
        chain.add_block(b1)
        b2 = self.fork(chain, b1)
        chain.add_block(b2)
        if chain.head.hash == b2.hash:
            assert chain.take_orphaned_txs() == []
            assert chain.tx_location(tx.tx_id) is not None


class TestConfirmationsAcrossReorgs:
    fork = TestForkChoice.fork

    def test_orphaned_tx_reports_zero_confirmations(self):
        chain = make_chain()
        genesis = chain.head
        tx = put_tx(1, "orphan-me", 1)
        a1 = self.fork(chain, genesis, txs=[tx])
        chain.add_block(a1)
        assert chain.confirmations(tx.tx_id) == 1
        b1 = self.fork(chain, genesis, timestamp=1.5)
        chain.add_block(b1)
        b2 = self.fork(chain, b1)
        chain.add_block(b2)
        assert chain.head.hash == b2.hash
        # The tx's block is off the applied branch now: no confirmations,
        # never final — regardless of any stale height bookkeeping.
        assert chain.confirmations(tx.tx_id) == 0
        assert not chain.is_final(tx.tx_id)

    def test_confirmations_consistent_for_mid_reorg_subscribers(self):
        chain = make_chain(confirmations=1)
        genesis = chain.head
        shared = put_tx(1, "shared", 1)
        a1 = self.fork(chain, genesis, txs=[shared])
        chain.add_block(a1)
        seen = []

        def on_event(event, block_hash):
            # Fires during replay of the winning branch; confirmations
            # must reflect the branch as applied so far, not the stale
            # pre-reorg head height.
            seen.append((event.name, chain.confirmations(shared.tx_id)))

        chain.subscribe_events(on_event)
        b1 = self.fork(chain, genesis, txs=[shared], timestamp=1.5)
        chain.add_block(b1)
        b2 = self.fork(chain, b1, txs=[put_tx(2, "later", 2)])
        chain.add_block(b2)
        assert chain.head.hash == b2.hash
        # The shared tx sat at height 1 when its Put replayed (1 conf),
        # and the height-2 block's event saw it one deeper.
        assert ("Put", 1) in seen
        assert ("Put", 2) in seen
        assert chain.confirmations(shared.tx_id) == 2


class TestInclusionProofs:
    def test_proof_round_trip(self):
        chain = make_chain()
        txs = [put_tx(i, f"k{i}", i) for i in range(1, 6)]
        extend(chain, txs)
        for tx in txs:
            proof, tree_size, header = (chain.inclusion_proof(tx.tx_id),
                                        len(txs), chain.head.header)
            assert proof is not None
            assert proof.leaf == tx.content_hash()
            assert proof.verify(header.merkle_root, tree_size=tree_size)

    def test_unknown_tx_has_no_proof(self):
        chain = make_chain()
        extend(chain, [put_tx(1)])
        assert chain.inclusion_proof("tx-nope") is None

    def test_orphaned_tx_has_no_proof(self):
        chain = make_chain()
        genesis = chain.head
        tx = put_tx(1, "orphan-me", 1)
        fork = TestForkChoice.fork.__get__(self)
        chain.add_block(fork(chain, genesis, txs=[tx]))
        b1 = fork(chain, genesis, timestamp=1.5)
        chain.add_block(b1)
        b2 = fork(chain, b1)
        chain.add_block(b2)
        assert chain.head.hash == b2.hash
        assert chain.tx_location(tx.tx_id) is None
        assert chain.inclusion_proof(tx.tx_id) is None


class TestHeadersAfter:
    def test_serves_headers_above_locator(self):
        chain = make_chain()
        blocks = [extend(chain) for _ in range(5)]
        headers = chain.headers_after([blocks[1].hash], limit=10)
        assert [h.height for h in headers] == [3, 4, 5]

    def test_unknown_locator_falls_back_to_genesis(self):
        chain = make_chain()
        extend(chain)
        extend(chain)
        headers = chain.headers_after(["ff" * 32], limit=10)
        assert [h.height for h in headers] == [1, 2]

    def test_limit_caps_batch(self):
        chain = make_chain()
        for _ in range(6):
            extend(chain)
        headers = chain.headers_after([], limit=2)
        assert [h.height for h in headers] == [1, 2]

    def test_first_recognised_locator_hash_wins(self):
        chain = make_chain()
        blocks = [extend(chain) for _ in range(4)]
        headers = chain.headers_after(["not-a-hash", blocks[2].hash, blocks[0].hash],
                                      limit=10)
        assert [h.height for h in headers] == [4]


class TestDifficultySchedule:
    def test_no_retarget_when_window_zero(self):
        chain = make_chain(retarget_window=0)
        for _ in range(5):
            extend(chain)
        assert chain.head.header.difficulty_bits == 8.0

    def test_retarget_raises_difficulty_for_fast_blocks(self):
        chain = make_chain(retarget_window=4, target_block_interval=10.0)
        # Blocks arrive 1s apart: 10x too fast.
        for _ in range(4):
            extend(chain)
        assert chain.head.header.difficulty_bits > 8.0

    def test_retarget_lowers_difficulty_for_slow_blocks(self):
        chain = make_chain(retarget_window=4, target_block_interval=0.1)
        for _ in range(4):
            extend(chain)
        assert chain.head.header.difficulty_bits < 8.0

    def test_wrong_difficulty_rejected(self):
        chain = make_chain()
        block = chain.create_block(MINER, [], 1.0, signing_key=MINER_KEY)
        block.header.difficulty_bits = 9.0
        block.header.merkle_root = block.compute_merkle_root()
        block.sign(MINER_KEY)
        with pytest.raises(ChainValidationError):
            chain.add_block(block)


class TestSnapshots:
    def test_deep_reorg_uses_snapshots(self):
        chain = make_chain()
        # Build a long main chain crossing the snapshot interval.
        for i in range(1, 30):
            extend(chain, [put_tx(i, f"k{i}", i)])
        assert chain.height == 29
        assert chain.state_of("kvstore")["writes"] == 29
        # Values survived the snapshot/pruning machinery.
        assert chain.state_of("kvstore")["data"]["k7"] == 7
