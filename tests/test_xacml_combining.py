"""Combining algorithms: table-driven spec cases plus algebraic properties."""

import pytest
from hypothesis import given, strategies as st

from repro.xacml.combining import (
    POLICY_COMBINING,
    RULE_COMBINING,
    adjust_for_target,
    deny_overrides,
    deny_unless_permit,
    first_applicable,
    only_one_applicable,
    permit_overrides,
    permit_unless_deny,
)
from repro.xacml.context import Decision

P = Decision.PERMIT
D = Decision.DENY
NA = Decision.NOT_APPLICABLE
I = Decision.INDETERMINATE
IP = Decision.INDETERMINATE_P
ID = Decision.INDETERMINATE_D
IDP = Decision.INDETERMINATE_DP

decisions = st.lists(st.sampled_from([P, D, NA, I, IP, ID, IDP]), max_size=8)


class TestDenyOverrides:
    @pytest.mark.parametrize("inputs,expected", [
        ([], NA),
        ([NA, NA], NA),
        ([P], P),
        ([D], D),
        ([P, D], D),
        ([D, P], D),
        ([NA, P], P),
        ([ID], ID),
        ([ID, P], IDP),
        ([ID, IP], IDP),
        ([IP], IP),
        ([IP, P], P),
        ([I, P], IDP),
        ([IDP, D], D),
    ])
    def test_spec_cases(self, inputs, expected):
        assert deny_overrides(inputs) is expected

    @given(decisions)
    def test_deny_always_wins(self, inputs):
        if D in inputs:
            assert deny_overrides(inputs) is D

    @given(decisions)
    def test_never_invents_permit(self, inputs):
        if P not in inputs:
            assert deny_overrides(inputs) is not P


class TestPermitOverrides:
    @pytest.mark.parametrize("inputs,expected", [
        ([], NA),
        ([P], P),
        ([D], D),
        ([P, D], P),
        ([NA, D], D),
        ([IP], IP),
        ([IP, D], IDP),
        ([ID], ID),
        ([ID, D], D),
        ([I, D], IDP),
    ])
    def test_spec_cases(self, inputs, expected):
        assert permit_overrides(inputs) is expected

    @given(decisions)
    def test_permit_always_wins(self, inputs):
        if P in inputs:
            assert permit_overrides(inputs) is P

    @given(decisions)
    def test_mirror_of_deny_overrides(self, inputs):
        """permit-overrides = deny-overrides with P/D (and IP/ID) swapped."""
        swap = {P: D, D: P, IP: ID, ID: IP, NA: NA, I: I, IDP: IDP}
        mirrored = [swap[d] for d in inputs]
        assert permit_overrides(inputs) is swap[deny_overrides(mirrored)]


class TestFirstApplicable:
    @pytest.mark.parametrize("inputs,expected", [
        ([], NA),
        ([NA, P, D], P),
        ([NA, D, P], D),
        ([NA, NA], NA),
        ([I, P], I),
        ([IP, D], I),
        ([P, I], P),
    ])
    def test_spec_cases(self, inputs, expected):
        assert first_applicable(inputs) is expected

    @given(decisions)
    def test_prefix_of_na_is_ignored(self, inputs):
        assert first_applicable([NA, NA] + inputs) is first_applicable(inputs)


class TestOnlyOneApplicable:
    @pytest.mark.parametrize("inputs,expected", [
        ([], NA),
        ([NA], NA),
        ([P], P),
        ([D], D),
        ([P, NA], P),
        ([P, D], I),
        ([P, P], I),
        ([I], I),
        ([NA, I], I),
    ])
    def test_spec_cases(self, inputs, expected):
        assert only_one_applicable(inputs) is expected


class TestUnlessVariants:
    @pytest.mark.parametrize("inputs,expected", [
        ([], D), ([NA], D), ([D], D), ([I], D), ([P], P), ([D, P], P),
    ])
    def test_deny_unless_permit(self, inputs, expected):
        assert deny_unless_permit(inputs) is expected

    @pytest.mark.parametrize("inputs,expected", [
        ([], P), ([NA], P), ([P], P), ([I], P), ([D], D), ([P, D], D),
    ])
    def test_permit_unless_deny(self, inputs, expected):
        assert permit_unless_deny(inputs) is expected

    @given(decisions)
    def test_unless_variants_are_total(self, inputs):
        assert deny_unless_permit(inputs) in (P, D)
        assert permit_unless_deny(inputs) in (P, D)


class TestAdjustForTarget:
    def test_mapping(self):
        assert adjust_for_target(P) is IP
        assert adjust_for_target(D) is ID
        assert adjust_for_target(NA) is NA
        assert adjust_for_target(IDP) is IDP
        assert adjust_for_target(IP) is IP


class TestRegistries:
    def test_rule_table_contents(self):
        assert set(RULE_COMBINING) == {
            "deny-overrides", "permit-overrides", "first-applicable",
            "deny-unless-permit", "permit-unless-deny"}

    def test_policy_table_adds_only_one_applicable(self):
        assert "only-one-applicable" in POLICY_COMBINING
        assert "only-one-applicable" not in RULE_COMBINING

    @given(decisions)
    def test_all_algorithms_total_and_closed(self, inputs):
        for combine in POLICY_COMBINING.values():
            assert combine(inputs) in (P, D, NA, I, IP, ID, IDP)
