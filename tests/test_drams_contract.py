"""The monitor smart contract, driven directly through the engine."""

import pytest

from repro.blockchain.contracts import (
    ContractContext,
    ContractEngine,
    ContractRegistry,
)
from repro.drams.contract import (
    CONTRACT_NAME,
    EVENT_ALERT,
    EVENT_CHURN_REPORT,
    EVENT_LOG_RECORDED,
    EVENT_VERIFIED,
    MonitorContract,
)
from repro.drams.logs import EntryType


def engine(timeout_blocks=3, retention_blocks=10) -> ContractEngine:
    registry = ContractRegistry()
    registry.deploy(MonitorContract(timeout_blocks=timeout_blocks,
                                    retention_blocks=retention_blocks))
    return ContractEngine(registry)


def ctx(height=1, tx_id="tx", sender="li@t1") -> ContractContext:
    return ContractContext(block_height=height, block_timestamp=float(height),
                           sender=sender, tx_id=tx_id)


def record(eng, corr, entry_type, payload_hash, height=1, tenant="t1",
           component="pep@t1", tx_id=None, policy=None, policy_version=0,
           with_ciphertext=None):
    args = {
        "correlation_id": corr,
        "entry_type": entry_type,
        "payload_hash": payload_hash,
        "tenant": tenant,
        "component": component,
    }
    if policy is not None:
        args["policy_fingerprint"] = policy
        args["policy_version"] = policy_version
    # Stamped entries default to carrying a ciphertext, as honest LIs do —
    # the churn downgrade requires an auditable (decryptable) claim.
    if with_ciphertext or (with_ciphertext is None and policy is not None):
        args["ciphertext"] = {"nonce": "00", "ciphertext": "00", "tag": "00"}
    return eng.execute(CONTRACT_NAME, "record_log", args,
                       ctx(height=height, tx_id=tx_id or f"tx-{entry_type}-{height}"))


def events_named(receipt, name):
    return [e for e in receipt.events if e.name == name]


class TestRecording:
    def test_log_recorded_event(self):
        eng = engine()
        receipt = record(eng, "c1", EntryType.PEP_IN, "h1")
        assert receipt.ok
        assert len(events_named(receipt, EVENT_LOG_RECORDED)) == 1

    def test_unknown_entry_type_reverts(self):
        eng = engine()
        receipt = eng.execute(CONTRACT_NAME, "record_log", {
            "correlation_id": "c", "entry_type": "weird",
            "payload_hash": "h", "tenant": "t", "component": "x"}, ctx())
        assert not receipt.ok

    def test_missing_argument_reverts(self):
        eng = engine()
        receipt = eng.execute(CONTRACT_NAME, "record_log",
                              {"correlation_id": "c"}, ctx())
        assert not receipt.ok

    def test_unknown_method_reverts(self):
        eng = engine()
        assert not eng.execute(CONTRACT_NAME, "selfdestruct", {}, ctx()).ok

    def test_duplicate_same_hash_is_idempotent(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "h1")
        receipt = record(eng, "c1", EntryType.PEP_IN, "h1", height=2)
        assert receipt.ok and receipt.result.get("duplicate")
        assert eng.state_of(CONTRACT_NAME)["stats"]["logs"] == 1


class TestMatching:
    def test_matching_request_leg_no_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "same")
        receipt = record(eng, "c1", EntryType.PDP_IN, "same")
        assert events_named(receipt, EVENT_ALERT) == []

    def test_request_mismatch_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "original")
        receipt = record(eng, "c1", EntryType.PDP_IN, "tampered")
        alerts = events_named(receipt, EVENT_ALERT)
        assert len(alerts) == 1
        assert alerts[0].payload["alert_type"] == "request-mismatch"

    def test_decision_mismatch_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "deny-hash")
        receipt = record(eng, "c1", EntryType.PEP_OUT, "permit-hash")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "decision-mismatch"

    def test_mismatch_alert_fires_once(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "a")
        record(eng, "c1", EntryType.PDP_IN, "b")
        # Arrival of the decision leg must not re-raise the request alert.
        receipt = record(eng, "c1", EntryType.PDP_OUT, "d")
        assert all(e.payload["alert_type"] != "request-mismatch"
                   for e in events_named(receipt, EVENT_ALERT))

    def test_clean_flow_verifies(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "req")
        record(eng, "c1", EntryType.PDP_IN, "req")
        record(eng, "c1", EntryType.PDP_OUT, "dec")
        receipt = record(eng, "c1", EntryType.PEP_OUT, "dec")
        assert len(events_named(receipt, EVENT_VERIFIED)) == 1
        assert eng.state_of(CONTRACT_NAME)["stats"]["verified"] == 1

    def test_mismatched_flow_never_verifies(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "req")
        record(eng, "c1", EntryType.PDP_IN, "req")
        record(eng, "c1", EntryType.PDP_OUT, "dec")
        receipt = record(eng, "c1", EntryType.PEP_OUT, "other")
        assert events_named(receipt, EVENT_VERIFIED) == []

    def test_equivocation_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "first")
        receipt = record(eng, "c1", EntryType.PEP_IN, "second")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"
        assert alerts[0].payload["details"]["first_hash"] == "first"


class TestTimeouts:
    def test_incomplete_record_flagged_after_timeout(self):
        eng = engine(timeout_blocks=3)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=4))
        alerts = events_named(receipt, EVENT_ALERT)
        assert len(alerts) == 1
        assert alerts[0].payload["alert_type"] == "missing-log"
        missing = alerts[0].payload["details"]["missing"]
        assert EntryType.PDP_IN in missing and EntryType.PEP_OUT in missing

    def test_no_flag_before_timeout(self):
        eng = engine(timeout_blocks=5)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=3))
        assert events_named(receipt, EVENT_ALERT) == []

    def test_complete_record_not_flagged(self):
        eng = engine(timeout_blocks=1)
        for entry_type in EntryType.ALL:
            record(eng, "c1", entry_type, "same" if entry_type in
                   EntryType.REQUEST_LEG else "dec", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=10))
        assert events_named(receipt, EVENT_ALERT) == []

    def test_missing_log_alert_fires_once(self):
        eng = engine(timeout_blocks=1)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        first = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=5))
        second = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=6))
        assert len(events_named(first, EVENT_ALERT)) == 1
        assert events_named(second, EVENT_ALERT) == []

    def test_retention_prunes_completed_records(self):
        eng = engine(timeout_blocks=2, retention_blocks=5)
        for entry_type in EntryType.ALL:
            record(eng, "c1", entry_type,
                   "req" if entry_type in EntryType.REQUEST_LEG else "dec",
                   height=1)
        assert "c1" in eng.state_of(CONTRACT_NAME)["records"]
        eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=20))
        assert "c1" not in eng.state_of(CONTRACT_NAME)["records"]
        assert eng.state_of(CONTRACT_NAME)["stats"]["pruned"] == 1

    def test_tick_reports_counts(self):
        eng = engine(timeout_blocks=1)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        record(eng, "c2", EntryType.PDP_IN, "h", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=5))
        assert receipt.result["flagged"] == 2


class TestViolationReports:
    def test_report_violation_emits_alert(self):
        eng = engine()
        receipt = eng.execute(CONTRACT_NAME, "report_violation", {
            "correlation_id": "c1",
            "kind": "incorrect-decision",
            "details": {"expected": "Deny", "observed": "Permit"},
        }, ctx(sender="analyser@infra"))
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "incorrect-decision"
        assert alerts[0].payload["details"]["reported_by"] == "analyser@infra"

    def test_duplicate_violation_not_re_alerted(self):
        eng = engine()
        args = {"correlation_id": "c1", "kind": "incorrect-decision",
                "details": {}}
        eng.execute(CONTRACT_NAME, "report_violation", args,
                    ctx(tx_id="t1"))
        receipt = eng.execute(CONTRACT_NAME, "report_violation", args,
                              ctx(tx_id="t2"))
        assert events_named(receipt, EVENT_ALERT) == []

    def test_violation_on_unknown_correlation_creates_record(self):
        eng = engine()
        eng.execute(CONTRACT_NAME, "report_violation", {
            "correlation_id": "ghost", "kind": "incorrect-decision",
            "details": {}}, ctx())
        assert "ghost" in eng.state_of(CONTRACT_NAME)["records"]


class TestConfig:
    def test_bad_timeout_rejected(self):
        with pytest.raises(Exception):
            MonitorContract(timeout_blocks=0)

    def test_ciphertext_storage_optional(self):
        registry = ContractRegistry()
        registry.deploy(MonitorContract(store_ciphertexts=False))
        eng = ContractEngine(registry)
        eng.execute(CONTRACT_NAME, "record_log", {
            "correlation_id": "c", "entry_type": EntryType.PEP_IN,
            "payload_hash": "h", "tenant": "t", "component": "x",
            "ciphertext": {"nonce": "00", "ciphertext": "00", "tag": "00"},
        }, ctx())
        entry = eng.state_of(CONTRACT_NAME)["records"]["c"]["entries"][EntryType.PEP_IN]
        assert "ciphertext" not in entry


class TestPolicyChurnClassification:
    def test_conflicting_pdp_out_with_different_fingerprints_is_churn(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-v1", policy="fp-v1",
               policy_version=1)
        receipt = record(eng, "c1", EntryType.PDP_OUT, "hash-v2",
                         policy="fp-v2", policy_version=2, height=2)
        assert receipt.result.get("policy_churn")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "policy-churn"
        details = alerts[0].payload["details"]
        assert details["first_fingerprint"] == "fp-v1"
        assert details["second_fingerprint"] == "fp-v2"

    def test_conflicting_pdp_out_with_same_fingerprint_is_equivocation(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-a", policy="fp-v1")
        receipt = record(eng, "c1", EntryType.PDP_OUT, "hash-b",
                         policy="fp-v1", height=2)
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"

    def test_unstamped_conflict_stays_equivocation(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "first")
        receipt = record(eng, "c1", EntryType.PEP_IN, "second", height=2)
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"

    def test_decision_leg_mismatch_across_versions_is_churn(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "decision-v2", policy="fp-v2",
               policy_version=2)
        receipt = record(eng, "c1", EntryType.PEP_OUT, "decision-v1",
                         policy="fp-v1", policy_version=1, height=2)
        alerts = events_named(receipt, EVENT_ALERT)
        assert len(alerts) == 1
        assert alerts[0].payload["alert_type"] == "policy-churn"
        assert alerts[0].payload["details"]["leg"] == [EntryType.PDP_OUT,
                                                       EntryType.PEP_OUT]

    def test_decision_leg_mismatch_same_version_stays_mismatch(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "deny-hash", policy="fp-v1")
        receipt = record(eng, "c1", EntryType.PEP_OUT, "permit-hash",
                         policy="fp-v1", height=2)
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "decision-mismatch"


class TestSweepIndex:
    def complete(self, eng, corr, height=1):
        for entry_type in EntryType.ALL:
            record(eng, corr, entry_type,
                   "req" if entry_type in EntryType.REQUEST_LEG else "dec",
                   height=height)

    def test_tick_scans_only_pending_records(self):
        eng = engine(timeout_blocks=3, retention_blocks=0)
        for index in range(50):
            self.complete(eng, f"done-{index}")
        record(eng, "open-1", EntryType.PEP_IN, "h")
        record(eng, "open-2", EntryType.PEP_IN, "h")
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=2))
        # 52 records exist, but the sweep walked only the 2 open ones.
        assert len(eng.state_of(CONTRACT_NAME)["records"]) == 52
        assert receipt.result["scanned"] == 2

    def test_sweep_cost_scales_with_pending_not_with_history(self):
        eng = engine(timeout_blocks=100, retention_blocks=0)
        record(eng, "open", EntryType.PEP_IN, "h")
        scans = []
        for round_index in range(4):
            for index in range(25):
                self.complete(eng, f"batch-{round_index}-{index}")
            receipt = eng.execute(CONTRACT_NAME, "tick", {},
                                  ctx(height=2, tx_id=f"tick-{round_index}"))
            scans.append(receipt.result["scanned"])
        # History grew by 100 verified records; the sweep never did.
        assert scans == [1, 1, 1, 1]

    def test_flagged_records_leave_the_pending_index(self):
        eng = engine(timeout_blocks=2)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        first = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=5))
        assert first.result["flagged"] == 1
        second = eng.execute(CONTRACT_NAME, "tick", {},
                             ctx(height=6, tx_id="tick-2"))
        assert second.result["scanned"] == 0

    def test_retention_pruning_pops_the_retained_prefix(self):
        eng = engine(timeout_blocks=2, retention_blocks=5)
        self.complete(eng, "old", height=1)
        self.complete(eng, "young", height=8)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=10))
        state = eng.state_of(CONTRACT_NAME)
        assert receipt.result["pruned"] == 1
        assert "old" not in state["records"]
        assert "young" in state["records"]
        assert list(state["retained"]) == ["young"]

    def test_same_declared_version_different_fingerprints_is_equivocation(self):
        # Honestly impossible: one version number, two documents.  A
        # tamperer must not be able to buy the churn downgrade this way.
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-a", policy="fp-a",
               policy_version=3)
        receipt = record(eng, "c1", EntryType.PDP_OUT, "hash-b",
                         policy="fp-b", policy_version=3, height=2)
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"

    def test_churn_keeps_the_conflicting_report_for_audit(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-v1", policy="fp-v1",
               policy_version=1)
        eng.execute(CONTRACT_NAME, "record_log", {
            "correlation_id": "c1", "entry_type": EntryType.PDP_OUT,
            "payload_hash": "hash-v2", "tenant": "t1", "component": "pdp-1",
            "policy_fingerprint": "fp-v2", "policy_version": 2,
            "ciphertext": {"nonce": "00", "ciphertext": "00", "tag": "00"},
        }, ctx(height=2, tx_id="conflict"))
        reports = eng.state_of(CONTRACT_NAME)["records"]["c1"]["churn_reports"]
        assert len(reports) == 1
        assert reports[0]["policy_fingerprint"] == "fp-v2"
        assert reports[0]["component"] == "pdp-1"
        assert "ciphertext" in reports[0]

    def test_every_churn_claim_is_announced_even_after_the_alert_deduped(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-v1", policy="fp-v1",
               policy_version=1)
        first = record(eng, "c1", EntryType.PDP_OUT, "hash-v2",
                       policy="fp-v2", policy_version=2, height=2)
        second = record(eng, "c1", EntryType.PDP_OUT, "hash-v3",
                        policy="fp-v3", policy_version=3, height=3)
        # One deduplicated alert, but one audit announcement per claim.
        assert len(events_named(first, EVENT_ALERT)) == 1
        assert events_named(second, EVENT_ALERT) == []
        assert len(events_named(first, EVENT_CHURN_REPORT)) == 1
        assert len(events_named(second, EVENT_CHURN_REPORT)) == 1
        reports = eng.state_of(CONTRACT_NAME)["records"]["c1"]["churn_reports"]
        assert [r["policy_fingerprint"] for r in reports] == ["fp-v2", "fp-v3"]

    def test_churn_report_overflow_degrades_to_equivocation(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-v1", policy="fp-v1",
               policy_version=1)
        cap = MonitorContract.MAX_CHURN_REPORTS
        for index in range(cap):
            record(eng, "c1", EntryType.PDP_OUT, f"hash-{index}",
                   policy=f"fp-{index}", policy_version=10 + index,
                   height=2 + index, tx_id=f"conflict-{index}")
        receipt = record(eng, "c1", EntryType.PDP_OUT, "hash-flood",
                         policy="fp-flood", policy_version=99, height=50,
                         tx_id="flood")
        assert receipt.result.get("equivocation")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"
        assert alerts[0].payload["details"]["reason"] == "churn-report-overflow"

    def test_without_ciphertexts_conflicts_stay_equivocation(self):
        # No stored ciphertexts -> the Analyser could never audit a churn
        # claim, so the downgrade must not be offered at all.
        registry = ContractRegistry()
        registry.deploy(MonitorContract(store_ciphertexts=False))
        eng = ContractEngine(registry)

        def stamped(tx_id, payload_hash, fp, version, entry_type):
            return eng.execute(CONTRACT_NAME, "record_log", {
                "correlation_id": "c1", "entry_type": entry_type,
                "payload_hash": payload_hash, "tenant": "t1",
                "component": "pdp", "policy_fingerprint": fp,
                "policy_version": version,
            }, ctx(tx_id=tx_id))

        stamped("t1", "hash-v1", "fp-v1", 1, EntryType.PDP_OUT)
        receipt = stamped("t2", "hash-v2", "fp-v2", 2, EntryType.PDP_OUT)
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"
        leg = stamped("t3", "hash-v3", "fp-v3", 3, EntryType.PEP_OUT)
        leg_alerts = events_named(leg, EVENT_ALERT)
        assert [a.payload["alert_type"] for a in leg_alerts] == [
            "decision-mismatch"]

    def test_identical_republish_with_same_fingerprint_is_still_churn(self):
        # A rollback republishes an earlier document: new version number,
        # same content hash.  Honest replicas racing it must not read as
        # equivocation.
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-v1", policy="fp-same",
               policy_version=1)
        receipt = record(eng, "c1", EntryType.PDP_OUT, "hash-v2",
                         policy="fp-same", policy_version=2, height=2)
        assert receipt.result.get("policy_churn")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "policy-churn"

    def test_conflicting_report_without_ciphertext_is_equivocation(self):
        # An unauditable claim buys no downgrade: without a ciphertext the
        # Analyser could never verify it.
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-v1", policy="fp-v1",
               policy_version=1)
        receipt = record(eng, "c1", EntryType.PDP_OUT, "hash-v2",
                         policy="fp-v2", policy_version=2, height=2,
                         with_ciphertext=False)
        assert receipt.result.get("equivocation")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"

    def test_leg_churn_is_announced_even_when_the_alert_was_consumed(self):
        # A prior conflicting pdp-out consumed the record's one
        # policy-churn alert; the later leg-churn claim must still be
        # announced for audit (and must not be silently dropped).
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "hash-v1", policy="fp-v1",
               policy_version=1)
        record(eng, "c1", EntryType.PDP_OUT, "hash-v2", policy="fp-v2",
               policy_version=2, height=2)  # consumes the churn alert
        receipt = record(eng, "c1", EntryType.PEP_OUT, "hash-v7",
                         policy="fp-v7", policy_version=7, height=3)
        assert events_named(receipt, EVENT_ALERT) == []  # alert deduped
        assert len(events_named(receipt, EVENT_CHURN_REPORT)) == 1
