"""The monitor smart contract, driven directly through the engine."""

import pytest

from repro.blockchain.contracts import (
    ContractContext,
    ContractEngine,
    ContractRegistry,
)
from repro.drams.contract import (
    CONTRACT_NAME,
    EVENT_ALERT,
    EVENT_LOG_RECORDED,
    EVENT_VERIFIED,
    MonitorContract,
)
from repro.drams.logs import EntryType


def engine(timeout_blocks=3, retention_blocks=10) -> ContractEngine:
    registry = ContractRegistry()
    registry.deploy(MonitorContract(timeout_blocks=timeout_blocks,
                                    retention_blocks=retention_blocks))
    return ContractEngine(registry)


def ctx(height=1, tx_id="tx", sender="li@t1") -> ContractContext:
    return ContractContext(block_height=height, block_timestamp=float(height),
                           sender=sender, tx_id=tx_id)


def record(eng, corr, entry_type, payload_hash, height=1, tenant="t1",
           component="pep@t1", tx_id=None):
    return eng.execute(CONTRACT_NAME, "record_log", {
        "correlation_id": corr,
        "entry_type": entry_type,
        "payload_hash": payload_hash,
        "tenant": tenant,
        "component": component,
    }, ctx(height=height, tx_id=tx_id or f"tx-{entry_type}-{height}"))


def events_named(receipt, name):
    return [e for e in receipt.events if e.name == name]


class TestRecording:
    def test_log_recorded_event(self):
        eng = engine()
        receipt = record(eng, "c1", EntryType.PEP_IN, "h1")
        assert receipt.ok
        assert len(events_named(receipt, EVENT_LOG_RECORDED)) == 1

    def test_unknown_entry_type_reverts(self):
        eng = engine()
        receipt = eng.execute(CONTRACT_NAME, "record_log", {
            "correlation_id": "c", "entry_type": "weird",
            "payload_hash": "h", "tenant": "t", "component": "x"}, ctx())
        assert not receipt.ok

    def test_missing_argument_reverts(self):
        eng = engine()
        receipt = eng.execute(CONTRACT_NAME, "record_log",
                              {"correlation_id": "c"}, ctx())
        assert not receipt.ok

    def test_unknown_method_reverts(self):
        eng = engine()
        assert not eng.execute(CONTRACT_NAME, "selfdestruct", {}, ctx()).ok

    def test_duplicate_same_hash_is_idempotent(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "h1")
        receipt = record(eng, "c1", EntryType.PEP_IN, "h1", height=2)
        assert receipt.ok and receipt.result.get("duplicate")
        assert eng.state_of(CONTRACT_NAME)["stats"]["logs"] == 1


class TestMatching:
    def test_matching_request_leg_no_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "same")
        receipt = record(eng, "c1", EntryType.PDP_IN, "same")
        assert events_named(receipt, EVENT_ALERT) == []

    def test_request_mismatch_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "original")
        receipt = record(eng, "c1", EntryType.PDP_IN, "tampered")
        alerts = events_named(receipt, EVENT_ALERT)
        assert len(alerts) == 1
        assert alerts[0].payload["alert_type"] == "request-mismatch"

    def test_decision_mismatch_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PDP_OUT, "deny-hash")
        receipt = record(eng, "c1", EntryType.PEP_OUT, "permit-hash")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "decision-mismatch"

    def test_mismatch_alert_fires_once(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "a")
        record(eng, "c1", EntryType.PDP_IN, "b")
        # Arrival of the decision leg must not re-raise the request alert.
        receipt = record(eng, "c1", EntryType.PDP_OUT, "d")
        assert all(e.payload["alert_type"] != "request-mismatch"
                   for e in events_named(receipt, EVENT_ALERT))

    def test_clean_flow_verifies(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "req")
        record(eng, "c1", EntryType.PDP_IN, "req")
        record(eng, "c1", EntryType.PDP_OUT, "dec")
        receipt = record(eng, "c1", EntryType.PEP_OUT, "dec")
        assert len(events_named(receipt, EVENT_VERIFIED)) == 1
        assert eng.state_of(CONTRACT_NAME)["stats"]["verified"] == 1

    def test_mismatched_flow_never_verifies(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "req")
        record(eng, "c1", EntryType.PDP_IN, "req")
        record(eng, "c1", EntryType.PDP_OUT, "dec")
        receipt = record(eng, "c1", EntryType.PEP_OUT, "other")
        assert events_named(receipt, EVENT_VERIFIED) == []

    def test_equivocation_alert(self):
        eng = engine()
        record(eng, "c1", EntryType.PEP_IN, "first")
        receipt = record(eng, "c1", EntryType.PEP_IN, "second")
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "equivocation"
        assert alerts[0].payload["details"]["first_hash"] == "first"


class TestTimeouts:
    def test_incomplete_record_flagged_after_timeout(self):
        eng = engine(timeout_blocks=3)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=4))
        alerts = events_named(receipt, EVENT_ALERT)
        assert len(alerts) == 1
        assert alerts[0].payload["alert_type"] == "missing-log"
        missing = alerts[0].payload["details"]["missing"]
        assert EntryType.PDP_IN in missing and EntryType.PEP_OUT in missing

    def test_no_flag_before_timeout(self):
        eng = engine(timeout_blocks=5)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=3))
        assert events_named(receipt, EVENT_ALERT) == []

    def test_complete_record_not_flagged(self):
        eng = engine(timeout_blocks=1)
        for entry_type in EntryType.ALL:
            record(eng, "c1", entry_type, "same" if entry_type in
                   EntryType.REQUEST_LEG else "dec", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=10))
        assert events_named(receipt, EVENT_ALERT) == []

    def test_missing_log_alert_fires_once(self):
        eng = engine(timeout_blocks=1)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        first = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=5))
        second = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=6))
        assert len(events_named(first, EVENT_ALERT)) == 1
        assert events_named(second, EVENT_ALERT) == []

    def test_retention_prunes_completed_records(self):
        eng = engine(timeout_blocks=2, retention_blocks=5)
        for entry_type in EntryType.ALL:
            record(eng, "c1", entry_type,
                   "req" if entry_type in EntryType.REQUEST_LEG else "dec",
                   height=1)
        assert "c1" in eng.state_of(CONTRACT_NAME)["records"]
        eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=20))
        assert "c1" not in eng.state_of(CONTRACT_NAME)["records"]
        assert eng.state_of(CONTRACT_NAME)["stats"]["pruned"] == 1

    def test_tick_reports_counts(self):
        eng = engine(timeout_blocks=1)
        record(eng, "c1", EntryType.PEP_IN, "h", height=1)
        record(eng, "c2", EntryType.PDP_IN, "h", height=1)
        receipt = eng.execute(CONTRACT_NAME, "tick", {}, ctx(height=5))
        assert receipt.result["flagged"] == 2


class TestViolationReports:
    def test_report_violation_emits_alert(self):
        eng = engine()
        receipt = eng.execute(CONTRACT_NAME, "report_violation", {
            "correlation_id": "c1",
            "kind": "incorrect-decision",
            "details": {"expected": "Deny", "observed": "Permit"},
        }, ctx(sender="analyser@infra"))
        alerts = events_named(receipt, EVENT_ALERT)
        assert alerts[0].payload["alert_type"] == "incorrect-decision"
        assert alerts[0].payload["details"]["reported_by"] == "analyser@infra"

    def test_duplicate_violation_not_re_alerted(self):
        eng = engine()
        args = {"correlation_id": "c1", "kind": "incorrect-decision",
                "details": {}}
        eng.execute(CONTRACT_NAME, "report_violation", args,
                    ctx(tx_id="t1"))
        receipt = eng.execute(CONTRACT_NAME, "report_violation", args,
                              ctx(tx_id="t2"))
        assert events_named(receipt, EVENT_ALERT) == []

    def test_violation_on_unknown_correlation_creates_record(self):
        eng = engine()
        eng.execute(CONTRACT_NAME, "report_violation", {
            "correlation_id": "ghost", "kind": "incorrect-decision",
            "details": {}}, ctx())
        assert "ghost" in eng.state_of(CONTRACT_NAME)["records"]


class TestConfig:
    def test_bad_timeout_rejected(self):
        with pytest.raises(Exception):
            MonitorContract(timeout_blocks=0)

    def test_ciphertext_storage_optional(self):
        registry = ContractRegistry()
        registry.deploy(MonitorContract(store_ciphertexts=False))
        eng = ContractEngine(registry)
        eng.execute(CONTRACT_NAME, "record_log", {
            "correlation_id": "c", "entry_type": EntryType.PEP_IN,
            "payload_hash": "h", "tenant": "t", "component": "x",
            "ciphertext": {"nonce": "00", "ciphertext": "00", "tag": "00"},
        }, ctx())
        entry = eng.state_of(CONTRACT_NAME)["records"]["c"]["entries"][EntryType.PEP_IN]
        assert "ciphertext" not in entry
