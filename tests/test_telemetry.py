"""Telemetry plane: tracing, metrics registry, critical paths, failure paths.

The failure-path tests pin the PR's hygiene contract: spans close exactly
once across PEP failover/retry, shard crashes (epoch fence) and
``dropped_dead`` messages — ``double_closes`` and ``orphan_closes`` stay
at zero, and nothing is left open after a run completes.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.accesscontrol.plane import ShardedPdpPlane
from repro.common.errors import ValidationError
from repro.common.ids import reset_id_counter
from repro.crypto.hashing import hash_value
from repro.harness import MonitoredFederation
from repro.simnet.network import Host
from repro.telemetry import (
    CriticalPathAnalyser,
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.workload.scenarios import healthcare_scenario
from tests.conftest import fast_drams_config


# -- metrics registry ---------------------------------------------------------------


def test_counter_labels_and_monotonicity():
    registry = MetricsRegistry()
    counter = registry.counter("decisions", "by decision")
    counter.inc(decision="Permit")
    counter.inc(2, decision="Permit")
    counter.inc(decision="Deny")
    assert counter.value(decision="Permit") == 3
    assert counter.snapshot() == {"decision=Deny": 1.0, "decision=Permit": 3.0}
    with pytest.raises(ValidationError):
        counter.inc(-1)


def test_gauge_and_kind_conflict():
    registry = MetricsRegistry()
    gauge = registry.gauge("queue_depth")
    gauge.set(4, shard="pdp-0")
    gauge.set(2, shard="pdp-0")
    assert gauge.value(shard="pdp-0") == 2
    assert registry.gauge("queue_depth") is gauge
    with pytest.raises(ValidationError):
        registry.counter("queue_depth")


def test_histogram_summary_and_window():
    registry = MetricsRegistry()
    hist = registry.histogram("latency")
    for i, value in enumerate([0.1, 0.2, 0.3, 0.4]):
        hist.observe(value, at=float(i))
    assert hist.count() == 4
    assert hist.summary().maximum == pytest.approx(0.4)
    windowed = hist.windowed(since=2.0)
    assert windowed.count == 2
    assert windowed.p50 == pytest.approx(0.35)
    assert hist.windowed(since=100.0) is None
    snap = hist.snapshot(window=(1.0, 2.0))
    assert snap["latency"]["n"] == 2


def test_registry_snapshot_includes_collectors():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.register_collector("net", lambda: {"sent": 7})
    tree = registry.snapshot()
    assert tree["collected"]["net"] == {"sent": 7}
    assert tree["counters"]["c"] == {"total": 1.0}
    assert registry.collector_names() == ["net"]


# -- tracer core --------------------------------------------------------------------


def test_span_parenting_follows_activation(sim):
    tracer = Tracer(sim)
    root = tracer.begin("root", "comp", parent=None, trace_id="t1")
    with tracer.activate(root.context):
        child = tracer.begin("child", "comp")
    orphan = tracer.begin("orphan", "comp", parent=None)
    assert child.trace_id == "t1" and child.parent_id == root.span_id
    assert orphan.parent_id is None and orphan.trace_id.startswith("t-")
    tracer.end(child)
    tracer.end(root, "Permit")
    assert root.status == "Permit" and root.closed
    # Double close is counted, never applied.
    tracer.end(root, "again")
    assert root.status == "Permit"
    assert tracer.recorder.double_closes == 1


def test_keyed_spans_idempotent_and_strict_orphans(sim):
    tracer = Tracer(sim)
    first = tracer.open_span(("k", 1), "work", "comp", parent=None)
    again = tracer.open_span(("k", 1), "work", "comp", parent=None)
    assert first is again and tracer.reopened == 1
    assert tracer.close_span(("k", 1), "ok")
    assert not tracer.close_span(("k", 1), "ok")  # strict: counted
    assert tracer.orphan_closes == 1
    assert not tracer.close_span(("absent",), "ok", strict=False)
    assert tracer.orphan_closes == 1  # non-strict: silent


def test_close_prefixed_and_flush(sim):
    tracer = Tracer(sim)
    tracer.open_span(("pdp", "a", 1), "eval", "a", parent=None)
    tracer.open_span(("pdp", "a", 2), "eval", "a", parent=None)
    tracer.open_span(("pdp", "b", 1), "eval", "b", parent=None)
    assert tracer.close_prefixed(("pdp", "a"), "crashed") == 2
    assert [s.status for s in tracer.recorder.spans].count("crashed") == 2
    leftover = tracer.begin("dangling", "c", parent=None)
    assert tracer.flush() >= 1
    assert leftover.status == "unfinished"
    stats = tracer.stats()
    assert stats["open"] == 0 and stats["keyed_open"] == 0


def test_correlation_binding_first_writer_wins(sim):
    tracer = Tracer(sim)
    a = tracer.begin("a", "c", parent=None, trace_id="t1")
    b = tracer.begin("b", "c", parent=None, trace_id="t2")
    tracer.bind_correlation("corr", a.context)
    tracer.bind_correlation("corr", b.context)
    assert tracer.context_for("corr") == a.context
    assert tracer.context_for("other") is None


# -- critical-path analyser ----------------------------------------------------------


def _span(name, span_id, parent, start, end, seq, trace="t"):
    return Span(name=name, trace_id=trace, span_id=span_id, parent_id=parent,
                component="c", category="request", start=start, seq=seq,
                end=end, status="ok")


def test_attribution_deepest_span_wins_and_gaps_are_wait():
    spans = [
        _span("pep.request", "s1", None, 0.0, 10.0, 1),
        _span("pdp.evaluate", "s2", "s1", 1.0, 4.0, 2),
        _span("chain.commit", "s3", "s1", 4.0, 9.0, 3),
        _span("analyser.audit", "s4", None, 12.0, 15.0, 4),
    ]
    paths = CriticalPathAnalyser(spans)
    shares = paths.attribution("t")
    assert shares["pdp.evaluate"] == pytest.approx(3.0)
    assert shares["chain.commit"] == pytest.approx(5.0)
    assert shares["pep.request"] == pytest.approx(2.0)  # 0-1 and 9-10
    assert shares["analyser.audit"] == pytest.approx(3.0)
    assert shares["wait"] == pytest.approx(2.0)  # 10-12: nothing active
    assert sum(shares.values()) == pytest.approx(15.0)
    assert paths.decision_traces() == ["t"]
    rows = paths.attribution_table(fractions=(0.5,))
    assert rows[0]["percentile"] == "p50" and rows[0]["total_s"] == 15.0


def test_open_spans_excluded_everywhere():
    closed = _span("a", "s1", None, 0.0, 1.0, 1)
    open_span = _span("b", "s2", None, 0.5, None, 2)
    open_span.status = "open"
    paths = CriticalPathAnalyser([closed, open_span])
    assert paths.attribution("t") == {"a": 1.0}
    trace = chrome_trace([closed.to_dict(), open_span.to_dict()])
    assert len([e for e in trace["traceEvents"] if e["ph"] == "X"]) == 1


# -- exporters ----------------------------------------------------------------------


def test_chrome_trace_shape_and_validation(sim):
    tracer = Tracer(sim)
    root = tracer.begin("pep.request", "pep@a", parent=None, trace_id="req-1")
    with tracer.activate(root.context):
        child = tracer.begin("pdp.evaluate", "pdp@infra")
    tracer.end(child)
    tracer.end(root)
    document = tracer.recorder.to_chrome()
    assert validate_chrome_trace(document) == []
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"pep.request", "pdp.evaluate"}
    by_name = {e["name"]: e for e in complete}
    # Same trace → same tid; different components → different pids.
    assert by_name["pep.request"]["tid"] == by_name["pdp.evaluate"]["tid"]
    assert by_name["pep.request"]["pid"] != by_name["pdp.evaluate"]["pid"]
    assert by_name["pdp.evaluate"]["args"]["parent_id"] == root.span_id
    assert validate_chrome_trace({}) == ["missing traceEvents list"]
    assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})


def test_trace2chrome_selfcheck_passes():
    path = (pathlib.Path(__file__).parent.parent / "tools"
            / "trace2chrome.py")
    spec = importlib.util.spec_from_file_location("trace2chrome", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.selfcheck() == 0
    doc = module.convert(
        {"format": "repro-spans/v1",
         "spans": [_span("x", "s1", None, 0.0, 1.0, 1).to_dict()]})
    assert validate_chrome_trace(doc) == []
    with pytest.raises(SystemExit):
        module.convert({"format": "something-else", "spans": []})


# -- message propagation -------------------------------------------------------------


class _Sink(Host):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.seen_contexts = []

    def receive(self, message):
        self.seen_contexts.append(self.network.telemetry.current)


def test_context_rides_messages_and_activates_on_delivery(sim, network):
    tracer = Tracer(sim)
    network.telemetry = tracer
    _Sink(network, "a")
    sink = _Sink(network, "b")
    span = tracer.begin("root", "a", parent=None, trace_id="t1")
    with tracer.activate(span.context):
        message = network.send("a", "b", "ping", {})
    assert message.trace == span.context
    untraced = network.send("a", "b", "ping", {})
    assert untraced.trace is None
    sim.run(until=1.0)
    assert sink.seen_contexts == [span.context, None]


def test_dropped_dead_leaves_instant_on_the_trace(sim, network):
    tracer = Tracer(sim)
    network.telemetry = tracer
    _Sink(network, "a")
    _Sink(network, "b")
    span = tracer.begin("root", "a", parent=None, trace_id="t1")
    with tracer.activate(span.context):
        network.send("a", "b", "ping", {})
    network.detach("b")  # dies with the message in flight
    sim.run(until=1.0)
    assert network.stats.dropped_dead == 1
    markers = [s for s in tracer.recorder.spans if s.name == "net.dropped_dead"]
    assert len(markers) == 1
    assert markers[0].trace_id == "t1"
    assert markers[0].attrs["kind"] == "ping"


# -- full-stack integration ----------------------------------------------------------


def _fingerprint(stack):
    decisions = sorted(
        (round(o.requested_at, 9), hash_value(o.request.content),
         o.decision.decision, o.decision.status_code)
        for o in stack.outcomes)
    return decisions, stack.drams.reference_chain().head.hash


def _build(telemetry, **kwargs):
    reset_id_counter()
    stack = MonitoredFederation.build(
        healthcare_scenario(), seed=13,
        drams_config=fast_drams_config(), telemetry=telemetry, **kwargs)
    stack.start()
    return stack


def test_telemetry_attach_is_bit_identical():
    bare = _build(telemetry=False)
    bare.issue_requests(8)
    bare.run(until=30.0)
    traced = _build(telemetry=True)
    traced.issue_requests(8)
    traced.run(until=30.0)
    assert _fingerprint(traced) == _fingerprint(bare)


def test_stack_telemetry_snapshot_and_run_summary():
    stack = _build(telemetry=True)
    stack.issue_requests(6)
    stack.run(until=30.0)
    assert len(stack.outcomes) == 6

    tracing = stack.telemetry.tracer.stats()
    assert tracing["open"] == 0 and tracing["keyed_open"] == 0
    assert tracing["double_closes"] == 0 and tracing["orphan_closes"] == 0

    snapshot = stack.telemetry.snapshot()
    for surface in ("network", "plane", "peps", "policy_plane", "drams",
                    "tracing"):
        assert surface in snapshot["collected"]
    rows = snapshot["histograms"]["pep.access_latency"]
    assert sum(row["n"] for row in rows.values()) == 6
    # sync() is cursor-based: snapshotting twice never double-counts.
    rows = stack.telemetry.snapshot()["histograms"]["pep.access_latency"]
    assert sum(row["n"] for row in rows.values()) == 6

    summary = stack.run_summary()
    assert summary["enforced"] == 6 and summary["timeouts"] == 0
    assert summary["network"]["by_kind"]["ac_request"] == 6
    assert "dropped_dead" in summary["network"]
    assert "latency" in summary and "drams" in summary
    assert summary["tracing"]["spans"] == tracing["spans"]

    paths = stack.telemetry.critical_paths()
    assert len(paths.decision_traces()) == 6
    for trace_id in paths.decision_traces():
        shares = paths.attribution(trace_id)
        start, end = paths.extent(trace_id)
        assert sum(shares.values()) == pytest.approx(end - start)


def test_run_summary_without_telemetry():
    stack = _build(telemetry=False)
    stack.issue_requests(3)
    stack.run(until=20.0)
    summary = stack.run_summary()
    assert "tracing" not in summary
    assert summary["network"]["sent"] > 0


# -- failure paths (satellite: spans close across failover / crash) ------------------


def test_failover_closes_attempt_spans_exactly_once():
    reset_id_counter()
    stack = MonitoredFederation.build(
        healthcare_scenario(), seed=31, with_drams=False,
        plane=ShardedPdpPlane(shards=2),
        pep_kwargs={"request_timeout": 4.0}, telemetry=True)
    # Primary shard dead before traffic: requests routed there first time
    # out and fail over to the survivor.
    stack.plane.crash_shard(stack.plane.services[0].address)
    stack.issue_requests(10)
    stack.run(until=30.0)
    assert len(stack.outcomes) == 10
    failovers = sum(p.failovers for p in stack.peps.values())
    assert failovers > 0

    tracer = stack.telemetry.tracer
    dispatch = [s for s in tracer.recorder.spans if s.name == "pep.dispatch"]
    statuses = sorted({s.status for s in dispatch})
    assert "timeout" in statuses and "ok" in statuses
    assert all(s.closed for s in dispatch)
    assert tracer.recorder.open_spans() == []
    stats = tracer.stats()
    assert stats["double_closes"] == 0 and stats["orphan_closes"] == 0
    assert stats["keyed_open"] == 0


def test_shard_crash_epoch_fence_closes_evaluation_spans():
    reset_id_counter()
    stack = MonitoredFederation.build(
        healthcare_scenario(), seed=32, with_drams=False,
        plane=ShardedPdpPlane(
            shards=2, service_kwargs={"base_processing_delay": 1.0}),
        pep_kwargs={"request_timeout": 6.0}, telemetry=True)
    stack.issue_requests(8, start_at=0.5)
    tracer = stack.telemetry.tracer

    # Crash a shard while its accepted evaluations are still queued: the
    # epoch fence discards them, and close_prefixed marks their spans.
    # The victim is picked at crash time from the open evaluation spans,
    # so the test does not depend on how the ring routes the first burst.
    def crash_busy_shard():
        busy = [k for k in tracer.open_keys() if k[0] == "pdp.evaluate"]
        assert busy, "no evaluation in flight at crash time"
        stack.plane.crash_shard(busy[0][1])

    stack.sim.schedule_at(1.2, crash_busy_shard, label="chaos:crash")
    stack.run(until=40.0)
    assert len(stack.outcomes) == 8

    crashed = [s for s in tracer.recorder.spans if s.status == "crashed"]
    assert crashed and all(s.name == "pdp.evaluate" for s in crashed)
    assert tracer.recorder.open_spans() == []
    stats = tracer.stats()
    assert stats["double_closes"] == 0 and stats["orphan_closes"] == 0
    # The lost evaluations were re-dispatched and answered elsewhere.
    assert sum(p.timeouts for p in stack.peps.values()) == 0
