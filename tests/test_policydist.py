"""Policy distribution plane: replicas, propagation, convergence, monitoring."""

import copy

import pytest
from hypothesis import given, settings

from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.plane import ShardedPdpPlane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.analysis.properties import change_impact
from repro.common.errors import ValidationError
from repro.drams.alerts import AlertType
from repro.federation.federation import Federation, FederationConfig
from repro.harness import MonitoredFederation
from repro.policydist import (
    PrpReplica,
    ReplicatedPrpPlane,
    SingleStorePlane,
    as_policy_plane,
)
from repro.threats import Adversary, StalePolicyReplayAttack, TamperedPrpReplicaAttack
from repro.workload.scenarios import (
    churn_policy_document,
    healthcare_scenario,
    policy_churn_scenario,
)
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule
from tests.conftest import fast_drams_config
from tests.strategies import delivery_orders


def doc(tag="base"):
    return policy_to_dict(
        Policy(
            policy_id=f"p-{tag}",
            rule_combining="first-applicable",
            rules=[Rule(f"deny-{tag}", Effect.DENY)],
        )
    )


def records_for(*documents):
    """Version records 1..n over ``documents`` (the origin's wire form)."""
    store = PolicyRetrievalPoint()
    for index, document in enumerate(documents):
        store.publish(document, publisher="pap@test", published_at=float(index))
    return [version.to_record() for version in store.history()]


# -- single store -----------------------------------------------------------------


class TestSingleStorePlane:
    def test_every_consumer_shares_one_store(self):
        plane = SingleStorePlane()
        first = plane.retrieval_point_for("pdp-0")
        second = plane.retrieval_point_for("analyser")
        assert first is second is plane.authority
        assert set(plane.replicas()) == {"pdp-0", "analyser"}
        assert plane.converged()

    def test_as_policy_plane_wraps_raw_store(self):
        store = PolicyRetrievalPoint()
        plane = as_policy_plane(store)
        assert isinstance(plane, SingleStorePlane)
        assert plane.authority is store
        assert as_policy_plane(plane) is plane

    def test_as_policy_plane_rejects_junk(self):
        with pytest.raises(ValidationError):
            as_policy_plane(object())


# -- reentrancy guard --------------------------------------------------------------


class TestReentrantPublishGuard:
    def test_listener_publishing_reentrantly_is_rejected(self):
        prp = PolicyRetrievalPoint()
        failures = []

        def republish(version):
            try:
                prp.publish(doc("reentrant"), publisher="listener")
            except ValidationError as exc:
                failures.append(exc)

        prp.on_publish(republish)
        prp.publish(doc(), publisher="pap@test")
        assert len(failures) == 1
        assert "reentrant" in str(failures[0])
        # Version history stayed clean and the store still works.
        assert prp.version_count() == 1
        prp.publish(doc("later"), publisher="pap@test")
        assert prp.version_count() == 2


# -- replica unit behaviour --------------------------------------------------------


class TestPrpReplica:
    def test_local_publish_is_rejected(self):
        replica = PrpReplica(origin_id="prp@infra", consumer="pdp-0")
        with pytest.raises(ValidationError):
            replica.publish(doc(), publisher="local")

    def test_out_of_order_records_are_staged_then_applied_in_order(self):
        records = records_for(doc("a"), doc("b"), doc("c"))
        replica = PrpReplica(origin_id="prp@infra")
        observed = []
        replica.on_publish(lambda version: observed.append(version.version))
        assert not replica.apply_record(records[2])  # future: staged
        assert replica.version_count() == 0
        assert not replica.apply_record(records[1])  # still a gap
        assert replica.apply_record(records[0])  # gap closes, drains all
        assert replica.version_count() == 3
        assert observed == [1, 2, 3]

    def test_duplicates_are_ignored(self):
        records = records_for(doc("a"))
        replica = PrpReplica(origin_id="prp@infra")
        assert replica.apply_record(records[0])
        assert not replica.apply_record(records[0])
        assert replica.records_duplicate == 1
        assert replica.version_count() == 1

    def test_tampered_record_is_rejected(self):
        records = records_for(doc("a"))
        forged = copy.deepcopy(records[0])
        forged["document"]["description"] = "altered in flight"
        replica = PrpReplica(origin_id="prp@infra")
        with pytest.raises(ValidationError):
            replica.apply_record(forged)
        assert replica.version_count() == 0

    def test_frozen_replica_drops_deliveries(self):
        records = records_for(doc("a"))
        replica = PrpReplica(origin_id="prp@infra")
        replica.frozen = True
        assert not replica.apply_record(records[0])
        assert replica.version_count() == 0
        replica.frozen = False
        assert replica.apply_record(records[0])

    def test_version_vector(self):
        records = records_for(doc("a"), doc("b"))
        replica = PrpReplica(origin_id="prp@infra")
        assert replica.version_vector() == {"prp@infra": 0}
        replica.apply_record(records[0])
        replica.apply_record(records[1])
        assert replica.version_vector() == {"prp@infra": 2}

    @settings(max_examples=25, deadline=None)
    @given(delivery_orders(5))
    def test_any_delivery_order_converges_to_the_same_head(self, order):
        """Anti-entropy hypothesis: delivery order never changes the head."""
        records = records_for(*(doc(f"gen-{i}") for i in range(5)))
        replica = PrpReplica(origin_id="prp@infra")
        for index in order:
            replica.apply_record(records[index])
        assert replica.version_count() == 5
        assert replica.current().fingerprint == records[-1]["fingerprint"]
        assert [v.version for v in replica.history()] == [1, 2, 3, 4, 5]


# -- replicated plane over a federation --------------------------------------------


def deployed_plane(**kwargs):
    federation = Federation(FederationConfig(name="policydist-test", seed=5))
    plane = ReplicatedPrpPlane(**kwargs).deploy(federation)
    return federation, plane


class TestReplicatedPrpPlane:
    def test_requires_deploy_before_use(self):
        plane = ReplicatedPrpPlane()
        with pytest.raises(ValidationError):
            plane.authority
        with pytest.raises(ValidationError):
            plane.retrieval_point_for("pdp")

    def test_deploy_is_idempotent_per_federation(self):
        federation, plane = deployed_plane()
        assert plane.deploy(federation) is plane
        with pytest.raises(ValidationError):
            plane.deploy(Federation(FederationConfig(name="other", seed=6)))

    def test_replicas_bootstrap_published_history(self):
        federation, plane = deployed_plane(propagation_delay=0.5)
        plane.authority.publish(doc("a"), publisher="pap@test")
        plane.authority.publish(doc("b"), publisher="pap@test")
        replica = plane.retrieval_point_for("pdp-0")
        # Synchronous provisioning snapshot: no simulated time has passed.
        assert replica.version_count() == 2
        assert replica.current().fingerprint == plane.authority.current().fingerprint

    def test_publish_propagates_after_the_configured_delay(self):
        federation, plane = deployed_plane(
            propagation_delay=0.5, propagation_jitter=0.0, anti_entropy_interval=0.0
        )
        replica = plane.retrieval_point_for("pdp-0")
        plane.authority.publish(doc("a"), publisher="pap@test")
        assert replica.version_count() == 0
        federation.sim.run(until=0.4)
        assert replica.version_count() == 0  # still in flight
        federation.sim.run(until=1.0)
        assert replica.version_count() == 1
        assert plane.converged()

    def test_anti_entropy_recovers_dropped_publishes(self):
        federation, plane = deployed_plane(
            propagation_delay=0.05,
            publish_loss_rate=1.0,  # every direct fan-out is lost
            anti_entropy_interval=0.5,
        )
        replica = plane.retrieval_point_for("pdp-0")
        plane.authority.publish(doc("a"), publisher="pap@test")
        plane.authority.publish(doc("b"), publisher="pap@test")
        assert plane.publishes_dropped == 2
        federation.sim.run(until=2.0)
        assert replica.version_count() == 2
        assert plane.converged()
        assert plane.stats()["pulls_served"] >= 1

    def test_consumers_get_distinct_replicas(self):
        federation, plane = deployed_plane()
        first = plane.retrieval_point_for("pdp-0")
        second = plane.retrieval_point_for("pdp-1")
        assert first is not second
        assert plane.retrieval_point_for("pdp-0") is first  # stable handle
        assert set(plane.replicas()) == {"pdp-0", "pdp-1"}


# -- PAP change impact through a replicated plane ----------------------------------


class TestPapThroughReplicatedPlane:
    def test_impact_uses_the_publishers_current_version_not_a_stale_replica(self):
        scenario = policy_churn_scenario()
        federation = Federation(FederationConfig(name="pap-impact", seed=7))
        plane = ReplicatedPrpPlane(propagation_delay=5.0).deploy(federation)
        pap = PolicyAdministrationPoint(plane.authority, administrator="pap@infra")
        pap.publish(churn_policy_document(0), published_at=0.0)
        replica = plane.retrieval_point_for("pdp-0")  # bootstraps generation 0
        pap.publish(churn_policy_document(1), published_at=0.0)
        assert replica.version_count() == 1  # stale: publish still in flight

        # Generations 0 and 2 decide identically (contractor reads on in
        # both); generation 1 has them off.  An impact report for the
        # gen-1 → gen-2 publish must therefore show differences — if it
        # were computed against the stale replica (still gen 0), it would
        # report none.
        report = pap.publish(
            churn_policy_document(2), published_at=0.0,
            impact_domain=scenario.domain,
        ) and pap.last_impact_report
        assert report is not None
        assert not report.holds and report.counterexamples
        stale_baseline = change_impact(
            churn_policy_document(0), churn_policy_document(2), scenario.domain
        )
        assert stale_baseline.holds  # the stale comparison would be silent


# -- stamped decisions and end-to-end monitoring -----------------------------------


class TestVersionStampedDecisions:
    def test_decisions_carry_the_policy_stamp(self):
        stack = MonitoredFederation.build(
            healthcare_scenario(), seed=21, with_drams=False
        )
        stack.issue_requests(3)
        stack.run(until=10.0)
        assert len(stack.outcomes) == 3
        head = stack.prp.current()
        for outcome in stack.outcomes:
            assert outcome.decision.policy_version == head.version
            assert outcome.decision.policy_fingerprint == head.fingerprint

    def test_mid_run_publish_restamps_decisions(self):
        scenario = policy_churn_scenario()
        stack = MonitoredFederation.build(scenario, seed=22, with_drams=False)
        stack.issue_requests(40)
        stack.publish_policy(scenario.policy_variants[0], at=1.2)
        stack.run(until=10.0)
        versions = {o.decision.policy_version for o in stack.outcomes}
        assert versions == {1, 2}


class TestChurnMonitoring:
    def test_honest_churn_raises_no_violation_alerts(self):
        scenario = policy_churn_scenario()
        stack = MonitoredFederation.build(
            scenario,
            seed=23,
            drams_config=fast_drams_config(),
            policy_plane=ReplicatedPrpPlane(
                propagation_delay=0.3, propagation_jitter=0.05
            ),
            plane=ShardedPdpPlane(shards=2),
        )
        stack.start()
        stack.issue_requests(30)
        for index, document in enumerate(scenario.policy_variants[:2]):
            stack.publish_policy(document, at=0.8 + 0.6 * index)
        stack.run(until=40.0)
        assert len(stack.outcomes) == 30
        alerts = stack.drams.alerts
        assert alerts.count(AlertType.POLICY_VIOLATION) == 0
        assert alerts.count(AlertType.INCORRECT_DECISION) == 0
        assert stack.policy_plane.converged()
        assert stack.drams.analyser.checked == 30

    def test_tampered_replica_is_detected(self):
        rogue = policy_to_dict(
            Policy(
                policy_id="rogue",
                rule_combining="permit-overrides",
                rules=[Rule("allow-all", Effect.PERMIT)],
            )
        )
        stack = MonitoredFederation.build(
            policy_churn_scenario(),
            seed=24,
            drams_config=fast_drams_config(),
            policy_plane=ReplicatedPrpPlane(propagation_delay=0.2),
        )
        stack.start()
        adversary = Adversary(stack.drams)
        adversary.launch(TamperedPrpReplicaAttack(rogue), at=0.6)
        stack.issue_requests(15)
        stack.run(until=45.0)
        record = adversary.records()[0]
        assert record.detected
        assert AlertType.POLICY_VIOLATION in {
            a.alert_type for a in record.matched_alerts
        }
        assert adversary.false_positives() == []

    def test_stale_policy_replay_is_detected_once_skew_exceeds_bound(self):
        scenario = policy_churn_scenario()
        stack = MonitoredFederation.build(
            scenario,
            seed=25,
            drams_config=fast_drams_config(),
            policy_plane=ReplicatedPrpPlane(
                propagation_delay=0.2, propagation_jitter=0.05
            ),
        )
        stack.start()
        adversary = Adversary(stack.drams)
        adversary.launch(StalePolicyReplayAttack(), at=0.6)
        stack.issue_requests(60)
        for index, document in enumerate(scenario.policy_variants):
            stack.publish_policy(document, at=0.8 + 0.4 * index)
        stack.run(until=60.0)
        record = adversary.records()[0]
        assert record.detected
        assert adversary.false_positives() == []
        # Skew within the bound was classified as churn, not violation.
        assert stack.drams.analyser.churn_observed > 0

    def test_replica_attacks_refuse_a_shared_store(self):
        stack = MonitoredFederation.build(
            healthcare_scenario(), seed=26, drams_config=fast_drams_config()
        )
        stack.start()
        with pytest.raises(ValidationError):
            StalePolicyReplayAttack().inject(stack.drams)


class TestChurnClaimAudit:
    """The churn downgrade is a claim the Analyser must verify, not trust."""

    def churn_stack(self, seed):
        stack = MonitoredFederation.build(
            policy_churn_scenario(), seed=seed, drams_config=fast_drams_config()
        )
        stack.start()
        return stack

    def contractor_read(self, pep):
        pep.request_access(
            subject={"role": "contractor"},
            resource={
                "type": "case-file",
                "resource-id": "case-77",
                "owner-tenant": pep.tenant_name,
            },
            action={"action-id": "read"},
        )

    def test_forged_stamp_with_unknown_fingerprint_is_refuted(self):
        from repro.accesscontrol.messages import AccessDecision

        stack = self.churn_stack(seed=31)
        pep = stack.peps["tenant-1"]

        def forge(request, decision):
            forged = AccessDecision.from_dict(decision.to_dict())
            forged.decision = "Permit"
            forged.policy_version = decision.policy_version + 1
            forged.policy_fingerprint = "f" * 64  # no publisher made this
            return forged

        pep.enforcement_interceptor = forge
        self.contractor_read(pep)
        stack.run(until=40.0)
        alerts = stack.drams.alerts
        # Downgraded to churn by the declared-version mismatch, then the
        # audit refuted the claim: the fingerprint is outside the history.
        assert alerts.count(AlertType.POLICY_CHURN) == 1
        assert alerts.count(AlertType.POLICY_VIOLATION) == 1
        reasons = {a.details.get("reason")
                   for a in alerts.of_type(AlertType.POLICY_VIOLATION)}
        assert reasons == {"churn-claims-unknown-fingerprint"}

    def test_forged_stamp_naming_a_real_version_is_refuted_by_its_oracle(self):
        from repro.accesscontrol.messages import AccessDecision

        scenario = policy_churn_scenario()
        stack = self.churn_stack(seed=32)
        pep = stack.peps["tenant-1"]
        v1 = stack.prp.current()
        stack.publish_policy(scenario.policy_variants[0], at=1.0)

        def forge(request, decision):
            # Claim version 1 (which permits contractor reads) while
            # enforcing Deny: a real version, but not its decision.
            forged = AccessDecision.from_dict(decision.to_dict())
            forged.decision = "Deny"
            forged.policy_version = v1.version
            forged.policy_fingerprint = v1.fingerprint
            return forged

        def late_request():
            pep.enforcement_interceptor = forge
            self.contractor_read(pep)

        stack.sim.schedule_at(2.0, late_request)
        stack.run(until=40.0)
        alerts = stack.drams.alerts
        assert alerts.count(AlertType.POLICY_CHURN) == 1
        violations = alerts.of_type(AlertType.POLICY_VIOLATION)
        assert [a.details.get("reason") for a in violations] == [
            "churn-claim-refuted"
        ]
        assert stack.drams.analyser.churn_audits >= 0

    def test_honest_failover_race_claim_survives_the_audit(self):
        # Both sides stamped with *real* versions and each decision is
        # what its version entails — the audit must stay quiet.
        from repro.accesscontrol.messages import AccessDecision

        scenario = policy_churn_scenario()
        stack = self.churn_stack(seed=33)
        pep = stack.peps["tenant-1"]
        v1 = stack.prp.current()
        stack.publish_policy(scenario.policy_variants[0], at=1.0)

        def honest_stale(request, decision):
            # Model the PEP having enforced another replica's answer,
            # evaluated honestly under version 1 (Permit for contractors).
            forged = AccessDecision.from_dict(decision.to_dict())
            forged.decision = "Permit"
            forged.policy_version = v1.version
            forged.policy_fingerprint = v1.fingerprint
            return forged

        def late_request():
            pep.enforcement_interceptor = honest_stale
            self.contractor_read(pep)

        stack.sim.schedule_at(2.0, late_request)
        stack.run(until=40.0)
        alerts = stack.drams.alerts
        assert alerts.count(AlertType.POLICY_CHURN) == 1
        assert alerts.count(AlertType.POLICY_VIOLATION) == 0
        assert alerts.count(AlertType.DECISION_MISMATCH) == 0
        assert stack.drams.analyser.churn_audits >= 1


class TestStopHaltsPolicyPlane:
    def test_drams_stop_cancels_anti_entropy(self):
        stack = MonitoredFederation.build(
            policy_churn_scenario(),
            seed=34,
            drams_config=fast_drams_config(),
            policy_plane=ReplicatedPrpPlane(anti_entropy_interval=0.5),
        )
        stack.start()
        stack.run(until=2.0)
        stack.drams.stop()
        before = stack.sim.executed_events
        stack.run(until=10.0)
        residual = stack.sim.executed_events - before
        assert residual < 50, f"{residual} events after stop()"

    def test_plane_start_rearms_anti_entropy_after_stop(self):
        federation, plane = deployed_plane(
            propagation_delay=0.05,
            publish_loss_rate=1.0,  # convergence depends on pulls alone
            anti_entropy_interval=0.5,
        )
        replica = plane.retrieval_point_for("pdp-0")
        plane.stop()
        plane.authority.publish(doc("a"), publisher="pap@test")
        federation.sim.run(until=3.0)
        assert replica.version_count() == 0  # stopped: no pulls, fan-out lost
        plane.start()
        federation.sim.run(until=6.0)
        assert replica.version_count() == 1
        assert plane.converged()
