"""Target index: guard compilation, skip soundness, differential equality."""

from hypothesis import given, settings, strategies as st

from tests.strategies import documents, request_dicts

from repro.xacml.context import Decision, RequestContext
from repro.xacml.index import (
    attribute_footprint,
    compile_guard,
    compile_target_index,
)
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Effect, Policy, Rule, Target


def typed_policy(rule_count: int = 8) -> Policy:
    """One permit rule per resource type, plus a final deny."""
    rules = [Rule(f"type-{i}", Effect.PERMIT,
                  target=Target.single("string-equal", f"type-{i}",
                                       "resource", "type"))
             for i in range(rule_count)]
    rules.append(Rule("fallback-deny", Effect.DENY))
    return Policy(policy_id="typed", rule_combining="first-applicable",
                  rules=rules)


def request(**categories) -> RequestContext:
    return RequestContext.from_dict(categories)


class TestGuardCompilation:
    def test_empty_target_has_no_guard(self):
        assert compile_guard(Target.match_all()) is None

    def test_single_equality_target_is_guarded(self):
        guard = compile_guard(Target.single("string-equal", "doctor",
                                            "subject", "role"))
        assert guard is not None and len(guard) == 1
        assert guard[0].attribute_id == "role"
        assert guard[0].value == "doctor"

    def test_non_equality_target_is_not_guarded(self):
        guard = compile_guard(Target.single("integer-less-than", 3,
                                            "subject", "clearance", "integer"))
        assert guard is None

    def test_mistyped_literal_is_not_guarded(self):
        # string-equal against an integer literal raises at evaluation time
        # (→ Indeterminate), so it must never be inverted into a guard.
        guard = compile_guard(Target.single("string-equal", 7,
                                            "subject", "role"))
        assert guard is None


class TestSkipSoundness:
    def test_non_matching_rules_are_skipped(self):
        index = compile_target_index(typed_policy())
        decision, _ = index.evaluate_full(
            request(resource={"type": ["type-3"]}))
        assert decision is Decision.PERMIT
        stats = index.stats
        # 7 of the 8 typed rules skipped; the match and the unguarded
        # fallback deny are evaluated.
        assert stats.rules_skipped == 7
        assert stats.rules_evaluated == 2

    def test_empty_bag_skips(self):
        index = compile_target_index(typed_policy())
        decision, _ = index.evaluate_full(request(subject={"role": ["x"]}))
        assert decision is Decision.DENY  # fallback
        assert index.stats.rules_skipped == 8

    def test_type_clash_never_skips(self):
        # resource.type arrives as an integer bag: every string-equal match
        # on it is Indeterminate, which skipping would silently erase.
        plain = PolicyDecisionPoint(typed_policy())
        indexed = PolicyDecisionPoint(typed_policy(), indexed=True)
        req = request(resource={"type": [99]})
        assert indexed.evaluate(req).to_dict() == plain.evaluate(req).to_dict()
        assert indexed.index.stats.rules_skipped == 0

    def test_multi_value_bag_matches(self):
        index = compile_target_index(typed_policy())
        decision, _ = index.evaluate_full(
            request(resource={"type": ["other", "type-5"]}))
        assert decision is Decision.PERMIT


class TestAttributeFootprint:
    def test_footprint_collects_targets_and_conditions(self):
        from repro.workload.scenarios import ministry_scenario

        root = policy_from_dict(ministry_scenario().policy_document)
        footprint = attribute_footprint(root)
        assert ("subject", "clearance") in footprint
        assert ("environment", "time-of-day") in footprint
        assert ("resource", "type") in footprint
        assert ("subject", "shoe-size") not in footprint

    def test_footprint_excludes_unreferenced(self):
        root = typed_policy()
        assert attribute_footprint(root) == frozenset({("resource", "type")})


class TestSkippedChildObligations:
    def test_notapplicable_obligations_survive_child_skip(self):
        # fulfill_on is not validated, so a document may carry obligations
        # owed on NotApplicable; the slow path returns them from a
        # NoMatch child policy and skipping must not lose them.
        from repro.xacml.context import Obligation
        from repro.xacml.policy import PolicySet

        child = Policy(
            policy_id="guarded", rule_combining="first-applicable",
            target=Target.single("string-equal", "ghost-type",
                                 "resource", "type"),
            rules=[Rule("allow", Effect.PERMIT)],
            obligations=[Obligation("na-ob", "NotApplicable", {})])
        root = PolicySet(policy_set_id="root",
                         policy_combining="first-applicable",
                         children=[child])
        req = request(resource={"type": ["other"]})
        plain = PolicyDecisionPoint(root)
        indexed = PolicyDecisionPoint(root, indexed=True)
        expected = plain.evaluate(req).to_dict()
        got = indexed.evaluate(req).to_dict()
        assert indexed.index.stats.children_skipped == 1
        assert got == expected
        assert got["obligations"] == [{"obligation_id": "na-ob",
                                       "fulfill_on": "NotApplicable",
                                       "attributes": {}}]


def _with_obligations(document: dict, fulfill_on: str) -> dict:
    """Attach obligations to every node so propagation is exercised too."""
    document = dict(document)
    document["obligations"] = [
        {"obligation_id": f"ob-{document.get('policy_id', document.get('policy_set_id'))}",
         "fulfill_on": fulfill_on, "attributes": {}}]
    if document.get("kind") == "policy_set":
        document["children"] = [_with_obligations(child, fulfill_on)
                                for child in document["children"]]
    return document


class TestDifferentialIndex:
    @given(documents, request_dicts())
    @settings(max_examples=300, deadline=None)
    def test_indexed_pdp_matches_plain_pdp(self, document, req):
        plain = PolicyDecisionPoint(policy_from_dict(document))
        indexed = PolicyDecisionPoint(policy_from_dict(document), indexed=True)
        context = RequestContext.from_dict(req)
        assert (indexed.evaluate(context).to_dict()
                == plain.evaluate(context).to_dict()), (
            f"index diverges on {req}\npolicy={document}")

    @given(documents, request_dicts(),
           st.sampled_from(["Permit", "Deny"]))
    @settings(max_examples=150, deadline=None)
    def test_obligations_survive_indexing(self, document, req, fulfill_on):
        document = _with_obligations(document, fulfill_on)
        plain = PolicyDecisionPoint(policy_from_dict(document))
        indexed = PolicyDecisionPoint(policy_from_dict(document), indexed=True)
        context = RequestContext.from_dict(req)
        assert (indexed.evaluate(context).to_dict()
                == plain.evaluate(context).to_dict())
