"""Chain-rewrite attacks: the Nakamoto formula vs the Monte-Carlo race."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.threats.chain_attacks import (
    nakamoto_success_probability,
    simulate_rewrite_race,
)


class TestFormula:
    def test_zero_depth_always_succeeds(self):
        assert nakamoto_success_probability(0.1, 0) == 1.0

    def test_majority_attacker_always_succeeds(self):
        assert nakamoto_success_probability(0.5, 10) == 1.0
        assert nakamoto_success_probability(0.7, 10) == 1.0

    def test_zero_hashrate_never_succeeds_deep(self):
        assert nakamoto_success_probability(0.0, 3) == pytest.approx(0.0)

    def test_monotone_decreasing_in_depth(self):
        probabilities = [nakamoto_success_probability(0.2, z) for z in range(8)]
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    def test_monotone_increasing_in_hashrate(self):
        probabilities = [nakamoto_success_probability(q, 4)
                         for q in (0.05, 0.15, 0.25, 0.35, 0.45)]
        assert all(a <= b for a, b in zip(probabilities, probabilities[1:]))

    def test_known_whitepaper_values(self):
        # Nakamoto (2008), section 11 tables.
        assert nakamoto_success_probability(0.1, 5) == pytest.approx(
            0.0009137, abs=1e-5)
        assert nakamoto_success_probability(0.3, 5) == pytest.approx(
            0.1773523, abs=1e-4)
        assert nakamoto_success_probability(0.1, 10) == pytest.approx(
            0.0000012, abs=1e-6)

    def test_input_validation(self):
        with pytest.raises(ValidationError):
            nakamoto_success_probability(1.5, 3)
        with pytest.raises(ValidationError):
            nakamoto_success_probability(0.2, -1)

    @given(st.floats(min_value=0, max_value=1),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_result_is_a_probability(self, q, z):
        assert 0.0 <= nakamoto_success_probability(q, z) <= 1.0


class TestMonteCarlo:
    def test_race_matches_formula_moderate_attacker(self):
        rng = SeededRng(99)
        result = simulate_rewrite_race(rng, attacker_fraction=0.25, depth=3,
                                       trials=4000)
        expected = nakamoto_success_probability(0.25, 3)
        assert result.success_rate == pytest.approx(expected, abs=0.03)

    def test_race_matches_formula_weak_attacker(self):
        rng = SeededRng(100)
        result = simulate_rewrite_race(rng, attacker_fraction=0.1, depth=4,
                                       trials=4000)
        expected = nakamoto_success_probability(0.1, 4)
        assert result.success_rate == pytest.approx(expected, abs=0.02)

    def test_majority_attacker_always_wins(self):
        rng = SeededRng(101)
        result = simulate_rewrite_race(rng, attacker_fraction=0.6, depth=2,
                                       trials=200)
        assert result.success_rate == 1.0

    def test_deeper_burial_is_safer(self):
        rng = SeededRng(102)
        shallow = simulate_rewrite_race(rng, 0.3, depth=1, trials=2000)
        deep = simulate_rewrite_race(rng, 0.3, depth=6, trials=2000)
        assert deep.success_rate < shallow.success_rate

    def test_reproducible_under_seed(self):
        a = simulate_rewrite_race(SeededRng(7), 0.2, 3, trials=500)
        b = simulate_rewrite_race(SeededRng(7), 0.2, 3, trials=500)
        assert a.success_rate == b.success_rate

    def test_input_validation(self):
        with pytest.raises(ValidationError):
            simulate_rewrite_race(SeededRng(1), 2.0, 1)
        with pytest.raises(ValidationError):
            simulate_rewrite_race(SeededRng(1), 0.1, 1, trials=0)

    def test_mean_race_length_reported(self):
        result = simulate_rewrite_race(SeededRng(1), 0.2, 2, trials=100)
        assert result.mean_race_blocks > 0
