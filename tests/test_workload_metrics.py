"""Workload generation, scenarios, metrics utilities."""

import pytest

from repro.analysis.properties import check_completeness
from repro.analysis.semantics import evaluate_document
from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.metrics.detection import DetectionScorer
from repro.metrics.recorder import LatencyRecorder, percentile
from repro.metrics.tables import format_table
from repro.threats.adversary import AttackRecord
from repro.workload.generator import RequestGenerator, WorkloadConfig
from repro.workload.scenarios import (
    SCENARIO_FACTORIES,
    healthcare_scenario,
    ministry_scenario,
)


class TestWorkloadGenerator:
    def gen(self, seed=5, **overrides):
        config = WorkloadConfig(**overrides) if overrides else WorkloadConfig()
        return RequestGenerator(config, SeededRng(seed))

    def test_deterministic_under_seed(self):
        a = [r.subject["subject-id"] for r in self.gen(5).requests(20)]
        b = [r.subject["subject-id"] for r in self.gen(5).requests(20)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [r.at for r in self.gen(5).requests(20)]
        b = [r.at for r in self.gen(6).requests(20)]
        assert a != b

    def test_arrivals_strictly_increase(self):
        times = [r.at for r in self.gen().requests(50)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_arrival_rate_roughly_honoured(self):
        config = WorkloadConfig(arrival_rate=10.0)
        generator = RequestGenerator(config, SeededRng(7))
        times = [r.at for r in generator.requests(500)]
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.1, rel=0.2)

    def test_zipf_popularity_skew(self):
        generator = self.gen(resources=50)
        counts: dict[str, int] = {}
        for request in generator.requests(1000):
            rid = request.resource["resource-id"]
            counts[rid] = counts.get(rid, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] > 3 * ranked[len(ranked) // 2]

    def test_roles_respect_population(self):
        generator = self.gen()
        roles = {s["role"] for s in generator.subjects()}
        assert roles <= {"doctor", "nurse", "clerk"}

    def test_payload_padding(self):
        generator = self.gen(payload_padding_bytes=256)
        request = next(iter(generator.requests(1)))
        assert len(request.resource["padding"]) == 256

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(subjects=0)
        with pytest.raises(ValidationError):
            WorkloadConfig(roles=("a",), role_weights=(0.5, 0.5))
        with pytest.raises(ValidationError):
            WorkloadConfig(arrival_rate=0)


class TestWorkloadGeneratorEdges:
    def test_flat_stream_rate_is_constant(self):
        generator = RequestGenerator(WorkloadConfig(arrival_rate=10.0), SeededRng(5))
        assert generator.arrival_rate_at(0.0) == 10.0
        assert generator.arrival_rate_at(123.4) == 10.0

    def test_diurnal_rate_at_period_boundaries(self):
        config = WorkloadConfig(arrival_rate=100.0, arrival_period=8.0,
                                arrival_trough=0.2)
        generator = RequestGenerator(config, SeededRng(5))
        assert generator.arrival_rate_at(0.0) == pytest.approx(100.0)
        assert generator.arrival_rate_at(4.0) == pytest.approx(20.0)  # trough
        assert generator.arrival_rate_at(8.0) == pytest.approx(100.0)  # peak again
        assert generator.arrival_rate_at(2.0) == pytest.approx(60.0)  # midpoint

    def test_harmonics_multiply_envelopes(self):
        config = WorkloadConfig(arrival_rate=100.0, arrival_period=8.0,
                                arrival_trough=0.2,
                                arrival_harmonics=((4.0, 0.5),))
        generator = RequestGenerator(config, SeededRng(5))
        # At t=0 every envelope peaks; at t=2 the harmonic bottoms out
        # (half its 4s period) while the base is at its midpoint.
        assert generator.arrival_rate_at(0.0) == pytest.approx(100.0)
        assert generator.arrival_rate_at(2.0) == pytest.approx(60.0 * 0.5)

    def test_harmonics_validation(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(arrival_harmonics=((0.0, 0.5),))
        with pytest.raises(ValidationError):
            WorkloadConfig(arrival_harmonics=((4.0, 0.0),))
        with pytest.raises(ValidationError):
            WorkloadConfig(arrival_harmonics=((4.0, 0.5, 1.0),))

    def test_single_resource_catalogue(self):
        config = WorkloadConfig(subjects=1, resources=1, zipf_skew=2.0)
        generator = RequestGenerator(config, SeededRng(5))
        seen = {r.resource["resource-id"] for r in generator.requests(20)}
        assert seen == {"resource-0"}

    def test_streaming_consumption_matches_materialised(self):
        """Pulling lazily from the iterator equals materialising it."""
        materialised = list(
            RequestGenerator(WorkloadConfig(), SeededRng(9)).requests(40))
        streamed = []
        stream = RequestGenerator(WorkloadConfig(), SeededRng(9)).requests(40)
        while True:
            request = next(stream, None)
            if request is None:
                break
            streamed.append(request)
        assert [(r.at, r.subject, r.resource, r.action) for r in streamed] == [
            (r.at, r.subject, r.resource, r.action) for r in materialised]

    def test_catalogues_expose_full_population(self):
        generator = RequestGenerator(
            WorkloadConfig(subjects=7, resources=11), SeededRng(5))
        assert len(generator.subjects()) == 7
        assert len(generator.resources()) == 11
        assert generator.subjects()[3]["subject-id"] == "subject-3"
        assert generator.resources()[10]["resource-id"] == "resource-10"


class TestScenarios:
    @pytest.mark.parametrize("scenario_factory", SCENARIO_FACTORIES)
    def test_policy_documents_parse_and_evaluate(self, scenario_factory):
        scenario = scenario_factory()
        request = {"subject": {"role": ["doctor"]},
                   "action": {"action-id": ["read"]},
                   "resource": {"type": ["medical-record"]}}
        decision = evaluate_document(scenario.policy_document, request)
        assert decision in ("Permit", "Deny", "NotApplicable", "Indeterminate")

    @pytest.mark.parametrize("scenario_factory", SCENARIO_FACTORIES)
    def test_scenarios_are_complete_over_their_domains(self, scenario_factory):
        scenario = scenario_factory()
        report = check_completeness(scenario.policy_document, scenario.domain)
        assert report.holds, report.counterexamples[:2]

    def test_healthcare_semantics_spotchecks(self):
        doc = healthcare_scenario().policy_document
        doctor_read = {"subject": {"role": ["doctor"]},
                       "action": {"action-id": ["read"]},
                       "resource": {"type": ["medical-record"]}}
        assert evaluate_document(doc, doctor_read) == "Permit"
        clerk_read = {"subject": {"role": ["clerk"]},
                      "action": {"action-id": ["read"]},
                      "resource": {"type": ["medical-record"]}}
        assert evaluate_document(doc, clerk_read) == "Deny"
        doctor_remote_write = {
            "subject": {"role": ["doctor"]},
            "action": {"action-id": ["write"]},
            "resource": {"type": ["medical-record"],
                         "owner-tenant": ["tenant-2"]},
            "environment": {"origin-tenant": ["tenant-1"]}}
        assert evaluate_document(doc, doctor_remote_write) == "Deny"
        doctor_home_write = {
            "subject": {"role": ["doctor"]},
            "action": {"action-id": ["write"]},
            "resource": {"type": ["medical-record"],
                         "owner-tenant": ["tenant-1"]},
            "environment": {"origin-tenant": ["tenant-1"]}}
        assert evaluate_document(doc, doctor_home_write) == "Permit"

    def test_ministry_clearance_gate(self):
        doc = ministry_scenario().policy_document
        low_clearance = {
            "subject": {"role": ["officer"], "clearance": [1]},
            "action": {"action-id": ["read"]},
            "resource": {"type": ["tax-document"], "sensitivity": [5]}}
        assert evaluate_document(doc, low_clearance) == "Deny"
        high_clearance = {
            "subject": {"role": ["officer"], "clearance": [5]},
            "action": {"action-id": ["read"]},
            "resource": {"type": ["tax-document"], "sensitivity": [1]}}
        assert evaluate_document(doc, high_clearance) == "Permit"

    def test_ministry_office_hours(self):
        doc = ministry_scenario().policy_document
        base = {"subject": {"role": ["auditor"]},
                "action": {"action-id": ["read"]},
                "resource": {"type": ["tax-document"]}}
        in_hours = dict(base, environment={"time-of-day": [10.0 * 3600]})
        after_hours = dict(base, environment={"time-of-day": [22.0 * 3600]})
        assert evaluate_document(doc, in_hours) == "Permit"
        assert evaluate_document(doc, after_hours) == "Deny"


class TestLatencyRecorder:
    def test_summary_statistics(self):
        recorder = LatencyRecorder()
        recorder.extend("x", [0.1, 0.2, 0.3, 0.4, 0.5])
        summary = recorder.summary("x")
        assert summary.count == 5
        assert summary.mean == pytest.approx(0.3)
        assert summary.p50 == pytest.approx(0.3)
        assert summary.maximum == 0.5

    def test_percentile_interpolates(self):
        assert percentile([0.0, 1.0], 0.5) == 0.5
        assert percentile([1.0], 0.9) == 1.0

    def test_percentile_validation(self):
        with pytest.raises(ValidationError):
            percentile([], 0.5)
        with pytest.raises(ValidationError):
            percentile([1.0], 2.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            LatencyRecorder().record("x", -1.0)

    def test_missing_series_raises(self):
        with pytest.raises(ValidationError):
            LatencyRecorder().summary("ghost")

    def test_as_row_scales_to_ms(self):
        recorder = LatencyRecorder()
        recorder.record("x", 0.25)
        row = recorder.summary("x").as_row()
        assert row["mean_ms"] == 250.0


class TestDetectionScorer:
    def record(self, detected, latency=1.0):
        return AttackRecord(attack_name="a", injected_at=0.0,
                            expected_alerts=(), detected=detected,
                            detection_latency=latency if detected else None)

    def test_rates(self):
        scorer = DetectionScorer()
        scorer.add(self.record(True, 2.0))
        scorer.add(self.record(False))
        summary = scorer.summary()
        assert summary.detection_rate == 0.5
        assert summary.mean_latency == 2.0

    def test_empty_scorer(self):
        summary = DetectionScorer().summary()
        assert summary.attacks == 0 and summary.detection_rate == 0.0
        assert summary.mean_latency is None

    def test_false_positive_accumulation(self):
        scorer = DetectionScorer()
        scorer.add_all([self.record(True)], false_positives=3)
        assert scorer.summary().false_positives == 3


class TestTables:
    def test_alignment_and_headers(self):
        table = format_table([{"name": "a", "value": 1},
                              {"name": "longer", "value": 23}], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_missing_cells_dash(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "-" in table.splitlines()[-2]

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_floats_formatted(self):
        table = format_table([{"x": 0.123456}])
        assert "0.123" in table
