"""Merkle trees and inclusion proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.crypto.merkle import (
    _LEAF_PREFIX,
    MerkleProof,
    MerkleTree,
    leaf_hash,
    tree_depth,
)


class TestTreeConstruction:
    def test_empty_tree_has_stable_root(self):
        assert MerkleTree([]).root == MerkleTree([]).root

    def test_singleton_root_is_leaf_hash(self):
        assert MerkleTree(["x"]).root == leaf_hash("x")

    def test_root_depends_on_content(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["a", "c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    def test_root_of_shortcut(self):
        items = ["a", "b", "c"]
        assert MerkleTree.root_of(items) == MerkleTree(items).root

    def test_len(self):
        assert len(MerkleTree(["a", "b", "c"])) == 3

    def test_odd_count_differs_from_duplicated_tail(self):
        # The tree duplicates the tail internally, but ["a","b","c"] must
        # still hash differently from ["a","b","c","c"]... they collide in
        # naive constructions; ours inherits that standard caveat, so the
        # contract layer never relies on count — just assert determinism.
        assert MerkleTree(["a", "b", "c"]).root == MerkleTree(["a", "b", "c"]).root


class TestProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_all_proofs_verify(self, size):
        items = [f"item-{i}" for i in range(size)]
        tree = MerkleTree(items)
        for index in range(size):
            proof = tree.proof(index)
            assert proof.verify(tree.root), f"proof {index} failed for size {size}"

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        other = MerkleTree(["a", "b", "c", "e"])
        assert not tree.proof(0).verify(other.root)

    def test_proof_fails_for_modified_leaf(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        proof = tree.proof(1)
        forged = MerkleProof(leaf_index=1, leaf="tampered", path=proof.path)
        assert not forged.verify(tree.root)

    def test_proof_index_out_of_range(self):
        with pytest.raises(ValidationError):
            MerkleTree(["a"]).proof(1)

    def test_proof_path_length_is_logarithmic(self):
        tree = MerkleTree([str(i) for i in range(16)])
        assert len(tree.proof(0).path) == 4

    @given(st.lists(st.text(max_size=8), min_size=1, max_size=24),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_random_proofs_verify(self, items, data):
        tree = MerkleTree(items)
        index = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
        assert tree.proof(index).verify(tree.root)

    @given(st.lists(st.text(max_size=8), min_size=2, max_size=16), st.data())
    @settings(max_examples=50, deadline=None)
    def test_leaf_substitution_always_detected(self, items, data):
        tree = MerkleTree(items)
        index = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
        proof = tree.proof(index)
        forged_leaf = items[index] + "-forged"
        forged = MerkleProof(leaf_index=index, leaf=forged_leaf, path=proof.path)
        assert not forged.verify(tree.root)


class TestAdversarialProofs:
    """The hardened verifier: index binding, size pinning, confusion attacks."""

    def _tree(self, size=5):
        return MerkleTree([f"item-{i}" for i in range(size)])

    def test_truncated_path_rejected(self):
        tree = self._tree(8)
        proof = tree.proof(3)
        truncated = MerkleProof(leaf_index=3, leaf=proof.leaf, path=proof.path[:-1])
        assert not truncated.verify(tree.root)
        # Even against the subtree root it would reach, the index no
        # longer fits the shortened path.
        assert not MerkleProof(leaf_index=7, leaf=proof.leaf,
                               path=proof.path[:2]).verify(tree.root)

    def test_swapped_sibling_flag_rejected(self):
        tree = self._tree(4)
        proof = tree.proof(2)
        sibling, is_right = proof.path[0]
        flipped = ((sibling, not is_right),) + proof.path[1:]
        assert not MerkleProof(leaf_index=2, leaf=proof.leaf, path=flipped).verify(tree.root)

    def test_negative_and_oversized_index_rejected(self):
        tree = self._tree(4)
        proof = tree.proof(1)
        assert not MerkleProof(leaf_index=-1, leaf=proof.leaf,
                               path=proof.path).verify(tree.root)
        assert not MerkleProof(leaf_index=4, leaf=proof.leaf,
                               path=proof.path).verify(tree.root)

    def test_duplicate_tail_phantom_index_rejected(self):
        # Odd levels duplicate the tail: without index binding, the last
        # leaf of a 3-leaf tree also "verifies" at phantom index 3.
        tree = self._tree(3)
        proof = tree.proof(2)
        # The phantom's level-0 parity differs, so the flag binding trips.
        phantom = MerkleProof(leaf_index=3, leaf=proof.leaf, path=proof.path)
        assert not phantom.verify(tree.root)
        # And tree_size pins the real leaf count regardless of the path.
        assert proof.verify(tree.root, tree_size=3)
        assert not MerkleProof(leaf_index=3, leaf=proof.leaf,
                               path=proof.path).verify(tree.root, tree_size=3)

    def test_tree_size_pins_path_length(self):
        tree = self._tree(8)
        proof = tree.proof(0)
        assert proof.verify(tree.root, tree_size=8)
        assert not proof.verify(tree.root, tree_size=4)   # depth mismatch
        assert not proof.verify(tree.root, tree_size=0)
        assert not proof.verify(tree.root, tree_size=-1)

    def test_leaf_interior_confusion_rejected(self):
        # Present an interior node as a leaf one level up: the leaf domain
        # prefix makes leaf_hash(x) != x for any interior hash, so a
        # shortened "proof" from an interior value cannot verify.
        tree = self._tree(4)
        interior = tree._levels[1][0]  # hash of leaves 0,1
        sibling = tree._levels[1][1]
        confused = MerkleProof(leaf_index=0, leaf=interior, path=((sibling, True),))
        assert not confused.verify(tree.root)
        # Sanity: the domain prefix is what breaks the equivalence.
        assert leaf_hash(interior) != interior
        assert _LEAF_PREFIX == "leaf|"

    def test_tree_depth(self):
        assert tree_depth(0) == 0
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(3) == 2
        assert tree_depth(8) == 3
        assert tree_depth(9) == 4

    @given(st.lists(st.text(max_size=8), min_size=1, max_size=33), st.data())
    @settings(max_examples=80, deadline=None)
    def test_prove_verify_round_trip_with_size(self, items, data):
        # Covers empty-ish edges via min sizes elsewhere; here every proof
        # must verify with its true tree_size and fail with a wrong index.
        tree = MerkleTree(items)
        index = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
        proof = tree.proof(index)
        assert proof.verify(tree.root, tree_size=len(items))
        wrong = (index + 1) % (1 << len(proof.path)) if proof.path else index + 1
        if wrong != index:
            assert not MerkleProof(leaf_index=wrong, leaf=proof.leaf,
                                   path=proof.path).verify(tree.root)

    @given(st.lists(st.text(max_size=8), min_size=0, max_size=17))
    @settings(max_examples=60, deadline=None)
    def test_proof_json_round_trip(self, items):
        tree = MerkleTree(items)
        for index in range(len(items)):
            proof = tree.proof(index)
            assert MerkleProof.from_dict(proof.to_dict()) == proof
