"""Merkle trees and inclusion proofs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.crypto.merkle import MerkleProof, MerkleTree, leaf_hash


class TestTreeConstruction:
    def test_empty_tree_has_stable_root(self):
        assert MerkleTree([]).root == MerkleTree([]).root

    def test_singleton_root_is_leaf_hash(self):
        assert MerkleTree(["x"]).root == leaf_hash("x")

    def test_root_depends_on_content(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["a", "c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    def test_root_of_shortcut(self):
        items = ["a", "b", "c"]
        assert MerkleTree.root_of(items) == MerkleTree(items).root

    def test_len(self):
        assert len(MerkleTree(["a", "b", "c"])) == 3

    def test_odd_count_differs_from_duplicated_tail(self):
        # The tree duplicates the tail internally, but ["a","b","c"] must
        # still hash differently from ["a","b","c","c"]... they collide in
        # naive constructions; ours inherits that standard caveat, so the
        # contract layer never relies on count — just assert determinism.
        assert MerkleTree(["a", "b", "c"]).root == MerkleTree(["a", "b", "c"]).root


class TestProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_all_proofs_verify(self, size):
        items = [f"item-{i}" for i in range(size)]
        tree = MerkleTree(items)
        for index in range(size):
            proof = tree.proof(index)
            assert proof.verify(tree.root), f"proof {index} failed for size {size}"

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        other = MerkleTree(["a", "b", "c", "e"])
        assert not tree.proof(0).verify(other.root)

    def test_proof_fails_for_modified_leaf(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        proof = tree.proof(1)
        forged = MerkleProof(leaf_index=1, leaf="tampered", path=proof.path)
        assert not forged.verify(tree.root)

    def test_proof_index_out_of_range(self):
        with pytest.raises(ValidationError):
            MerkleTree(["a"]).proof(1)

    def test_proof_path_length_is_logarithmic(self):
        tree = MerkleTree([str(i) for i in range(16)])
        assert len(tree.proof(0).path) == 4

    @given(st.lists(st.text(max_size=8), min_size=1, max_size=24),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_random_proofs_verify(self, items, data):
        tree = MerkleTree(items)
        index = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
        assert tree.proof(index).verify(tree.root)

    @given(st.lists(st.text(max_size=8), min_size=2, max_size=16), st.data())
    @settings(max_examples=50, deadline=None)
    def test_leaf_substitution_always_detected(self, items, data):
        tree = MerkleTree(items)
        index = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
        proof = tree.proof(index)
        forged_leaf = items[index] + "-forged"
        forged = MerkleProof(leaf_index=index, leaf=forged_leaf, path=proof.path)
        assert not forged.verify(tree.root)
