"""Self-driving elastic decision plane: the autoscale controller's
hysteresis band, shard warm-up, weighted rings, the gossiped cross-PEP
load view, and the harness wiring that binds them together."""

import pytest

from repro.accesscontrol.autoscale import AutoscaleController, CrossPepLoadView
from repro.accesscontrol.plane import ShardedPdpPlane, SinglePdpPlane
from repro.common.errors import ValidationError
from repro.harness import MonitoredFederation
from repro.simnet.simulator import Simulator
from repro.workload.generator import RequestGenerator, WorkloadConfig
from repro.workload.scenarios import (
    SCENARIO_FACTORIES,
    diurnal_scenario,
    healthcare_scenario,
)
from tests.conftest import fast_drams_config
from tests.test_elastic_plane import build_stack, request_with

SERVICE_KWARGS = {
    "base_processing_delay": 0.01,
    "per_rule_delay": 0.0,
    "serialize_evaluations": True,
}


class _FakeShard:
    def __init__(self, address):
        self.address = address


class ScriptedPlane(ShardedPdpPlane):
    """Controller testbed: the test scripts the signal, actuation is recorded.

    Subclasses the real plane (so ``bind`` accepts it) but never deploys;
    the backlog every shard reports is whatever the test sets ``level``
    to, and membership changes only move a counter.
    """

    def __init__(self, shards=2):
        super().__init__(shards=shards)
        self.level = 0.0
        self.count = shards
        self.events = []

    def projected_backlogs(self, origin=None):
        return {f"pdp-{i}": self.level for i in range(self.count)}

    def draining(self):
        return []

    def add_shard(self):
        self.count += 1
        self.shards = self.count
        self.events.append(("add", self.count))
        return _FakeShard(f"pdp-{self.count - 1}")

    def drain_shard(self, address=None):
        self.count -= 1
        self.shards = self.count
        self.events.append(("drain", self.count))
        return _FakeShard(f"pdp-{self.count}")


def scripted(plane=None, **kwargs):
    defaults = dict(
        min_shards=2,
        max_shards=4,
        high_water=0.1,
        low_water=0.01,
        decide_interval=0.05,
        up_cooldown=0.2,
        down_cooldown=0.6,
        down_samples=4,
    )
    defaults.update(kwargs)
    sim = Simulator()
    plane = plane or ScriptedPlane(shards=defaults["min_shards"])
    controller = AutoscaleController(**defaults).bind(plane, sim).start()
    return sim, plane, controller


class TestControllerHysteresis:
    def test_holds_inside_the_band(self):
        sim, plane, controller = scripted()
        plane.level = 0.05  # between low_water and high_water
        sim.run(until=5.0)
        assert controller.decisions > 50
        assert plane.events == []

    def test_scale_up_respects_cooldown_and_max(self):
        sim, plane, controller = scripted()
        plane.level = 1.0
        sim.run(until=5.0)
        assert [kind for kind, _ in plane.events] == ["add", "add"]
        assert plane.count == 4  # clamped at max_shards despite constant overload
        first, second = (a["at"] for a in controller.actions)
        assert second - first >= 0.2

    def test_scale_down_needs_sustained_low_signal(self):
        sim, plane, controller = scripted()
        plane.level = 0.0
        # Break the low streak every third tick: the signal dips but never
        # stays low for down_samples consecutive samples.
        flicker = {"n": 0}

        def perturb():
            flicker["n"] += 1
            plane.level = 1.0 if flicker["n"] % 3 == 0 else 0.0

        sim.every(0.05, perturb)
        sim.run(until=3.0)
        assert controller.scale_downs == 0

    def test_square_wave_actions_match_phases_no_thrash(self):
        # 1 s overloaded, 1 s idle, three periods.  A well-damped
        # controller adds only while high, drains only while low, and
        # never exceeds (max - min) actions per phase.
        sim, plane, controller = scripted()
        period, phases = 1.0, 6

        def wave():
            phase = int(sim.now // period)
            plane.level = 1.0 if phase % 2 == 0 else 0.0

        sim.every(0.01, wave)
        plane.level = 1.0
        sim.run(until=period * phases)
        assert controller.actions  # the wave actually drove actuation
        for action in controller.actions:
            phase = int(action["at"] // period)
            expected = "add" if phase % 2 == 0 else "drain"
            assert action["action"] == expected, controller.actions
        per_phase = {}
        for action in controller.actions:
            per_phase.setdefault(int(action["at"] // period), []).append(action)
        assert all(len(actions) <= 2 for actions in per_phase.values())
        assert 2 <= plane.count <= 4

    def test_min_equals_max_never_actuates(self):
        sim, plane, controller = scripted(
            plane=ScriptedPlane(shards=3), min_shards=3, max_shards=3
        )
        plane.level = 5.0
        sim.run(until=1.0)
        plane.level = 0.0
        sim.run(until=3.0)
        assert controller.decisions > 0
        assert plane.events == []
        assert controller.scale_ups == controller.scale_downs == 0

    def test_stop_halts_the_decide_loop(self):
        sim, plane, controller = scripted()
        plane.level = 1.0
        sim.run(until=0.3)
        assert controller.running
        controller.stop()
        decided = controller.decisions
        sim.run(until=2.0)
        assert controller.decisions == decided
        assert not controller.running


class TestControllerValidation:
    def test_band_must_have_width(self):
        with pytest.raises(ValidationError, match="high_water"):
            AutoscaleController(high_water=0.01, low_water=0.01)

    def test_bounds_must_order(self):
        with pytest.raises(ValidationError, match="max_shards"):
            AutoscaleController(min_shards=4, max_shards=2)

    def test_rejects_inelastic_plane(self):
        with pytest.raises(ValidationError, match="ShardedPdpPlane"):
            AutoscaleController().bind(SinglePdpPlane(), Simulator())

    def test_rejects_double_bind_and_premature_start(self):
        controller = AutoscaleController()
        with pytest.raises(ValidationError, match="bind"):
            controller.start()
        controller.bind(ScriptedPlane(), Simulator())
        with pytest.raises(ValidationError, match="already bound"):
            controller.bind(ScriptedPlane(), Simulator())


class TestShardWarmup:
    def _warmed_stack(self, **plane_kwargs):
        plane = ShardedPdpPlane(shards=3, cache_policy="partitioned", **plane_kwargs)
        stack = build_stack(plane)
        stack.issue_requests(40)
        stack.run(until=30.0)
        return plane, stack

    def test_preseeded_entries_bit_identical_to_donors(self):
        plane, stack = self._warmed_stack()
        donors = {
            (key, fingerprint): response
            for service in plane.services
            for key, fingerprint, response in service.decision_cache.export_entries()
        }
        assert donors
        added = plane.add_shard()
        expected = {
            keyed: response
            for keyed, response in donors.items()
            if plane.services[plane._shard_index_for_point(plane._key_point(keyed[0]))]
            is added
        }
        assert expected  # the new shard claimed some warmed key range
        seeded = {
            (key, fingerprint): response
            for key, fingerprint, response in added.decision_cache.export_entries()
        }
        assert seeded == expected
        assert plane.warmed_entries == len(expected)

    def test_warmed_shard_serves_without_recomputing(self):
        plane, stack = self._warmed_stack()
        added = plane.add_shard()
        hits_before = added.decision_cache.stats()["hits"]
        assert len(added.decision_cache) > 0
        stack.issue_requests(40)
        stack.run(until=stack.sim.now + 30.0)
        assert added.requests_served > 0
        assert added.decision_cache.stats()["hits"] > hits_before

    def test_warm_entries_flush_coherently_on_publish(self):
        plane, stack = self._warmed_stack()
        added = plane.add_shard()
        assert len(added.decision_cache) > 0
        stack.publish_policy(stack.scenario.policy_document)
        stack.run(until=stack.sim.now + 5.0)
        assert len(added.decision_cache) == 0  # seeded entries flushed too

    def test_shared_cache_needs_no_warmup(self):
        plane = ShardedPdpPlane(shards=2, cache_policy="shared")
        stack = build_stack(plane)
        stack.issue_requests(20)
        stack.run(until=20.0)
        added = plane.add_shard()
        assert added.decision_cache is plane.services[0].decision_cache
        assert plane.warmed_entries == 0

    def test_warm_caches_off_adds_cold_shard(self):
        plane, stack = self._warmed_stack(warm_caches=False)
        added = plane.add_shard()
        assert len(added.decision_cache) == 0
        assert plane.warmed_entries == 0


class TestWeightedShards:
    def test_default_weights_reproduce_unweighted_ring(self):
        weighted = ShardedPdpPlane(shards=3)
        baseline = ShardedPdpPlane(shards=3)
        build_stack(weighted, seed=41)
        build_stack(baseline, seed=41)
        assert weighted.set_shard_weights({"pdp-0@infrastructure": 1.0}) is False
        assert weighted._ring == baseline._ring

    def test_heavier_shard_owns_more_primaries(self):
        plane = ShardedPdpPlane(shards=2)
        build_stack(plane)
        heavy = plane.services[0].address

        def primaries():
            counts = {s.address: 0 for s in plane.services}
            for i in range(256):
                counts[plane.endpoints(request_with(role=f"role-{i}"))[0]] += 1
            return counts

        before = primaries()
        assert plane.set_shard_weights({heavy: 3.0}) is True
        after = primaries()
        assert after[heavy] > before[heavy]
        assert plane.shard_weights == {heavy: 3.0}

    def test_weight_validation(self):
        plane = ShardedPdpPlane(shards=2)
        build_stack(plane)
        with pytest.raises(ValidationError, match="no routable shard"):
            plane.set_shard_weights({"pdp-9@infrastructure": 2.0})
        with pytest.raises(ValidationError, match="positive"):
            plane.set_shard_weights({plane.services[0].address: 0.0})

    def test_controller_weights_follow_observed_service_rate(self):
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane)
        controller = AutoscaleController(
            weight_shards=True, min_shards=1, max_shards=4
        ).bind(plane, stack.sim)
        fast, slow = plane.services
        fast.requests_served, fast.busy_accumulated = 400, 1.0  # 400/s observed
        slow.requests_served, slow.busy_accumulated = 100, 1.0  # 100/s observed
        controller._reweight()
        weights = plane.shard_weights
        assert weights[fast.address] == pytest.approx(1.6)
        assert weights[slow.address] == pytest.approx(0.4)
        assert controller.reweights == 1

    def test_homogeneous_pool_never_rebalances(self):
        plane = ShardedPdpPlane(shards=2)
        stack = build_stack(plane)
        controller = AutoscaleController(weight_shards=True).bind(plane, stack.sim)
        for service in plane.services:
            service.requests_served, service.busy_accumulated = 200, 1.0
        rebalances = plane.rebalances
        controller._reweight()
        assert plane.rebalances == rebalances
        assert controller.reweights == 0
        assert plane.shard_weights == {}


def gossip_stack(view=None, seed=51, **plane_kwargs):
    view = view or CrossPepLoadView(gossip_interval=0.05, horizon=0.2)
    plane = ShardedPdpPlane(
        shards=3,
        queue_aware=True,
        service_kwargs=dict(SERVICE_KWARGS),
        load_view=view,
        **plane_kwargs,
    )
    stack = build_stack(plane, seed=seed)
    return view, plane, stack


class TestGossipLoadView:
    def test_requires_queue_aware_routing(self):
        with pytest.raises(ValidationError, match="queue_aware"):
            ShardedPdpPlane(shards=2, load_view=CrossPepLoadView())

    def test_one_node_per_member_tenant(self):
        view, plane, stack = gossip_stack()
        assert view.deployed
        for tenant in stack.federation.member_tenants:
            node = view.node_for(tenant.name)
            assert node is not None
            assert node.address == f"loadview@{tenant.name}"

    def test_dispatch_seen_locally_first_then_gossiped(self):
        view, plane, stack = gossip_stack()
        pep = stack.peps["tenant-1"]
        pep.submit(request_with(origin="tenant-1"))
        own = view.projection_for("tenant-1")
        assert sum(own.values()) > 0
        assert sum(view.projection_for("tenant-2").values()) == 0
        stack.run(until=0.08)  # one gossip round plus delivery latency
        peer = view.projection_for("tenant-2")
        assert sum(peer.values()) > 0

    def test_converges_after_message_loss(self):
        view, plane, stack = gossip_stack()
        network = stack.federation.network
        network.set_drop_rate(1.0)
        stack.run(until=0.5)  # every gossip round lost
        receiver = view.node_for("tenant-2")
        sender = view.node_for("tenant-1")
        assert receiver.peer_seqs().get("tenant-1") is None
        network.set_drop_rate(0.0)
        stack.run(until=0.6)  # healed rounds repair the view (full snapshots)
        # Converged up to the round whose delivery may still be in flight.
        assert receiver.peer_seqs()["tenant-1"] >= sender.seq - 1

    def test_stale_peer_snapshots_expire(self):
        view, plane, stack = gossip_stack()
        pep = stack.peps["tenant-1"]
        pep.submit(request_with(origin="tenant-1"))
        stack.run(until=0.08)
        assert sum(view.projection_for("tenant-2").values()) > 0
        view.stop()  # silence gossip: the last snapshot ages out
        stack.run(until=1.5)
        assert sum(view.projection_for("tenant-2").values()) == 0

    def test_decisions_identical_with_and_without_gossip(self):
        def outcomes(load_view):
            plane = ShardedPdpPlane(
                shards=3,
                queue_aware=True,
                service_kwargs=dict(SERVICE_KWARGS),
                load_view=load_view,
            )
            stack = build_stack(plane, scenario=healthcare_scenario(), seed=61)
            stack.issue_requests(60)
            stack.run(until=60.0)
            return sorted(
                (
                    outcome.requested_at,
                    outcome.decision.decision,
                    outcome.decision.status_code,
                )
                for outcome in stack.outcomes
            )

        assert outcomes(None) == outcomes(CrossPepLoadView(gossip_interval=0.05))


class TestDiurnalWorkload:
    def test_diurnal_scenario_registered_ninth(self):
        names = [factory().name for factory in SCENARIO_FACTORIES]
        assert names[8] == "diurnal"
        assert len(names) >= 9

    def test_rate_curve_peaks_and_troughs(self):
        from repro.common.rng import SeededRng

        scenario = diurnal_scenario()
        config = scenario.workload
        generator = RequestGenerator(config, SeededRng(7))
        peak = config.arrival_rate
        assert generator.arrival_rate_at(0.0) == pytest.approx(peak)
        assert generator.arrival_rate_at(config.arrival_period / 2) == pytest.approx(
            peak * config.arrival_trough
        )
        assert generator.arrival_rate_at(config.arrival_period) == pytest.approx(peak)

    def test_stream_is_denser_at_the_peak_than_the_trough(self):
        scenario = diurnal_scenario()
        from repro.common.rng import SeededRng

        generator = RequestGenerator(scenario.workload, SeededRng(7))
        times = [request.at for request in generator.requests(900)]
        period = scenario.workload.arrival_period
        peak_window = sum(1 for t in times if t < period / 4)
        trough_window = sum(1 for t in times if 3 * period / 8 <= t < 5 * period / 8)
        assert peak_window > 2 * trough_window

    def test_homogeneous_streams_stay_flat(self):
        from repro.common.rng import SeededRng

        generator = RequestGenerator(WorkloadConfig(), SeededRng(7))
        assert generator.arrival_rate_at(0.0) == generator.arrival_rate_at(123.4)

    def test_trough_validation(self):
        with pytest.raises(ValidationError, match="arrival_trough"):
            WorkloadConfig(arrival_period=5.0, arrival_trough=0.0)
        with pytest.raises(ValidationError, match="arrival_period"):
            WorkloadConfig(arrival_period=-1.0)


class TestHarnessWiring:
    def test_build_binds_and_starts_the_controller(self):
        controller = AutoscaleController(
            min_shards=1, max_shards=4, decide_interval=0.05
        )
        stack = MonitoredFederation.build(
            diurnal_scenario(),
            with_drams=False,
            plane=ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS)),
            autoscaler=controller,
        )
        assert stack.autoscaler is controller
        assert controller.running
        stack.issue_requests(250, start_at=0.1)
        stack.run(until=8.0)
        assert len(stack.outcomes) == 250
        assert controller.scale_ups > 0  # grew into the opening peak
        assert controller.scale_downs > 0  # shed shards into the trough
        assert sum(pep.timeouts for pep in stack.peps.values()) == 0

    def test_autoscaler_rejects_single_evaluator_plane(self):
        with pytest.raises(ValidationError, match="ShardedPdpPlane"):
            MonitoredFederation.build(
                healthcare_scenario(),
                with_drams=False,
                autoscaler=AutoscaleController(),
            )

    def test_idle_controller_keeps_decisions_bit_identical(self):
        from repro.common.ids import reset_id_counter

        def decisions(autoscaler):
            reset_id_counter()
            stack = MonitoredFederation.build(
                healthcare_scenario(),
                seed=71,
                with_drams=False,
                plane=ShardedPdpPlane(shards=3, service_kwargs=dict(SERVICE_KWARGS)),
                autoscaler=autoscaler,
            )
            stack.issue_requests(50)
            stack.run(until=60.0)
            return [
                (outcome.requested_at, outcome.decision.to_dict())
                for outcome in sorted(stack.outcomes, key=lambda o: o.requested_at)
            ]

        pinned = AutoscaleController(min_shards=3, max_shards=3, decide_interval=0.05)
        assert decisions(None) == decisions(pinned)

    def test_monitored_controller_churn_stays_attributed(self):
        # Controller-initiated add/drain under DRAMS: probes follow the
        # membership events, so every decision is still re-checked and no
        # alert fires.
        controller = AutoscaleController(
            min_shards=1,
            max_shards=3,
            decide_interval=0.05,
            down_cooldown=0.5,
            down_samples=4,
        )
        plane = ShardedPdpPlane(shards=2, service_kwargs=dict(SERVICE_KWARGS))
        stack = MonitoredFederation.build(
            diurnal_scenario(),
            seed=81,
            with_drams=True,
            drams_config=fast_drams_config(),
            plane=plane,
            autoscaler=controller,
        )
        stack.start()
        stack.issue_requests(150, start_at=0.1)
        stack.run(until=40.0)
        assert len(stack.outcomes) == 150
        assert controller.scale_ups + controller.scale_downs > 0
        assert stack.drams.alerts.count() == 0
        analyser = stack.drams.analyser
        assert analyser.checked == len(stack.outcomes)
        assert not plane.draining()
