"""Scenario-generator property suite.

Four claims, stacked from document level up to full deployments:

- **Conformance** — every hand-built scenario in
  :data:`~repro.workload.scenarios.SCENARIO_FACTORIES` is expressible as
  a :class:`ScenarioSpec`: the compiled preset has an equal workload
  config and agrees with the hand-built policy on decisions *and*
  obligations over sampled requests (churn generations included).
- **Validity** — tree-synthesised specs honour the generator's
  guarantees on every hypothesis draw: all roles reachable, all service
  classes readable, a permit path for every tenant.
- **Determinism** — same spec + same seed reproduces the documents and
  workload exactly, and a rebuilt stack replays bit-identical decisions,
  alerts and chain head; streaming issuance enforces the same outcomes
  as the materialised batch path.
- **Soundness / completeness** — honest random federations raise zero
  alerts; every threat class in a spec's attack mix is detected.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.properties import sample_requests
from repro.common.ids import reset_id_counter
from repro.common.rng import SeededRng
from repro.crypto.hashing import hash_value
from repro.scenariogen import (
    ArrivalSpec,
    FederationShape,
    PopulationSpec,
    PRESET_SPECS,
    ScenarioSpec,
    TreeSpec,
    build_stack_from_spec,
    default_attacks,
    generate_scenario,
    preset_spec,
    spec_from_json,
    spec_to_json,
    validity_report,
)
from repro.threats.adversary import Adversary
from repro.workload.scenarios import SCENARIO_FACTORIES
from repro.xacml.context import RequestContext
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint
from tests.conftest import fast_drams_config
from tests.strategies import scenario_specs

CONFORMANCE_SAMPLES = 80

#: A fixed tree-synthesised spec small enough for stack-level runs.
SMALL_SPEC = ScenarioSpec(
    name="prop-small",
    roles=("analyst", "operator", "auditor"),
    tree=TreeSpec(classes=3, depth=1, width=2, audited_fraction=0.5),
    federation=FederationShape(clouds=2),
    population=PopulationSpec(subjects=12, resources=24, read_fraction=0.7),
    arrival=ArrivalSpec(rate=2.0),
    description="small synthetic federation for stack-level properties",
)


def _verdicts(document: dict, requests: list) -> list:
    """Decision + obligations for each request, under one compiled PDP."""
    pdp = PolicyDecisionPoint(policy_from_dict(document))
    out = []
    for request in requests:
        result = pdp.evaluate(RequestContext.from_dict(request))
        out.append((result.decision.value, hash_value(result.obligations)))
    return out


def _build_and_run(spec, *, seed, requests=10, horizon=30.0, **build_kwargs):
    # Two builds inside one test must start from the same id origin for
    # bit-identity; the autouse fixture only resets between tests.
    reset_id_counter()
    stack = build_stack_from_spec(
        spec, seed=seed, drams_config=fast_drams_config(), **build_kwargs)
    stack.start()
    stack.issue_requests(requests)
    stack.run(until=horizon)
    return stack


def _fingerprint(stack) -> dict:
    decisions = sorted(
        (
            round(o.requested_at, 9),
            hash_value(o.request.content),
            o.decision.decision,
            hash_value(o.decision.obligations),
            o.decision.status_code,
        )
        for o in stack.outcomes
    )
    alerts = sorted(a.alert_type.value for a in stack.drams.alerts.all())
    return {"decisions": decisions, "alerts": alerts,
            "chain_head": stack.drams.reference_chain().head.hash}


# -- conformance to the hand-built corpus --------------------------------------


class TestPresetConformance:
    @pytest.mark.parametrize(
        "factory,spec_factory",
        list(zip(SCENARIO_FACTORIES, PRESET_SPECS)),
        ids=[factory().name for factory in SCENARIO_FACTORIES])
    def test_compiled_preset_matches_hand_built(self, factory, spec_factory):
        hand = factory()
        spec = spec_factory()
        compiled = generate_scenario(spec)
        assert compiled.name == hand.name
        assert compiled.workload == hand.workload
        assert len(compiled.policy_variants) == len(hand.policy_variants)
        rng = SeededRng(7, f"conformance/{hand.name}")
        requests = list(sample_requests(hand.domain, CONFORMANCE_SAMPLES, rng))
        assert _verdicts(compiled.policy_document, requests) == _verdicts(
            hand.policy_document, requests)
        for hand_doc, compiled_doc in zip(
                hand.policy_variants, compiled.policy_variants):
            assert _verdicts(compiled_doc, requests) == _verdicts(
                hand_doc, requests)

    def test_preset_lookup(self):
        assert preset_spec("healthcare").name == "healthcare"
        with pytest.raises(KeyError):
            preset_spec("nonesuch")


# -- spec serialisation --------------------------------------------------------


class TestSpecJson:
    @pytest.mark.parametrize(
        "spec_factory", PRESET_SPECS,
        ids=[factory().name for factory in PRESET_SPECS])
    def test_preset_round_trip(self, spec_factory):
        spec = spec_factory()
        assert spec_from_json(spec_to_json(spec)) == spec

    @given(scenario_specs())
    @settings(max_examples=50, deadline=None)
    def test_sampled_round_trip(self, spec):
        assert spec_from_json(spec_to_json(spec)) == spec


# -- validity guarantees -------------------------------------------------------


class TestValidityGuarantees:
    @given(scenario_specs(), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_tree_synthesised_specs_are_valid(self, spec, seed):
        report = validity_report(spec, seed=seed)
        assert report["ok"], report


# -- determinism ---------------------------------------------------------------


class TestDeterminism:
    @given(scenario_specs(), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_same_spec_same_seed_compiles_identically(self, spec, seed):
        first = generate_scenario(spec, seed=seed)
        second = generate_scenario(spec, seed=seed)
        assert first.policy_document == second.policy_document
        assert first.workload == second.workload
        assert first.policy_variants == second.policy_variants

    def test_stack_rerun_is_bit_identical(self):
        first = _fingerprint(_build_and_run(SMALL_SPEC, seed=11))
        second = _fingerprint(_build_and_run(SMALL_SPEC, seed=11))
        assert first == second
        assert first["decisions"], "the run must actually enforce decisions"

    def test_different_seed_diverges(self):
        """The fingerprint is sensitive — different seed, different run."""
        first = _fingerprint(_build_and_run(SMALL_SPEC, seed=11))
        second = _fingerprint(_build_and_run(SMALL_SPEC, seed=12))
        assert first["chain_head"] != second["chain_head"]


# -- streaming issuance --------------------------------------------------------


class TestStreamingHarness:
    def _build(self):
        reset_id_counter()
        stack = build_stack_from_spec(SMALL_SPEC, with_drams=False)
        stack.start()
        return stack

    def test_stream_enforces_same_outcomes_as_batch(self):
        batch = self._build()
        batch.issue_requests(40)
        batch.run(until=60.0)

        streamed = self._build()
        handle = streamed.issue_stream(40, record_outcomes=True)
        streamed.run(until=60.0)

        def outcome_key(outcome):
            return (round(outcome.requested_at, 9),
                    hash_value(outcome.request.content),
                    outcome.decision.decision,
                    outcome.decision.status_code)

        assert handle.issued == 40
        assert handle.enforced == len(batch.outcomes)
        assert handle.granted == sum(1 for o in batch.outcomes if o.granted)
        assert sorted(map(outcome_key, streamed.outcomes)) == sorted(
            map(outcome_key, batch.outcomes))

    def test_stream_default_keeps_outcomes_empty(self):
        stack = self._build()
        handle = stack.issue_stream(25)
        stack.run(until=60.0)
        assert handle.enforced == 25
        assert stack.outcomes == []
        snapshot = handle.metrics.snapshot()
        assert snapshot["count"] == 25
        assert sum(w["count"] for w in snapshot["windows"]) == 25


# -- monitor soundness ---------------------------------------------------------


class TestMonitorSoundness:
    @given(scenario_specs())
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_honest_random_federations_raise_no_alerts(self, spec):
        reset_id_counter()
        stack = build_stack_from_spec(
            spec, drams_config=fast_drams_config())
        stack.start()
        stack.issue_requests(6)
        stack.run(until=25.0)
        assert len(stack.outcomes) == 6
        assert stack.drams.alerts.count() == 0, stack.drams.alerts.all()


# -- attack-mix completeness ---------------------------------------------------


#: Threat class → stack seed giving it traffic to act on (as in
#: test_threats, detection of traffic-dependent attacks like log-tamper
#: needs the tampered tenant to actually enforce mismatching decisions).
ATTACK_MIX = (
    ("request-tamper", 51),
    ("decision-tamper", 52),
    ("pdp-circumvention", 53),
    ("evaluation-tamper", 54),
    ("policy-swap", 55),
    ("log-tamper", 58),
    ("replay", 60),
)


class TestAttackMixCompleteness:
    def test_campaign_is_deterministic(self):
        names = tuple(name for name, _ in ATTACK_MIX)
        spec = dataclasses.replace(preset_spec("healthcare"), attacks=names)
        first = default_attacks(spec, seed=5)
        second = default_attacks(spec, seed=5)
        assert [type(a).__name__ for a in first] == [
            type(a).__name__ for a in second]
        assert len(first) == len(names)

    @pytest.mark.parametrize("attack_name,seed", ATTACK_MIX,
                             ids=[name for name, _ in ATTACK_MIX])
    def test_every_injected_class_is_detected(self, attack_name, seed):
        spec = dataclasses.replace(
            preset_spec("healthcare"), attacks=(attack_name,))
        (attack,) = default_attacks(spec, seed=5)
        reset_id_counter()
        stack = build_stack_from_spec(
            spec, seed=seed, drams_config=fast_drams_config())
        stack.start()
        adversary = Adversary(stack.drams)
        adversary.launch(attack, at=0.2)
        stack.issue_requests(8)
        if attack_name == "replay":
            # The replay envelope only fires when the attacker re-submits
            # it; capture during the run, replay mid-stream.
            stack.sim.schedule(10.0, lambda: attack.replay_now(
                stack.drams, {"subject-id": "mallory",
                              "role": spec.roles[0]}))
        stack.run(until=40.0)
        record = adversary.records()[0]
        assert record.detected, f"{attack_name} went undetected"
        assert adversary.false_positives() == []
