"""Simulated network: delivery, partitions, drops, latency models."""

import pytest

from repro.common.errors import NetworkError
from repro.simnet.latency import (
    ConstantLatency,
    LanProfile,
    LognormalLatency,
    UniformLatency,
    WanProfile,
)
from repro.simnet.network import Host, Message, Network


class Recorder(Host):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.received: list[Message] = []

    def receive(self, message):
        self.received.append(message)


class TestLatencyModels:
    def test_constant_latency(self, rng):
        model = ConstantLatency(0.01)
        assert model.sample(rng) == 0.01

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_bandwidth_term_scales_with_size(self, rng):
        model = ConstantLatency(0.0, bandwidth_bps=8000)  # 1000 bytes/sec
        assert model.sample(rng, size_bytes=1000) == pytest.approx(1.0)

    def test_uniform_latency_within_bounds(self, rng):
        model = UniformLatency(0.01, 0.02)
        for _ in range(100):
            assert 0.01 <= model.sample(rng) <= 0.02

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.02, 0.01)

    def test_lognormal_positive_and_spread(self, rng):
        model = LognormalLatency(median=0.025, sigma=0.3)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(s > 0 for s in samples)
        assert min(samples) < 0.025 < max(samples)

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LognormalLatency(median=0)
        with pytest.raises(ValueError):
            LognormalLatency(median=0.1, sigma=-1)

    def test_profiles_order(self, rng):
        lan = sum(LanProfile().sample(rng) for _ in range(200)) / 200
        wan = sum(WanProfile().sample(rng) for _ in range(200)) / 200
        assert lan * 10 < wan


class TestDelivery:
    def test_message_delivered_after_latency(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(0.5))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "ping", {"x": 1})
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].payload == {"x": 1}
        assert sim.now == pytest.approx(0.5, abs=1e-9)

    def test_unknown_destination_drops(self, sim, rng):
        net = Network(sim, rng)
        a = Recorder(net, "a")
        assert a.send("ghost", "ping", {}) is None
        assert net.stats.dropped == 1

    def test_unknown_source_raises(self, sim, rng):
        net = Network(sim, rng)
        Recorder(net, "a")
        with pytest.raises(NetworkError):
            net.send("ghost", "a", "ping", {})

    def test_duplicate_address_rejected(self, sim, rng):
        net = Network(sim, rng)
        Recorder(net, "a")
        with pytest.raises(NetworkError):
            Recorder(net, "a")

    def test_per_pair_latency_override(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(1.0))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        net.set_latency("a", "b", ConstantLatency(0.1))
        a.send("b", "fast", {})
        sim.run()
        assert sim.now == pytest.approx(0.1, abs=1e-9)

    def test_detach_stops_delivery(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(0.1))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "ping", {})
        net.detach("b")
        sim.run()
        assert b.received == []

    def test_broadcast_reaches_all_but_sender(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(0.01))
        hosts = [Recorder(net, f"h{i}") for i in range(4)]
        count = net.broadcast("h0", "hello", {"n": 1})
        sim.run()
        assert count == 3
        assert all(len(h.received) == 1 for h in hosts[1:])
        assert hosts[0].received == []

    def test_stats_track_bytes(self, sim, rng):
        net = Network(sim, rng)
        a = Recorder(net, "a")
        Recorder(net, "b")
        a.send("b", "ping", {"payload": "x" * 100})
        assert net.stats.bytes_sent > 100


class TestPartitions:
    def test_partition_blocks_both_directions(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(0.01))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        net.partition(["a"], ["b"])
        a.send("b", "ping", {})
        b.send("a", "pong", {})
        sim.run()
        assert a.received == [] and b.received == []
        assert net.stats.dropped == 2

    def test_heal_restores_traffic(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(0.01))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        net.partition(["a"], ["b"])
        net.heal()
        a.send("b", "ping", {})
        sim.run()
        assert len(b.received) == 1

    def test_partition_mid_flight_drops_message(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(1.0))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        a.send("b", "ping", {})
        sim.schedule(0.5, lambda: net.partition(["a"], ["b"]))
        sim.run()
        assert b.received == []


class TestDropsAndTaps:
    def test_drop_rate_one_drops_everything(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(0.01))
        a = Recorder(net, "a")
        b = Recorder(net, "b")
        net.set_drop_rate(1.0)
        for _ in range(10):
            a.send("b", "ping", {})
        sim.run()
        assert b.received == []

    def test_drop_rate_validation(self, sim, rng):
        net = Network(sim, rng)
        with pytest.raises(ValueError):
            net.set_drop_rate(1.5)

    def test_tap_sees_all_messages(self, sim, rng):
        net = Network(sim, rng, ConstantLatency(0.01))
        a = Recorder(net, "a")
        Recorder(net, "b")
        seen = []
        net.add_tap(lambda msg: seen.append(msg.kind))
        a.send("b", "one", {})
        a.send("ghost", "two", {})  # dropped, but tapped
        sim.run()
        assert seen == ["one", "two"]
