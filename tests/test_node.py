"""Gossiping blockchain nodes on the simulated network."""

from repro.blockchain.config import BlockchainConfig
from repro.blockchain.contracts import ContractRegistry, KeyValueContract
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.common.rng import SeededRng
from repro.crypto.signatures import SigningKey
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator


def build_cluster(n=3, latency=0.005, hashrate=256.0, seed=5, **config_overrides):
    rng = SeededRng(seed, "node-tests")
    sim = Simulator()
    net = Network(sim, rng, ConstantLatency(latency))
    registry = ContractRegistry()
    registry.deploy(KeyValueContract())
    defaults = dict(chain_id="cluster", difficulty_bits=8.0,
                    target_block_interval=0.5, retarget_window=0,
                    pow_mode="simulated", confirmations=1)
    defaults.update(config_overrides)
    config = BlockchainConfig(**defaults)
    keys = {f"n{i}": SigningKey.generate(f"n{i}".encode()) for i in range(n)}
    client_key = SigningKey.generate(b"client")
    all_keys = {name: key.public for name, key in keys.items()}
    all_keys["client"] = client_key.public
    nodes = [
        BlockchainNode(net, f"n{i}", config, registry, rng,
                       key_lookup=all_keys.get, signing_key=keys[f"n{i}"],
                       hashrate=hashrate)
        for i in range(n)
    ]
    addresses = [node.address for node in nodes]
    for node in nodes:
        node.connect(addresses)
    return sim, net, nodes, client_key


def client_tx(seq, key, value, client_key):
    return Transaction(sender="client", contract="kvstore", method="put",
                       args={"key": key, "value": value}, seq=seq).sign(client_key)


class TestConvergence:
    def test_all_nodes_converge_to_one_head(self):
        sim, net, nodes, client_key = build_cluster(n=4)
        for node in nodes:
            node.start()
        sim.run(until=20.0)
        heads = {node.chain.head.hash for node in nodes}
        assert len(heads) == 1
        assert nodes[0].chain.height > 10

    def test_transaction_reaches_all_states(self):
        sim, net, nodes, client_key = build_cluster(n=3)
        for node in nodes:
            node.start()
        nodes[0].submit_transaction(client_tx(1, "shared", 42, client_key))
        sim.run(until=15.0)
        for node in nodes:
            assert node.chain.state_of("kvstore")["data"].get("shared") == 42

    def test_submission_to_any_node_works(self):
        sim, net, nodes, client_key = build_cluster(n=3)
        for node in nodes:
            node.start()
        for i, node in enumerate(nodes):
            node.submit_transaction(client_tx(i + 1, f"k{i}", i, client_key))
        sim.run(until=15.0)
        data = nodes[0].chain.state_of("kvstore")["data"]
        assert data == {"k0": 0, "k1": 1, "k2": 2}

    def test_non_mining_node_follows_chain(self):
        sim, net, nodes, client_key = build_cluster(n=3)
        nodes[2].mining_enabled = False
        for node in nodes:
            node.start()
        sim.run(until=10.0)
        assert nodes[2].blocks_mined == 0
        assert nodes[2].chain.height == nodes[0].chain.height


class TestGossip:
    def test_duplicate_tx_not_resubmitted(self):
        sim, net, nodes, client_key = build_cluster(n=2)
        tx = client_tx(1, "a", 1, client_key)
        assert nodes[0].submit_transaction(tx)
        assert not nodes[0].submit_transaction(tx)

    def test_invalid_tx_rejected_at_submission(self):
        sim, net, nodes, client_key = build_cluster(n=2)
        rogue = SigningKey.generate(b"rogue")
        tx = Transaction(sender="rogue", contract="kvstore", method="put",
                         args={"key": "a", "value": 1}, seq=1).sign(rogue)
        assert not nodes[0].submit_transaction(tx)

    def test_partitioned_node_catches_up_after_heal(self):
        sim, net, nodes, client_key = build_cluster(n=3)
        for node in nodes:
            node.start()
        nodes[2].mining_enabled = False
        nodes[2].stop()
        net.partition([nodes[2].address],
                      [nodes[0].address, nodes[1].address])
        nodes[0].submit_transaction(client_tx(1, "during-partition", 1, client_key))
        sim.run(until=10.0)
        assert nodes[2].chain.height == 0
        net.heal()
        # A fresh block after healing triggers parent-fetch resync.
        sim.run(until=25.0)
        assert nodes[2].chain.height > 0
        assert (nodes[2].chain.state_of("kvstore")["data"].get("during-partition")
                == 1)


class TestMining:
    def test_miners_share_rewardless_work(self):
        sim, net, nodes, client_key = build_cluster(n=3, hashrate=512.0)
        for node in nodes:
            node.start()
        sim.run(until=20.0)
        mined = [node.blocks_mined for node in nodes]
        assert sum(mined) >= nodes[0].chain.height
        assert all(m > 0 for m in mined)  # everyone wins sometimes

    def test_unequal_hashrate_biases_production(self):
        sim, net, nodes, client_key = build_cluster(n=2, hashrate=256.0)
        nodes[0].hashrate = 2048.0
        for node in nodes:
            node.start()
        sim.run(until=30.0)
        assert nodes[0].blocks_mined > nodes[1].blocks_mined

    def test_stop_halts_mining(self):
        sim, net, nodes, client_key = build_cluster(n=2)
        for node in nodes:
            node.start()
        sim.run(until=5.0)
        mined_before = nodes[0].blocks_mined
        nodes[0].stop()
        nodes[1].stop()
        sim.run(until=10.0)
        assert nodes[0].blocks_mined == mined_before

    def test_head_listener_fires(self):
        sim, net, nodes, client_key = build_cluster(n=2)
        heights = []
        nodes[0].on_head_change(lambda head: heights.append(head.height))
        for node in nodes:
            node.start()
        sim.run(until=5.0)
        assert heights and heights == sorted(heights)
