"""Shared hypothesis strategies for the property suites.

Promoted from the ad-hoc definitions that grew inside
``test_differential.py`` (random XACML policy trees and requests) and
``test_monitoring_fastpath.py`` (random transactions, headers and
JSON-safe argument dicts), plus the workload- and scenario-spec
strategies the scenariogen property suite samples federations from.
Import from here; don't re-declare per test file.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.blockchain.block import BlockHeader
from repro.blockchain.transaction import Transaction
from repro.crypto.signatures import SigningKey
from repro.scenariogen.spec import (
    ArrivalSpec,
    FederationShape,
    PopulationSpec,
    ScenarioSpec,
    TreeSpec,
)
from repro.workload.generator import WorkloadConfig
from repro.xacml.attributes import DataType

# -- XACML policy-tree strategies (ex test_differential) -----------------------

ROLES = ["doctor", "nurse", "clerk"]
ACTIONS = ["read", "write"]
TYPES = ["record", "report"]

rule_combinings = st.sampled_from(
    ["deny-overrides", "permit-overrides", "first-applicable",
     "deny-unless-permit", "permit-unless-deny"])
policy_combinings = st.sampled_from(
    ["deny-overrides", "permit-overrides", "first-applicable",
     "only-one-applicable", "deny-unless-permit", "permit-unless-deny"])


def match_doc(function, value, category, attribute_id, data_type=DataType.STRING):
    return {"function": function, "value": value, "category": category,
            "attribute_id": attribute_id, "data_type": data_type}


matches = st.one_of(
    st.sampled_from(ROLES).map(
        lambda r: match_doc("string-equal", r, "subject", "role")),
    st.sampled_from(ACTIONS).map(
        lambda a: match_doc("string-equal", a, "action", "action-id")),
    st.sampled_from(TYPES).map(
        lambda t: match_doc("string-equal", t, "resource", "type")),
    st.integers(min_value=1, max_value=5).map(
        lambda n: match_doc("integer-less-than", n, "subject", "clearance",
                            DataType.INTEGER)),
)

targets = st.one_of(
    st.none(),
    st.lists(  # any_ofs
        st.lists(  # all_ofs
            st.lists(matches, min_size=1, max_size=2),
            min_size=1, max_size=2),
        min_size=1, max_size=2),
)

# Conditions: boolean expressions over the same vocabulary; includes
# constructs that can raise (one-and-only over a possibly-missing attribute)
# so indeterminate paths are exercised too.
conditions = st.one_of(
    st.none(),
    st.booleans().map(lambda b: {"literal": b, "data_type": "boolean"}),
    st.sampled_from(ACTIONS).map(lambda a: {
        "apply": "any-of",
        "arguments": [
            {"literal": "string-equal", "data_type": "string"},
            {"literal": a, "data_type": "string"},
            {"designator": {"category": "action", "attribute_id": "action-id",
                            "data_type": "string", "must_be_present": False}},
        ]}),
    st.integers(min_value=1, max_value=5).map(lambda n: {
        "apply": "integer-greater-than-or-equal",
        "arguments": [
            {"apply": "one-and-only", "arguments": [
                {"designator": {"category": "subject",
                                "attribute_id": "clearance",
                                "data_type": "integer",
                                "must_be_present": False}}]},
            {"literal": n, "data_type": "integer"},
        ]}),
    st.just({
        "apply": "one-and-only",
        "arguments": [{"designator": {
            "category": "environment", "attribute_id": "ghost",
            "data_type": "string", "must_be_present": True}}],
    }),
)


@st.composite
def rules(draw, index=0):
    return {
        "rule_id": f"rule-{draw(st.integers(0, 999))}",
        "effect": draw(st.sampled_from(["Permit", "Deny"])),
        "target": draw(targets),
        "condition": draw(conditions),
        "description": "",
    }


@st.composite
def policies(draw):
    return {
        "kind": "policy",
        "policy_id": f"policy-{draw(st.integers(0, 999))}",
        "rule_combining": draw(rule_combinings),
        "target": draw(targets),
        "rules": draw(st.lists(rules(), min_size=1, max_size=4)),
        "obligations": [],
        "description": "",
    }


@st.composite
def policy_sets(draw, depth=1):
    children = st.lists(
        policies() if depth <= 0 else st.one_of(policies(), policy_sets(depth - 1)),
        min_size=1, max_size=3)
    return {
        "kind": "policy_set",
        "policy_set_id": f"set-{draw(st.integers(0, 999))}",
        "policy_combining": draw(policy_combinings),
        "target": draw(targets),
        "children": draw(children),
        "obligations": [],
        "description": "",
    }


documents = st.one_of(policies(), policy_sets(depth=1))


@st.composite
def request_dicts(draw):
    request: dict = {
        "subject": {"role": [draw(st.sampled_from(ROLES))]},
        "action": {"action-id": [draw(st.sampled_from(ACTIONS))]},
        "resource": {"type": [draw(st.sampled_from(TYPES))]},
    }
    if draw(st.booleans()):
        request["subject"]["clearance"] = [draw(st.integers(1, 5))]
    if draw(st.booleans()):
        request["subject"]["role"].append(draw(st.sampled_from(ROLES)))
    return request


# -- monitoring-plane strategies (ex test_monitoring_fastpath) -----------------

FASTPATH_KEY = SigningKey.generate(b"fastpath-tests")

# JSON-safe argument values (what contract calls actually carry).
json_values = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(-2**40, 2**40),
              st.floats(allow_nan=False, allow_infinity=False, width=32),
              st.text(max_size=12)),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3)),
    max_leaves=8)

args_dicts = st.dictionaries(st.text(min_size=1, max_size=8), json_values,
                             max_size=4)


@st.composite
def transactions(draw, signed=st.booleans()):
    tx = Transaction(
        sender=draw(st.sampled_from(["li-1", "li-2", "analyser"])),
        contract="drams-monitor",
        method=draw(st.sampled_from(["record_log", "tick"])),
        args=draw(args_dicts),
        seq=draw(st.integers(1, 10_000)),
    )
    if draw(signed):
        tx.sign(FASTPATH_KEY)
    return tx


@st.composite
def headers(draw):
    return BlockHeader(
        height=draw(st.integers(0, 10_000)),
        prev_hash=draw(st.text(alphabet="0123456789abcdef", min_size=8, max_size=64)),
        merkle_root=draw(st.text(alphabet="0123456789abcdef", min_size=8, max_size=64)),
        timestamp=draw(st.floats(min_value=0, max_value=1e9, allow_nan=False)),
        difficulty_bits=draw(st.floats(min_value=1.0, max_value=64.0, allow_nan=False)),
        miner=draw(st.text(min_size=1, max_size=20)),
        nonce=draw(st.integers(0, 2**32)),
    )


def delivery_orders(n: int):
    """Every order ``n`` policy versions might arrive in (ex test_policydist)."""
    return st.permutations(range(n))


# -- workload and scenario-spec strategies -------------------------------------

SPEC_ROLE_POOL = ("analyst", "operator", "auditor", "clerk", "bot")


@st.composite
def workload_configs(draw):
    role_count = draw(st.integers(1, 3))
    roles = SPEC_ROLE_POOL[:role_count]
    return WorkloadConfig(
        subjects=draw(st.integers(1, 50)),
        resources=draw(st.integers(1, 100)),
        roles=roles,
        role_weights=tuple(draw(st.floats(0.1, 1.0)) for _ in roles),
        resource_types=tuple(f"type-{i}" for i in range(draw(st.integers(1, 4)))),
        actions=("read", "write"),
        action_weights=(0.7, 0.3),
        zipf_skew=draw(st.floats(0.5, 2.0)),
        arrival_rate=draw(st.floats(1.0, 100.0)),
        arrival_period=draw(st.sampled_from([0.0, 5.0])),
        arrival_trough=draw(st.floats(0.05, 1.0)),
        arrival_harmonics=draw(st.sampled_from([(), ((7.0, 0.4),)])),
    )


@st.composite
def tree_specs(draw):
    return TreeSpec(
        classes=draw(st.integers(1, 6)),
        depth=draw(st.integers(1, 3)),
        width=draw(st.integers(1, 3)),
        home_write_fraction=draw(st.floats(0.0, 1.0)),
        audited_fraction=draw(st.floats(0.0, 1.0)),
        clearance_fraction=draw(st.floats(0.0, 1.0)),
        deny_tail_fraction=draw(st.floats(0.0, 1.0)),
    )


@st.composite
def scenario_specs(draw):
    """Random tree-synthesised federations, sized for stack-level runs."""
    role_count = draw(st.integers(1, 4))
    return ScenarioSpec(
        name=f"prop-{draw(st.integers(0, 999_999))}",
        roles=SPEC_ROLE_POOL[:role_count],
        tree=draw(tree_specs()),
        federation=FederationShape(clouds=draw(st.integers(1, 3))),
        population=PopulationSpec(
            subjects=draw(st.integers(2, 40)),
            resources=draw(st.integers(4, 80)),
            read_fraction=draw(st.floats(0.3, 1.0)),
            zipf_skew=draw(st.floats(0.8, 1.6)),
        ),
        arrival=ArrivalSpec(
            rate=draw(st.floats(5.0, 200.0)),
            period=draw(st.sampled_from([0.0, 4.0, 8.0])),
            harmonics=draw(st.sampled_from([(), ((24.0, 0.5),)])),
        ),
        description="hypothesis-sampled scenario",
    )
