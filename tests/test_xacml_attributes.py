"""Attribute model: categories, data types, bags."""

import pytest

from repro.common.errors import PolicyError
from repro.xacml.attributes import AttributeId, Bag, Category, DataType


class TestCategory:
    def test_short_names_expand(self):
        assert Category.expand("subject") == Category.SUBJECT
        assert Category.expand("resource") == Category.RESOURCE
        assert Category.expand("action") == Category.ACTION
        assert Category.expand("environment") == Category.ENVIRONMENT

    def test_full_urns_pass_through(self):
        assert Category.expand(Category.SUBJECT) == Category.SUBJECT

    def test_unknown_category_rejected(self):
        with pytest.raises(PolicyError):
            Category.expand("banana")

    def test_shorten_round_trips(self):
        for short in ("subject", "resource", "action", "environment"):
            assert Category.shorten(Category.expand(short)) == short


class TestAttributeId:
    def test_normalises_category(self):
        attr = AttributeId("subject", "role")
        assert attr.category == Category.SUBJECT

    def test_short_form(self):
        assert AttributeId("subject", "role").short() == "subject:role"


class TestDataType:
    def test_check_accepts_matching(self):
        assert DataType.check(DataType.STRING, "x") == "x"
        assert DataType.check(DataType.INTEGER, 5) == 5
        assert DataType.check(DataType.BOOLEAN, True) is True

    def test_int_widens_to_double(self):
        assert DataType.check(DataType.DOUBLE, 5) == 5.0
        assert isinstance(DataType.check(DataType.DOUBLE, 5), float)

    def test_bool_is_not_integer(self):
        with pytest.raises(PolicyError):
            DataType.check(DataType.INTEGER, True)

    def test_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            DataType.check(DataType.STRING, 5)

    def test_unknown_type_rejected(self):
        with pytest.raises(PolicyError):
            DataType.check("complex", 1j)

    def test_infer(self):
        assert DataType.infer("x") == DataType.STRING
        assert DataType.infer(5) == DataType.INTEGER
        assert DataType.infer(5.0) == DataType.DOUBLE
        assert DataType.infer(True) == DataType.BOOLEAN

    def test_infer_rejects_unknown(self):
        with pytest.raises(PolicyError):
            DataType.infer([1])


class TestBag:
    def test_of_infers_type(self):
        bag = Bag.of("a", "b")
        assert bag.data_type == DataType.STRING
        assert len(bag) == 2

    def test_of_requires_values(self):
        with pytest.raises(PolicyError):
            Bag.of()

    def test_empty_bag(self):
        assert len(Bag.empty()) == 0

    def test_contains(self):
        assert "a" in Bag.of("a", "b")
        assert "z" not in Bag.of("a", "b")

    def test_equality_ignores_order(self):
        assert Bag.of("a", "b") == Bag.of("b", "a")

    def test_equality_respects_multiplicity(self):
        assert Bag.of("a", "a") != Bag.of("a")

    def test_equality_respects_type(self):
        assert Bag(DataType.INTEGER, [1]) != Bag(DataType.DOUBLE, [1.0])

    def test_one_and_only_singleton(self):
        assert Bag.of("only").one_and_only() == "only"

    def test_one_and_only_rejects_multiple(self):
        with pytest.raises(PolicyError):
            Bag.of("a", "b").one_and_only()

    def test_one_and_only_rejects_empty(self):
        with pytest.raises(PolicyError):
            Bag.empty().one_and_only()

    def test_mixed_types_rejected(self):
        with pytest.raises(PolicyError):
            Bag(DataType.STRING, ["a", 5])
