"""Discrete-event kernel semantics."""

import pytest



class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_fifo(self, sim):
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda name=name: order.append(name))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_at_past_time_runs_now(self, sim):
        sim.schedule(2.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(sim.now))  # already past
        sim.run()
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0


class TestRun:
    def test_run_until_horizon_leaves_future_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_advances_clock_to_horizon_when_idle(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bounds_work(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert sim.pending_events == 7

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(1.0, lambda: chain(1))
        sim.run()
        assert fired == [1, 2, 3]

    def test_run_until_predicate(self, sim):
        counter = {"n": 0}

        def bump():
            counter["n"] += 1
            sim.schedule(1.0, bump)

        sim.schedule(1.0, bump)
        assert sim.run_until(lambda: counter["n"] >= 5)
        assert counter["n"] == 5

    def test_run_until_false_when_queue_drains(self, sim):
        sim.schedule(1.0, lambda: None)
        assert not sim.run_until(lambda: False, max_events=100)


class TestPeriodic:
    def test_every_fires_repeatedly(self, sim):
        fired = []
        sim.every(1.0, lambda: fired.append(sim.now))
        sim.run(until=5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_every_stop(self, sim):
        fired = []
        stop = sim.every(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.5, stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_every_rejects_nonpositive_interval(self, sim):
        with pytest.raises(ValueError):
            sim.every(0, lambda: None)

    def test_every_with_jitter(self, sim):
        fired = []
        sim.every(1.0, lambda: fired.append(sim.now), jitter=lambda: 0.25)
        sim.run(until=4.0)
        assert fired == [1.25, 2.5, 3.75]
