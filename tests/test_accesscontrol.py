"""PEP / PDP service / PRP / PAP / context handler."""

import pytest

from repro.accesscontrol.context_handler import ContextHandler
from repro.accesscontrol.messages import AccessDecision, AccessRequest
from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import SinglePdpPlane
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.analysis.properties import AttributeDomain
from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule, Target


def doctors_policy() -> Policy:
    return Policy(
        policy_id="p", rule_combining="first-applicable",
        rules=[
            Rule("allow-doctors", Effect.PERMIT,
                 target=Target.single("string-equal", "doctor",
                                      "subject", "role")),
            Rule("deny", Effect.DENY),
        ])


@pytest.fixture
def deployment():
    sim = Simulator()
    network = Network(sim, SeededRng(9, "ac-tests"), ConstantLatency(0.001))
    prp = PolicyRetrievalPoint()
    pap = PolicyAdministrationPoint(prp, administrator="admin")
    pap.publish(doctors_policy())
    pdp = PdpService(network, "pdp@infra", prp)
    pep = PolicyEnforcementPoint(network, "pep@t1", "tenant-1",
                                 SinglePdpPlane.wrap(pdp), request_timeout=5.0)
    return sim, network, prp, pap, pdp, pep


class TestContextHandler:
    def test_builds_categories(self):
        handler = ContextHandler("tenant-1")
        content = handler.build(subject={"role": "doctor"},
                                resource={"resource-id": "r"},
                                action={"action-id": "read"}, now=3600.0)
        assert content["subject"]["role"] == ["doctor"]
        assert content["environment"]["origin-tenant"] == ["tenant-1"]
        assert content["environment"]["time-of-day"] == [3600.0]

    def test_time_of_day_wraps(self):
        handler = ContextHandler("t")
        content = handler.build(subject={}, resource={}, action={},
                                now=86_400.0 + 60.0)
        assert content["environment"]["time-of-day"] == [60.0]

    def test_extra_environment_merged(self):
        handler = ContextHandler("t")
        content = handler.build(subject={}, resource={}, action={},
                                environment={"emergency": True})
        assert content["environment"]["emergency"] == [True]


class TestMessages:
    def test_payload_hash_ignores_issue_time(self):
        request = AccessRequest(content={"subject": {}}, origin_tenant="t",
                                request_id="req-1", issued_at=1.0)
        later = AccessRequest(content={"subject": {}}, origin_tenant="t",
                              request_id="req-1", issued_at=99.0)
        assert request.payload_hash() == later.payload_hash()

    def test_correlation_depends_on_issue_time(self):
        request = AccessRequest(content={}, origin_tenant="t",
                                request_id="req-1", issued_at=1.0)
        replay = AccessRequest(content={}, origin_tenant="t",
                               request_id="req-1", issued_at=2.0)
        assert request.correlation() != replay.correlation()

    def test_decision_roundtrip(self):
        decision = AccessDecision(request_id="r", decision="Permit",
                                  obligations=[{"obligation_id": "o"}])
        assert AccessDecision.from_dict(decision.to_dict()) == decision

    def test_request_roundtrip(self):
        request = AccessRequest(content={"a": {"b": [1]}}, origin_tenant="t")
        restored = AccessRequest.from_dict(request.to_dict())
        assert restored.payload_hash() == request.payload_hash()
        assert restored.correlation() == request.correlation()


class TestPrp:
    def test_publish_and_current(self):
        prp = PolicyRetrievalPoint()
        version = prp.publish(policy_to_dict(doctors_policy()), publisher="me")
        assert version.version == 1
        assert prp.current() is version

    def test_versions_accumulate(self):
        prp = PolicyRetrievalPoint()
        prp.publish(policy_to_dict(doctors_policy()), publisher="me")
        prp.publish(policy_to_dict(doctors_policy()), publisher="me")
        assert prp.version_count() == 2
        assert prp.current().version == 2
        assert prp.get_version(1).version == 1

    def test_fingerprint_is_content_hash(self):
        prp = PolicyRetrievalPoint()
        a = prp.publish(policy_to_dict(doctors_policy()), publisher="me")
        b = prp.publish(policy_to_dict(doctors_policy()), publisher="me")
        assert a.fingerprint == b.fingerprint

    def test_empty_prp_raises(self):
        with pytest.raises(ValidationError):
            PolicyRetrievalPoint().current()

    def test_bad_document_rejected(self):
        with pytest.raises(ValidationError):
            PolicyRetrievalPoint().publish({"kind": "nope"}, publisher="me")

    def test_listeners_notified(self):
        prp = PolicyRetrievalPoint()
        seen = []
        prp.on_publish(lambda v: seen.append(v.version))
        prp.publish(policy_to_dict(doctors_policy()), publisher="me")
        assert seen == [1]


class TestPap:
    def test_publish_object_form(self):
        prp = PolicyRetrievalPoint()
        pap = PolicyAdministrationPoint(prp, administrator="admin")
        version = pap.publish(doctors_policy())
        assert version.publisher == "admin"

    def test_publish_validates_document(self):
        pap = PolicyAdministrationPoint(PolicyRetrievalPoint(), "admin")
        with pytest.raises(Exception):
            pap.publish({"kind": "policy", "policy_id": "p"})

    def test_rejects_wrong_type(self):
        pap = PolicyAdministrationPoint(PolicyRetrievalPoint(), "admin")
        with pytest.raises(ValidationError):
            pap.publish(42)

    def test_change_impact_report(self):
        prp = PolicyRetrievalPoint()
        pap = PolicyAdministrationPoint(prp, administrator="admin")
        domain = AttributeDomain()
        domain.declare("subject", "role", ["doctor", "nurse"])
        domain.declare("action", "action-id", ["read"])
        pap.publish(doctors_policy(), impact_domain=domain)
        assert pap.last_impact_report is None  # first publication
        permissive = Policy(policy_id="p2", rule_combining="first-applicable",
                            rules=[Rule("allow-all", Effect.PERMIT)])
        pap.publish(permissive, impact_domain=domain)
        report = pap.last_impact_report
        assert report is not None and not report.holds


class TestRequestFlow:
    def test_grant_flow(self, deployment):
        sim, network, prp, pap, pdp, pep = deployment
        outcomes = []
        pep.request_access(subject={"subject-id": "a", "role": "doctor"},
                           resource={"resource-id": "r"},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=2.0)
        assert len(outcomes) == 1
        assert outcomes[0].granted
        assert outcomes[0].latency > 0

    def test_deny_flow(self, deployment):
        sim, network, prp, pap, pdp, pep = deployment
        outcomes = []
        pep.request_access(subject={"role": "clerk"}, resource={},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=2.0)
        assert not outcomes[0].granted
        assert outcomes[0].decision.decision == "Deny"

    def test_probe_hooks_fire_in_order(self, deployment):
        sim, network, prp, pap, pdp, pep = deployment
        events = []
        pep.on_request_intercepted.append(lambda r: events.append("pep-in"))
        pdp.on_request_received.append(lambda r: events.append("pdp-in"))
        pdp.on_decision.append(lambda r, d: events.append("pdp-out"))
        pep.on_enforce.append(lambda r, d: events.append("pep-out"))
        pep.request_access(subject={"role": "doctor"}, resource={},
                           action={"action-id": "read"})
        sim.run(until=2.0)
        assert events == ["pep-in", "pdp-in", "pdp-out", "pep-out"]

    def test_timeout_denies(self, deployment):
        sim, network, prp, pap, pdp, pep = deployment
        network.partition([pep.address], [pdp.address])
        outcomes = []
        pep.request_access(subject={"role": "doctor"}, resource={},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=10.0)
        assert pep.timeouts == 1
        assert outcomes[0].decision.status_code == "timeout"
        assert not outcomes[0].granted

    def test_bypass_skips_pdp(self, deployment):
        sim, network, prp, pap, pdp, pep = deployment
        pep.bypass = lambda request: AccessDecision(
            request_id=request.request_id, decision="Permit")
        outcomes = []
        pep.request_access(subject={"role": "clerk"}, resource={},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=2.0)
        assert outcomes[0].granted
        assert pdp.requests_served == 0

    def test_policy_update_changes_decisions(self, deployment):
        sim, network, prp, pap, pdp, pep = deployment
        outcomes = []
        pap.publish(Policy(policy_id="deny-all",
                           rule_combining="first-applicable",
                           rules=[Rule("deny", Effect.DENY)]))
        pep.request_access(subject={"role": "doctor"}, resource={},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=2.0)
        assert not outcomes[0].granted

    def test_pdp_processing_delay_scales_with_rules(self, deployment):
        sim, network, prp, pap, pdp, pep = deployment
        big = Policy(policy_id="big", rule_combining="first-applicable",
                     rules=[Rule(f"r{i}", Effect.DENY,
                                 target=Target.single("string-equal", f"x{i}",
                                                      "subject", "role"))
                            for i in range(100)]
                     + [Rule("allow", Effect.PERMIT)])
        outcomes = []
        pep.request_access(subject={"role": "doctor"}, resource={},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=5.0)
        small_latency = outcomes[0].latency
        pap.publish(big)
        pep.request_access(subject={"role": "doctor"}, resource={},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=10.0)
        assert outcomes[1].latency > small_latency
