"""Differential testing: the PDP vs the Analyser's independent semantics.

DRAMS's decision-correctness checking is only as good as the agreement
between the engine that *makes* decisions (object model,
:mod:`repro.xacml`) and the oracle that *audits* them (document
interpreter, :mod:`repro.analysis.semantics`).  These hypothesis tests
generate random policy trees and random requests over a small attribute
vocabulary and require the two implementations to agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.semantics import evaluate_document
from repro.xacml.attributes import DataType
from repro.xacml.context import RequestContext
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint

ROLES = ["doctor", "nurse", "clerk"]
ACTIONS = ["read", "write"]
TYPES = ["record", "report"]

rule_combinings = st.sampled_from(
    ["deny-overrides", "permit-overrides", "first-applicable",
     "deny-unless-permit", "permit-unless-deny"])
policy_combinings = st.sampled_from(
    ["deny-overrides", "permit-overrides", "first-applicable",
     "only-one-applicable", "deny-unless-permit", "permit-unless-deny"])


def match_doc(function, value, category, attribute_id, data_type=DataType.STRING):
    return {"function": function, "value": value, "category": category,
            "attribute_id": attribute_id, "data_type": data_type}


matches = st.one_of(
    st.sampled_from(ROLES).map(
        lambda r: match_doc("string-equal", r, "subject", "role")),
    st.sampled_from(ACTIONS).map(
        lambda a: match_doc("string-equal", a, "action", "action-id")),
    st.sampled_from(TYPES).map(
        lambda t: match_doc("string-equal", t, "resource", "type")),
    st.integers(min_value=1, max_value=5).map(
        lambda n: match_doc("integer-less-than", n, "subject", "clearance",
                            DataType.INTEGER)),
)

targets = st.one_of(
    st.none(),
    st.lists(  # any_ofs
        st.lists(  # all_ofs
            st.lists(matches, min_size=1, max_size=2),
            min_size=1, max_size=2),
        min_size=1, max_size=2),
)

# Conditions: boolean expressions over the same vocabulary; includes
# constructs that can raise (one-and-only over a possibly-missing attribute)
# so indeterminate paths are exercised too.
conditions = st.one_of(
    st.none(),
    st.booleans().map(lambda b: {"literal": b, "data_type": "boolean"}),
    st.sampled_from(ACTIONS).map(lambda a: {
        "apply": "any-of",
        "arguments": [
            {"literal": "string-equal", "data_type": "string"},
            {"literal": a, "data_type": "string"},
            {"designator": {"category": "action", "attribute_id": "action-id",
                            "data_type": "string", "must_be_present": False}},
        ]}),
    st.integers(min_value=1, max_value=5).map(lambda n: {
        "apply": "integer-greater-than-or-equal",
        "arguments": [
            {"apply": "one-and-only", "arguments": [
                {"designator": {"category": "subject",
                                "attribute_id": "clearance",
                                "data_type": "integer",
                                "must_be_present": False}}]},
            {"literal": n, "data_type": "integer"},
        ]}),
    st.just({
        "apply": "one-and-only",
        "arguments": [{"designator": {
            "category": "environment", "attribute_id": "ghost",
            "data_type": "string", "must_be_present": True}}],
    }),
)


@st.composite
def rules(draw, index=0):
    return {
        "rule_id": f"rule-{draw(st.integers(0, 999))}",
        "effect": draw(st.sampled_from(["Permit", "Deny"])),
        "target": draw(targets),
        "condition": draw(conditions),
        "description": "",
    }


@st.composite
def policies(draw):
    return {
        "kind": "policy",
        "policy_id": f"policy-{draw(st.integers(0, 999))}",
        "rule_combining": draw(rule_combinings),
        "target": draw(targets),
        "rules": draw(st.lists(rules(), min_size=1, max_size=4)),
        "obligations": [],
        "description": "",
    }


@st.composite
def policy_sets(draw, depth=1):
    children = st.lists(
        policies() if depth <= 0 else st.one_of(policies(), policy_sets(depth - 1)),
        min_size=1, max_size=3)
    return {
        "kind": "policy_set",
        "policy_set_id": f"set-{draw(st.integers(0, 999))}",
        "policy_combining": draw(policy_combinings),
        "target": draw(targets),
        "children": draw(children),
        "obligations": [],
        "description": "",
    }


documents = st.one_of(policies(), policy_sets(depth=1))


@st.composite
def request_dicts(draw):
    request: dict = {
        "subject": {"role": [draw(st.sampled_from(ROLES))]},
        "action": {"action-id": [draw(st.sampled_from(ACTIONS))]},
        "resource": {"type": [draw(st.sampled_from(TYPES))]},
    }
    if draw(st.booleans()):
        request["subject"]["clearance"] = [draw(st.integers(1, 5))]
    if draw(st.booleans()):
        request["subject"]["role"].append(draw(st.sampled_from(ROLES)))
    return request


class TestDifferential:
    @given(documents, request_dicts())
    @settings(max_examples=300, deadline=None)
    def test_pdp_and_oracle_agree(self, document, request):
        oracle_decision = evaluate_document(document, request)
        pdp = PolicyDecisionPoint(policy_from_dict(document))
        pdp_decision = pdp.evaluate(RequestContext.from_dict(request)).decision.value
        assert pdp_decision == oracle_decision, (
            f"disagreement on {request}: pdp={pdp_decision} "
            f"oracle={oracle_decision}\npolicy={document}")

    @given(documents, request_dicts())
    @settings(max_examples=100, deadline=None)
    def test_oracle_verify_accepts_pdp_output(self, document, request):
        from repro.analysis.semantics import DecisionOracle

        pdp = PolicyDecisionPoint(policy_from_dict(document))
        observed = pdp.evaluate(RequestContext.from_dict(request)).decision.value
        assert DecisionOracle(document).verify(request, observed)

    @given(documents, request_dicts())
    @settings(max_examples=100, deadline=None)
    def test_oracle_rejects_flipped_decisions(self, document, request):
        from repro.analysis.semantics import DecisionOracle

        oracle = DecisionOracle(document)
        expected = oracle.expected_decision(request)
        flipped = "Deny" if expected == "Permit" else "Permit"
        assert not oracle.verify(request, flipped)
