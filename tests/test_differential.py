"""Differential testing: the PDP vs the Analyser's independent semantics.

DRAMS's decision-correctness checking is only as good as the agreement
between the engine that *makes* decisions (object model,
:mod:`repro.xacml`) and the oracle that *audits* them (document
interpreter, :mod:`repro.analysis.semantics`).  These hypothesis tests
generate random policy trees and random requests over a small attribute
vocabulary and require the two implementations to agree exactly.
"""

from hypothesis import given, settings

from repro.analysis.semantics import evaluate_document
from repro.xacml.context import RequestContext
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint

from tests.strategies import documents, request_dicts


class TestDifferential:
    @given(documents, request_dicts())
    @settings(max_examples=300, deadline=None)
    def test_pdp_and_oracle_agree(self, document, request):
        oracle_decision = evaluate_document(document, request)
        pdp = PolicyDecisionPoint(policy_from_dict(document))
        pdp_decision = pdp.evaluate(RequestContext.from_dict(request)).decision.value
        assert pdp_decision == oracle_decision, (
            f"disagreement on {request}: pdp={pdp_decision} "
            f"oracle={oracle_decision}\npolicy={document}")

    @given(documents, request_dicts())
    @settings(max_examples=100, deadline=None)
    def test_oracle_verify_accepts_pdp_output(self, document, request):
        from repro.analysis.semantics import DecisionOracle

        pdp = PolicyDecisionPoint(policy_from_dict(document))
        observed = pdp.evaluate(RequestContext.from_dict(request)).decision.value
        assert DecisionOracle(document).verify(request, observed)

    @given(documents, request_dicts())
    @settings(max_examples=100, deadline=None)
    def test_oracle_rejects_flipped_decisions(self, document, request):
        from repro.analysis.semantics import DecisionOracle

        oracle = DecisionOracle(document)
        expected = oracle.expected_decision(request)
        flipped = "Deny" if expected == "Permit" else "Permit"
        assert not oracle.verify(request, flipped)
