"""FaaS topology: clouds, sections, tenants, latency wiring, services."""

import pytest

from repro.common.errors import ValidationError
from repro.federation.federation import Federation, FederationConfig
from repro.federation.model import Cloud, Tenant, TenantKind
from repro.federation.services import FederatedService, ServiceRegistry
from repro.simnet.network import Host


class Probe(Host):
    def __init__(self, network, address):
        super().__init__(network, address)
        self.received = []
        self.delays = []

    def receive(self, message):
        self.received.append(message)
        self.delays.append(self.sim.now - message.sent_at)


class TestModel:
    def test_cloud_sections_unique(self):
        cloud = Cloud("c1")
        cloud.add_section("a")
        with pytest.raises(ValidationError):
            cloud.add_section("a")

    def test_section_qualified_name(self):
        assert Cloud("c1").add_section("infra").qualified_name == "c1/infra"

    def test_tenant_host_registration(self):
        tenant = Tenant("t", TenantKind.MEMBER)
        tenant.register_host("pep@t")
        with pytest.raises(ValidationError):
            tenant.register_host("pep@t")

    def test_tenant_address_convention(self):
        assert Tenant("t1", TenantKind.MEMBER).address("pep") == "pep@t1"


class TestFederationTopology:
    def test_default_two_cloud_topology(self):
        federation = Federation(FederationConfig(cloud_count=2))
        assert len(federation.clouds) == 2
        assert len(federation.member_tenants) == 2
        assert federation.infrastructure_tenant.is_infrastructure

    def test_infrastructure_tenant_spans_all_clouds(self):
        federation = Federation(FederationConfig(cloud_count=3))
        infra_clouds = {section.cloud_name
                        for section in federation.infrastructure_tenant.sections}
        assert infra_clouds == {"cloud-1", "cloud-2", "cloud-3"}

    def test_member_tenants_map_to_one_cloud(self):
        federation = Federation(FederationConfig(cloud_count=2))
        for tenant in federation.member_tenants:
            assert len({s.cloud_name for s in tenant.sections}) == 1

    def test_unknown_tenant_raises(self):
        with pytest.raises(ValidationError):
            Federation().tenant("ghost")

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            FederationConfig(cloud_count=0)

    def test_describe_lists_everything(self):
        federation = Federation(FederationConfig(cloud_count=2))
        description = federation.describe()
        assert set(description["tenants"]) == {
            "tenant-1", "tenant-2", "infrastructure"}
        assert len(description["clouds"]) == 2


class TestLatencyWiring:
    def test_intra_tenant_traffic_is_faster_after_finalize(self):
        federation = Federation(FederationConfig(cloud_count=2, seed=3))
        tenant = federation.member_tenants[0]
        a = Probe(federation.network, tenant.address("a"))
        b = Probe(federation.network, tenant.address("b"))
        tenant.register_host(a.address)
        tenant.register_host(b.address)
        other = federation.member_tenants[1]
        c = Probe(federation.network, other.address("c"))
        other.register_host(c.address)
        pairs = federation.finalize_topology()
        assert pairs >= 1

        for _ in range(50):
            a.send(b.address, "ping", {})
            a.send(c.address, "ping", {})
        federation.sim.run()
        lan = sum(b.delays) / len(b.delays)
        wan = sum(c.delays) / len(c.delays)
        assert lan * 5 < wan

    def test_finalize_is_idempotent(self):
        federation = Federation()
        tenant = federation.member_tenants[0]
        a = Probe(federation.network, tenant.address("a"))
        tenant.register_host(a.address)
        first = federation.finalize_topology()
        second = federation.finalize_topology()
        assert first == second


class TestServiceRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        service = FederatedService("records", "tenant-1", "medical-record")
        service.add_resource("rec-1")
        registry.register(service)
        assert registry.get("records").resources == ["rec-1"]

    def test_duplicate_service_rejected(self):
        registry = ServiceRegistry()
        registry.register(FederatedService("s", "t", "x"))
        with pytest.raises(ValidationError):
            registry.register(FederatedService("s", "t", "x"))

    def test_duplicate_resource_rejected(self):
        service = FederatedService("s", "t", "x")
        service.add_resource("r1")
        with pytest.raises(ValidationError):
            service.add_resource("r1")

    def test_unknown_service_raises(self):
        with pytest.raises(ValidationError):
            ServiceRegistry().get("ghost")

    def test_services_of_tenant(self):
        registry = ServiceRegistry()
        registry.register(FederatedService("a", "t1", "x"))
        registry.register(FederatedService("b", "t2", "x"))
        assert [s.name for s in registry.services_of_tenant("t1")] == ["a"]

    def test_all_resources_pairs(self):
        registry = ServiceRegistry()
        service = FederatedService("a", "t1", "x")
        service.add_resource("r1")
        service.add_resource("r2")
        registry.register(service)
        assert registry.all_resources() == [("a", "r1"), ("a", "r2")]
