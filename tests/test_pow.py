"""Proof-of-work: targets, grinding, retargeting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blockchain.pow import (
    MAX_TARGET,
    expected_hashes,
    grind_nonce,
    meets_target,
    retarget,
    target_for_bits,
)
from repro.crypto.hashing import sha256_hex


class TestTargets:
    def test_target_halves_per_bit(self):
        assert target_for_bits(9) * 2 == target_for_bits(8)

    def test_zero_bits_accepts_everything(self):
        assert target_for_bits(0) == MAX_TARGET
        assert meets_target("f" * 64, 0)

    def test_fractional_bits_between_integers(self):
        assert target_for_bits(9) < target_for_bits(8.5) < target_for_bits(8)

    def test_expected_hashes_exponential(self):
        assert expected_hashes(8) == pytest.approx(256, rel=0.01)
        assert expected_hashes(16) == pytest.approx(65536, rel=0.01)

    def test_meets_target_boundary(self):
        digest = "0" * 62 + "ff"  # tiny value
        assert meets_target(digest, 8)
        assert meets_target(digest, 200) is False or True  # never raises

    @given(st.floats(min_value=1, max_value=64),
           st.floats(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_target_monotone_decreasing_in_bits(self, a, b):
        if a < b:
            assert target_for_bits(a) >= target_for_bits(b)


class TestGrinding:
    def render(self, nonce: int) -> bytes:
        return f"header|{nonce}".encode()

    def test_grind_finds_valid_nonce(self):
        result = grind_nonce(self.render, difficulty_bits=8)
        assert result is not None
        nonce, digest, attempts = result
        assert digest == sha256_hex(self.render(nonce))
        assert meets_target(digest, 8)
        assert attempts >= 1

    def test_grind_respects_attempt_budget(self):
        result = grind_nonce(self.render, difficulty_bits=64, max_attempts=10)
        assert result is None

    def test_grind_start_nonce(self):
        full = grind_nonce(self.render, difficulty_bits=8)
        assert full is not None
        resumed = grind_nonce(self.render, difficulty_bits=8,
                              start_nonce=full[0])
        assert resumed is not None
        assert resumed[0] == full[0]

    def test_attempts_scale_with_difficulty(self):
        # Statistical, but with a generous margin: 12 bits needs far more
        # work than 4 bits on average.
        easy = grind_nonce(self.render, difficulty_bits=2)
        hard = grind_nonce(self.render, difficulty_bits=12)
        assert easy is not None and hard is not None
        assert hard[2] > easy[2]


class TestRetarget:
    def test_blocks_too_fast_raises_difficulty(self):
        new = retarget(10.0, actual_interval=0.5, target_interval=1.0)
        assert new == pytest.approx(11.0)

    def test_blocks_too_slow_lowers_difficulty(self):
        new = retarget(10.0, actual_interval=2.0, target_interval=1.0)
        assert new == pytest.approx(9.0)

    def test_on_target_is_stable(self):
        assert retarget(10.0, 1.0, 1.0) == pytest.approx(10.0)

    def test_adjustment_clamped(self):
        new = retarget(10.0, actual_interval=0.001, target_interval=1.0,
                       max_step=2.0)
        assert new == pytest.approx(11.0)  # log2(2.0)

    def test_floor_and_ceiling(self):
        assert retarget(1.0, 10.0, 1.0, floor_bits=1.0) == 1.0
        assert retarget(64.0, 0.1, 1.0, ceil_bits=64.0) == 64.0

    def test_zero_interval_handled(self):
        new = retarget(10.0, actual_interval=0.0, target_interval=1.0)
        assert new == pytest.approx(11.0)

    @given(st.floats(min_value=2, max_value=40),
           st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_retarget_bounded_step(self, bits, actual):
        new = retarget(bits, actual, 1.0, max_step=2.0)
        assert abs(new - bits) <= 1.0 + 1e-9 or new in (1.0, 64.0)
