"""Decision plane: routing, failover, cache coherence, monitoring coverage."""

import pytest

from repro.accesscontrol.decision_cache import DecisionCache
from repro.accesscontrol.messages import AccessDecision, AccessRequest
from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import (
    DecisionPlane,
    ShardedPdpPlane,
    SinglePdpPlane,
    as_plane,
)
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.harness import MonitoredFederation
from repro.simnet.latency import ConstantLatency
from repro.simnet.network import Host, Network
from repro.simnet.simulator import Simulator
from repro.workload.scenarios import healthcare_scenario
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, Rule, Target
from tests.conftest import fast_drams_config


def doctors_policy() -> Policy:
    return Policy(
        policy_id="p", rule_combining="first-applicable",
        rules=[
            Rule("allow-doctors", Effect.PERMIT,
                 target=Target.single("string-equal", "doctor",
                                      "subject", "role")),
            Rule("deny", Effect.DENY),
        ])


def deny_all_policy() -> Policy:
    return Policy(policy_id="deny-all", rule_combining="first-applicable",
                  rules=[Rule("deny", Effect.DENY)])


class _StubService:
    """Just enough surface for routing-only plane tests."""

    def __init__(self, address):
        self.address = address
        self.decision_cache = None
        self.requests_served = 0


class FakePdp(Host):
    """Scriptable shard: silent, or replies with a fixed decision."""

    def __init__(self, network, address, decision="Permit", delay=0.001,
                 silent=False, reply_count=1):
        super().__init__(network, address)
        self.decision = decision
        self.delay = delay
        self.silent = silent
        self.reply_count = reply_count
        self.seen = []
        self.decision_cache = None
        self.requests_served = 0

    def receive(self, message):
        if message.kind != "ac_request":
            return
        request = AccessRequest.from_dict(message.payload)
        self.seen.append(request)
        self.requests_served += 1
        if self.silent:
            return
        for _ in range(self.reply_count):
            def reply(src=message.src, request_id=request.request_id):
                self.send(src, "ac_response", AccessDecision(
                    request_id=request_id, decision=self.decision,
                    decided_at=self.sim.now).to_dict())
            self.sim.schedule(self.delay, reply)


def request_with(role="doctor", time_of_day=1.0, origin="tenant-1"):
    return AccessRequest(
        content={"subject": {"role": [role]},
                 "action": {"action-id": ["read"]},
                 "environment": {"time-of-day": [time_of_day],
                                 "origin-tenant": [origin]}},
        origin_tenant=origin)


class TestSinglePlane:
    def test_at_routes_to_fixed_address(self):
        plane = SinglePdpPlane.at("pdp@infra")
        assert plane.endpoints(request_with()) == ("pdp@infra",)
        assert plane.services == []

    def test_wrap_adopts_service(self, network):
        prp = PolicyRetrievalPoint()
        pdp = PdpService(network, "pdp@infra", prp)
        plane = SinglePdpPlane.wrap(pdp)
        assert plane.services == [pdp]
        assert plane.endpoints(request_with()) == ("pdp@infra",)

    def test_undeployed_plane_rejects_routing(self):
        with pytest.raises(ValidationError):
            SinglePdpPlane().endpoints(request_with())

    def test_route_only_plane_cannot_deploy(self):
        plane = SinglePdpPlane.at("pdp@infra")
        with pytest.raises(ValidationError):
            plane.deploy(object(), PolicyRetrievalPoint())

    def test_as_plane_normalises(self, network):
        pdp = PdpService(network, "pdp@infra", PolicyRetrievalPoint())
        plane = as_plane(pdp)
        assert isinstance(plane, SinglePdpPlane)
        assert as_plane(plane) is plane
        with pytest.raises(ValidationError):
            as_plane("pdp@infra")

    def test_pep_rejects_raw_address(self, network):
        with pytest.raises(TypeError, match="SinglePdpPlane.at"):
            PolicyEnforcementPoint(network, "pep@t1", "tenant-1", "pdp@infra")
        # The failed construction must not have leaked the address.
        PolicyEnforcementPoint(network, "pep@t1", "tenant-1",
                               SinglePdpPlane.at("pdp@infra"))

    def test_pep_adopts_bare_service(self, sim, network):
        prp = PolicyRetrievalPoint()
        PolicyAdministrationPoint(prp, "admin").publish(doctors_policy())
        pdp = PdpService(network, "pdp@infra", prp)
        pep = PolicyEnforcementPoint(network, "pep@t1", "tenant-1", pdp)
        assert isinstance(pep.plane, SinglePdpPlane)
        outcomes = []
        pep.request_access(subject={"role": "doctor"}, resource={},
                           action={"action-id": "read"},
                           callback=outcomes.append)
        sim.run(until=2.0)
        assert outcomes and outcomes[0].granted


class TestShardedRouting:
    def make_plane(self, shards=3, prp=None, **kwargs):
        services = [_StubService(f"pdp-{i}@infra") for i in range(shards)]
        return ShardedPdpPlane.over(services, prp=prp, **kwargs)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardedPdpPlane(shards=0)
        with pytest.raises(ValidationError):
            ShardedPdpPlane(cache_policy="ad-hoc")
        with pytest.raises(ValidationError):
            ShardedPdpPlane(virtual_nodes=0)
        with pytest.raises(ValidationError):
            ShardedPdpPlane.over([])

    def test_endpoints_cover_all_shards_once(self):
        plane = self.make_plane(shards=4)
        endpoints = plane.endpoints(request_with())
        assert len(endpoints) == 4
        assert sorted(endpoints) == sorted(s.address for s in plane.services)

    def test_routing_is_deterministic(self):
        plane = self.make_plane(shards=4)
        again = self.make_plane(shards=4)
        for role in ("doctor", "nurse", "clerk", "auditor"):
            request = request_with(role=role)
            assert plane.endpoints(request) == again.endpoints(request)

    def test_requests_spread_over_shards(self):
        plane = self.make_plane(shards=4)
        primaries = {plane.endpoints(request_with(role=f"role-{i}"))[0]
                     for i in range(24)}
        assert len(primaries) >= 2

    def test_cache_key_affinity(self):
        # The ring keys on the decision-cache key: attributes outside the
        # policy footprint (time-of-day here) must not change the route.
        prp = PolicyRetrievalPoint()
        prp.publish(policy_to_dict(doctors_policy()), publisher="t")
        plane = self.make_plane(shards=4, prp=prp)
        early = request_with(time_of_day=1.0)
        late = request_with(time_of_day=9999.0)
        assert plane.route_key(early) == plane.route_key(late)
        assert plane.endpoints(early) == plane.endpoints(late)
        # Footprint attributes do fragment the key space.
        assert plane.route_key(early) != plane.route_key(request_with(role="nurse"))

    def test_route_key_without_policy_uses_raw_content(self):
        plane = self.make_plane(shards=2, prp=PolicyRetrievalPoint())
        a = request_with(time_of_day=1.0)
        b = request_with(time_of_day=2.0)
        assert plane.route_key(a) != plane.route_key(b)  # nothing to project onto

    def test_single_shard_short_circuits(self):
        plane = self.make_plane(shards=1)
        assert plane.endpoints(request_with()) == ("pdp-0@infra",)

    def test_routing_prp_not_shared_with_services_falls_back(self, network):
        # The routing PRP has a policy but the adopted primary's own PRP
        # is empty: routing must fall back to a local footprint compile
        # instead of crashing in the primary's current() lookup.
        routing_prp = PolicyRetrievalPoint()
        routing_prp.publish(policy_to_dict(doctors_policy()), publisher="t")
        primary = PdpService(network, "pdp-real@infra", PolicyRetrievalPoint())
        plane = ShardedPdpPlane.over([primary, _StubService("pdp-1@infra")],
                                     prp=routing_prp)
        endpoints = plane.endpoints(request_with())
        assert len(endpoints) == 2

    def test_over_rejects_deploy_only_knobs(self):
        services = [_StubService("pdp-0@infra")]
        with pytest.raises(TypeError):
            ShardedPdpPlane.over(services, cache_policy="shared")
        with pytest.raises(TypeError):
            ShardedPdpPlane.over(services, service_kwargs={})
        assert ShardedPdpPlane.over(services).describe()["cache_policy"] == "external"


class TestHarnessIntegration:
    def test_default_build_uses_single_plane(self):
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=21, with_drams=False)
        assert isinstance(stack.plane, SinglePdpPlane)
        assert stack.pdp_service is stack.plane.services[0]
        assert stack.pdp_service.address == "pdp@infrastructure"

    def test_sharded_build_deploys_replicas(self):
        plane = ShardedPdpPlane(shards=3, cache_policy="partitioned")
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=22, with_drams=False, plane=plane)
        assert [s.address for s in stack.pdp_services] == [
            "pdp-0@infrastructure", "pdp-1@infrastructure", "pdp-2@infrastructure"]
        infra_hosts = stack.federation.infrastructure_tenant.host_addresses
        for service in stack.pdp_services:
            assert service.address in infra_hosts
        stack.issue_requests(12)
        stack.run(until=30.0)
        assert len(stack.outcomes) == 12
        assert sum(pep.timeouts for pep in stack.peps.values()) == 0
        served = [s.requests_served for s in stack.pdp_services]
        assert sum(served) == 12
        assert sum(1 for count in served if count) >= 2  # load actually spreads

    def test_sharded_decisions_match_single_plane(self):
        def run(plane):
            stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                              seed=23, with_drams=False,
                                              plane=plane)
            stack.issue_requests(20)
            stack.run(until=60.0)
            return sorted(
                (o.requested_at, o.decision.decision, o.decision.status_code,
                 tuple(ob["obligation_id"] for ob in o.decision.obligations))
                for o in stack.outcomes)

        single = run(None)
        sharded = run(ShardedPdpPlane(shards=4))
        assert single == sharded


class TestDramsCoverage:
    def test_probes_attach_to_every_replica(self):
        plane = ShardedPdpPlane(shards=2, cache_policy="shared")
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=24, drams_config=fast_drams_config(),
                                          plane=plane)
        stack.start()
        assert {"pdp", "pdp:1"} <= set(stack.drams.probes)
        assert stack.drams.pdp_service is plane.services[0]
        assert stack.drams.pdp_services == plane.services
        stack.issue_requests(10)
        stack.run(until=40.0)
        assert len(stack.outcomes) == 10
        served = [s.requests_served for s in plane.services]
        assert sum(served) == 10
        observed = (stack.drams.probes["pdp"].observations
                    + stack.drams.probes["pdp:1"].observations)
        assert observed == 2 * sum(served)  # pdp-in + pdp-out per decision
        assert stack.drams.alerts.count() == 0
        # Every monitored decision was independently re-derived, and the
        # pending-correlation index drained along the way.
        assert stack.drams.analyser.checked == 10
        assert stack.drams.analyser.pending_correlations == 0
        assert stack.drams.analyser.sweep() == 0

    def test_monitoring_rejects_route_only_plane(self, network):
        from repro.drams.probe import attach_plane_probes
        with pytest.raises(ValidationError):
            attach_plane_probes(SinglePdpPlane.at("pdp@infra"), "infra", "li@infra")


class TestShardedCacheCoherence:
    def build(self, cache_policy):
        plane = ShardedPdpPlane(shards=2, cache_policy=cache_policy)
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=25, with_drams=False, plane=plane)
        return stack, plane

    def warm(self, stack):
        stack.issue_requests(16)
        stack.run(until=30.0)

    def test_shared_cache_is_one_cache(self):
        stack, plane = self.build("shared")
        caches = plane.caches()
        assert len(caches) == 1
        assert all(s.decision_cache is caches[0] for s in plane.services)

    def test_partitioned_caches_are_distinct(self):
        stack, plane = self.build("partitioned")
        assert len(plane.caches()) == 2

    def test_supplied_empty_shared_cache_is_kept(self):
        # An empty DecisionCache is falsy (len() == 0); the plane must not
        # "or" it away and deploy its own cache instead.
        mine = DecisionCache(max_entries=64)
        plane = ShardedPdpPlane(shards=2, cache_policy="shared",
                                service_kwargs={"decision_cache": mine})
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=28, with_drams=False, plane=plane)
        assert plane.caches() == [mine]
        stack.issue_requests(6)
        stack.run(until=20.0)
        assert mine.hits + mine.misses > 0  # traffic flowed through *my* cache

    def test_partitioned_rejects_supplied_cache(self):
        plane = ShardedPdpPlane(shards=2, cache_policy="partitioned",
                                service_kwargs={"decision_cache": DecisionCache()})
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=29, with_drams=False)
        with pytest.raises(ValidationError, match="partitioned"):
            plane.deploy(stack.federation, stack.prp)

    @pytest.mark.parametrize("cache_policy", ["shared", "partitioned"])
    def test_publish_flushes_every_shard_cache(self, cache_policy):
        stack, plane = self.build(cache_policy)
        self.warm(stack)
        warmed = [cache for cache in plane.caches() if len(cache)]
        assert warmed  # the workload actually populated the plane's caches
        stack.pap.publish(deny_all_policy())
        for cache in plane.caches():
            assert len(cache) == 0
        assert all(cache.invalidations > 0 for cache in warmed)
        # Post-flush decisions follow the new policy on every shard.
        stack.issue_requests(8)
        stack.run(until=stack.sim.now + 30.0)
        assert all(not o.granted for o in stack.outcomes[-8:])


class TestPepTimeoutAndFailover:
    def setup_pep(self, shards, request_timeout=1.0, **fake_kwargs):
        sim = Simulator()
        network = Network(sim, SeededRng(31, "plane-tests"), ConstantLatency(0.001))
        fakes = [FakePdp(network, f"pdp-{i}@infra", **fake_kwargs)
                 for i in range(shards)]
        plane = (SinglePdpPlane.wrap(fakes[0]) if shards == 1
                 else ShardedPdpPlane.over(fakes))
        pep = PolicyEnforcementPoint(network, "pep@t1", "tenant-1", plane,
                                     request_timeout=request_timeout)
        return sim, network, fakes, plane, pep

    def test_response_cancels_timeout_event(self):
        sim, network, fakes, plane, pep = self.setup_pep(1)
        request = request_with()
        pep.submit(request)
        timeout_event = pep._pending[request.request_id].timeout_event
        sim.run(until=5.0)
        assert timeout_event.cancelled
        assert pep.timeouts == 0
        assert len(pep.enforced) == 1

    def test_late_response_after_timeout_is_not_double_enforced(self):
        sim, network, fakes, plane, pep = self.setup_pep(
            1, request_timeout=0.5, delay=2.0)
        outcomes = []
        pep.submit(request_with(), outcomes.append)
        sim.run(until=10.0)  # well past the straggler response
        assert pep.timeouts == 1
        assert len(outcomes) == 1 and len(pep.enforced) == 1
        assert outcomes[0].decision.status_code == "timeout"
        assert not outcomes[0].granted
        assert fakes[0].seen  # the shard did receive (and answer) the request

    def test_resubmitted_pending_id_supersedes_earlier_attempt(self):
        # Submitting the same request id while the first attempt is still
        # in flight must disarm the first timer — otherwise it fires
        # against the new pending entry and forces a premature failover.
        sim, network, fakes, plane, pep = self.setup_pep(2, request_timeout=1.0,
                                                         delay=0.1)
        request = request_with()
        outcomes = []
        pep.submit(request, outcomes.append)
        first_timer = pep._pending[request.request_id].timeout_event
        pep.submit(request, outcomes.append)
        assert first_timer.cancelled
        sim.run(until=10.0)
        assert pep.failovers == 0 and pep.timeouts == 0
        assert len(outcomes) == 1  # one enforcement; the duplicate is dropped
        sim, network, fakes, plane, pep = self.setup_pep(1, reply_count=3)
        outcomes = []
        pep.submit(request_with(), outcomes.append)
        sim.run(until=5.0)
        assert len(outcomes) == 1 and len(pep.enforced) == 1
        assert pep.timeouts == 0

    def test_failover_to_next_shard_in_ring_order(self):
        sim, network, fakes, plane, pep = self.setup_pep(2, request_timeout=1.0)
        request = request_with()
        order = plane.endpoints(request)
        by_address = {fake.address: fake for fake in fakes}
        by_address[order[0]].silent = True
        by_address[order[1]].decision = "Permit"
        outcomes = []
        pep.submit(request, outcomes.append)
        sim.run(until=10.0)
        assert pep.failovers == 1
        assert pep.timeouts == 0
        assert len(outcomes) == 1 and outcomes[0].granted
        assert by_address[order[0]].seen and by_address[order[1]].seen
        # The retry happened after the first shard's per-attempt window.
        assert outcomes[0].latency > 1.0 / 2

    def test_slow_primary_loses_to_failover_shard(self):
        sim, network, fakes, plane, pep = self.setup_pep(2, request_timeout=1.0)
        request = request_with()
        order = plane.endpoints(request)
        by_address = {fake.address: fake for fake in fakes}
        by_address[order[0]].delay = 0.7   # answers Deny after the 0.5s window
        by_address[order[0]].decision = "Deny"
        by_address[order[1]].decision = "Permit"
        outcomes = []
        pep.submit(request, outcomes.append)
        sim.run(until=10.0)
        # The failover shard's Permit wins; the straggling Deny is dropped.
        assert len(outcomes) == 1 and len(pep.enforced) == 1
        assert outcomes[0].granted
        assert pep.failovers == 1 and pep.timeouts == 0

    def test_routing_follows_the_forwarded_envelope(self):
        # A tampering interceptor rewrites the request before forwarding;
        # the shard must be chosen by the envelope it will receive (and
        # key its decision cache on), not the original.
        sim, network, fakes, plane, pep = self.setup_pep(4)
        original = request_with(role="clerk")
        forged = request_with(role="admin")
        forged.request_id = original.request_id
        pep.forward_interceptor = lambda request: forged
        pep.submit(original)
        sim.run(until=5.0)
        by_address = {fake.address: fake for fake in fakes}
        receiver = next(fake for fake in fakes if fake.seen)
        assert receiver.address == plane.endpoints(forged)[0]
        assert by_address[plane.endpoints(forged)[0]].seen[0].content == forged.content

    def test_all_shards_dead_times_out_deny(self):
        sim, network, fakes, plane, pep = self.setup_pep(
            3, request_timeout=1.5, silent=True)
        outcomes = []
        pep.submit(request_with(), outcomes.append)
        sim.run(until=10.0)
        assert pep.failovers == 2
        assert pep.timeouts == 1
        assert len(outcomes) == 1
        assert outcomes[0].decision.status_code == "timeout"
        assert not outcomes[0].granted
        assert all(fake.seen for fake in fakes)  # every shard was tried


class TestDecisionPlaneSurface:
    def test_describe_and_stats(self):
        plane = ShardedPdpPlane(shards=2, cache_policy="partitioned",
                                virtual_nodes=8)
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=26, with_drams=False, plane=plane)
        summary = plane.describe()
        assert summary["kind"] == "ShardedPdpPlane"
        assert summary["shards"] == 2
        assert summary["cache_policy"] == "partitioned"
        stack.issue_requests(6)
        stack.run(until=20.0)
        stats = plane.stats()
        assert sum(stats["requests_served"].values()) == 6
        assert len(stats["caches"]) == 2

    def test_double_deploy_rejected(self):
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=27, with_drams=False)
        with pytest.raises(ValidationError):
            stack.plane.deploy(stack.federation, stack.prp)

    def test_base_plane_is_abstract(self):
        plane = DecisionPlane()
        with pytest.raises(NotImplementedError):
            plane.endpoints(request_with())
        with pytest.raises(NotImplementedError):
            plane.deploy(object(), PolicyRetrievalPoint())
