"""The MonitoredFederation harness used by examples and benchmarks."""

from repro.harness import MonitoredFederation
from repro.workload.scenarios import healthcare_scenario
from tests.conftest import fast_drams_config


class TestBuild:
    def test_standard_stack_shape(self, healthcare_stack):
        stack = healthcare_stack
        assert len(stack.peps) == 2
        assert stack.drams is not None
        assert stack.prp.version_count() == 1
        # One node+LI per tenant (2 members + infra) plus the analyser node.
        assert len(stack.drams.nodes) == 4
        assert len(stack.drams.interfaces) == 3

    def test_without_drams(self):
        stack = MonitoredFederation.build(healthcare_scenario(), clouds=2,
                                          seed=80, with_drams=False)
        assert stack.drams is None
        stack.issue_requests(5)
        stack.run(until=10.0)
        assert len(stack.outcomes) == 5

    def test_cloud_count_scales_peps(self):
        stack = MonitoredFederation.build(
            healthcare_scenario(), clouds=4, seed=81,
            drams_config=fast_drams_config())
        assert len(stack.peps) == 4
        assert len(stack.drams.interfaces) == 5


class TestWorkload:
    def test_requests_round_robin_over_tenants(self, healthcare_stack):
        stack = healthcare_stack
        stack.issue_requests(6)
        stack.run(until=30.0)
        tenants = {outcome.request.origin_tenant for outcome in stack.outcomes}
        assert tenants == {"tenant-1", "tenant-2"}

    def test_owner_tenant_assignment_is_stable(self, healthcare_stack):
        stack = healthcare_stack
        stack.issue_requests(5)
        stack.run(until=30.0)
        owners = {}
        for outcome in stack.outcomes:
            rid = outcome.request.content["resource"]["resource-id"][0]
            owner = outcome.request.content["resource"]["owner-tenant"][0]
            owners.setdefault(rid, set()).add(owner)
        assert all(len(owner_set) == 1 for owner_set in owners.values())

    def test_latencies_positive(self, healthcare_stack):
        stack = healthcare_stack
        stack.issue_requests(5)
        stack.run(until=30.0)
        assert all(latency > 0 for latency in stack.access_latencies())

    def test_grant_rate_bounded(self, healthcare_stack):
        stack = healthcare_stack
        stack.issue_requests(20)
        stack.run(until=60.0)
        assert 0.0 <= stack.grant_rate() <= 1.0

    def test_reproducibility_across_builds(self):
        def run(seed):
            stack = MonitoredFederation.build(
                healthcare_scenario(), clouds=2, seed=seed,
                drams_config=fast_drams_config())
            stack.start()
            stack.issue_requests(10)
            stack.run(until=40.0)
            return [(o.granted, o.decision.decision) for o in stack.outcomes]

        assert run(90) == run(90)
