"""Fast path vs slow path on every shipped scenario's real workload.

The acceptance bar for the decision fast path: with the target index on,
with the decision cache on, or both, every decision (value, status and
obligations) is bit-identical to plain tree-walking evaluation.
"""

import pytest

from repro.accesscontrol.context_handler import ContextHandler
from repro.accesscontrol.decision_cache import DecisionCache
from repro.common.rng import SeededRng
from repro.workload.generator import RequestGenerator
from repro.workload.scenarios import (
    SCENARIO_FACTORIES,
    delegation_scenario,
    iot_edge_scenario,
)
from repro.xacml.context import RequestContext
from repro.xacml.index import attribute_footprint
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint

REQUESTS = 150


def workload_contents(scenario, count=REQUESTS, seed=23):
    """Serialized request contexts as the PEPs would produce them.

    Resources are stamped with an owner tenant (as the harness does) so
    the scenarios' locality rules — home-tenant writes in particular —
    take both branches.
    """
    generator = RequestGenerator(scenario.workload, SeededRng(seed, "fastpath"))
    handlers = [ContextHandler("tenant-1"), ContextHandler("tenant-2")]
    contents = []
    for generated in generator.requests(count):
        resource = dict(generated.resource)
        resource.setdefault("owner-tenant",
                            f"tenant-{1 + (generated.index // 2) % 2}")
        contents.append(handlers[generated.index % 2].build(
            subject=generated.subject, resource=resource,
            action=generated.action, now=generated.at))
    return contents


def evaluate_all(pdp, contents):
    return [pdp.evaluate(RequestContext.from_dict(content)).to_dict()
            for content in contents]


@pytest.mark.parametrize("scenario_factory", SCENARIO_FACTORIES,
                         ids=lambda factory: factory.__name__)
class TestFastPathDifferential:
    def test_index_is_bit_identical(self, scenario_factory):
        scenario = scenario_factory()
        contents = workload_contents(scenario)
        slow = PolicyDecisionPoint(policy_from_dict(scenario.policy_document))
        fast = PolicyDecisionPoint(policy_from_dict(scenario.policy_document),
                                   indexed=True)
        assert evaluate_all(fast, contents) == evaluate_all(slow, contents)

    def test_cache_is_bit_identical(self, scenario_factory):
        scenario = scenario_factory()
        contents = workload_contents(scenario)
        root = policy_from_dict(scenario.policy_document)
        slow = PolicyDecisionPoint(root)
        expected = evaluate_all(slow, contents)

        footprint = attribute_footprint(root)
        cache = DecisionCache()
        cached_pdp = PolicyDecisionPoint(
            policy_from_dict(scenario.policy_document), indexed=True)
        for _ in range(2):  # second pass served (partly) from the cache
            got = []
            for content in contents:
                key = cache.request_key("fp", content, footprint)
                response = cache.get(key)
                if response is None:
                    response = cached_pdp.evaluate(
                        RequestContext.from_dict(content)).to_dict()
                    cache.put(key, "fp", response)
                got.append(response)
            assert got == expected
        assert cache.hits >= len(contents)  # pass two is all hits

    def test_scenario_decides_both_ways(self, scenario_factory):
        scenario = scenario_factory()
        contents = workload_contents(scenario)
        pdp = PolicyDecisionPoint(policy_from_dict(scenario.policy_document),
                                  indexed=True)
        decisions = {response["decision"]
                     for response in evaluate_all(pdp, contents)}
        assert "Permit" in decisions and "Deny" in decisions


class TestNewScenarioShapes:
    def test_iot_index_skips_most_branches(self):
        scenario = iot_edge_scenario()
        pdp = PolicyDecisionPoint(policy_from_dict(scenario.policy_document),
                                  indexed=True)
        evaluate_all(pdp, workload_contents(scenario))
        stats = pdp.index.stats
        # A dozen device classes, each request relevant to exactly one:
        # the index must discard the overwhelming majority of branches.
        assert stats.children_skipped > 10 * stats.children_evaluated

    def test_delegation_nesting_skips_through_layers(self):
        scenario = delegation_scenario()
        pdp = PolicyDecisionPoint(policy_from_dict(scenario.policy_document),
                                  indexed=True)
        evaluate_all(pdp, workload_contents(scenario))
        stats = pdp.index.stats
        assert stats.children_skipped > 0
        assert stats.rules_skipped > 0

    def test_delegate_reads_within_clearance_only(self):
        from repro.analysis.semantics import evaluate_document

        document = delegation_scenario().policy_document
        low = {"subject": {"role": ["delegate"], "clearance": [1]},
               "action": {"action-id": ["read"]},
               "resource": {"type": ["hr-record"], "sensitivity": [5]}}
        high = {"subject": {"role": ["delegate"], "clearance": [5]},
                "action": {"action-id": ["read"]},
                "resource": {"type": ["hr-record"], "sensitivity": [1]}}
        write = {"subject": {"role": ["delegate"], "clearance": [5]},
                 "action": {"action-id": ["write"]},
                 "resource": {"type": ["hr-record"], "sensitivity": [1]}}
        assert evaluate_document(document, low) == "Deny"
        assert evaluate_document(document, high) == "Permit"
        assert evaluate_document(document, write) == "Deny"

    def test_iot_role_separation(self):
        from repro.analysis.semantics import evaluate_document

        document = iot_edge_scenario().policy_document
        sensor_push = {"subject": {"role": ["sensor"]},
                       "action": {"action-id": ["write"]},
                       "resource": {"type": ["temperature"]}}
        sensor_firmware = {"subject": {"role": ["sensor"]},
                           "action": {"action-id": ["write"]},
                           "resource": {"type": ["firmware-image"]}}
        analyst_read = {"subject": {"role": ["analyst"]},
                        "action": {"action-id": ["read"]},
                        "resource": {"type": ["power-meter"]}}
        assert evaluate_document(document, sensor_push) == "Permit"
        assert evaluate_document(document, sensor_firmware) == "Deny"
        assert evaluate_document(document, analyst_read) == "Permit"
