"""Attacks on the blockchain layer itself.

The paper's Log Size discussion warns that a private chain with
"possibly lightweight PoW ... does not ensure strong integrity
guarantees".  Experiment E4 quantifies that: an attacker controlling a
fraction ``q`` of the federation's hashrate tries to rewrite a log entry
buried ``z`` blocks deep by mining a private fork and overtaking the
honest chain.

Two models are provided and cross-validated:

- :func:`nakamoto_success_probability` — the closed-form catch-up
  probability from the Bitcoin whitepaper (gambler's-ruin analysis);
- :func:`simulate_rewrite_race` — a Monte-Carlo race between two
  exponential block-production processes, the same statistical model the
  simulated miners use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.rng import SeededRng


def nakamoto_success_probability(attacker_fraction: float, depth: int) -> float:
    """Probability an attacker rewrites a block ``depth`` confirmations deep.

    ``attacker_fraction`` is the attacker's share q of total hashrate.
    Follows Nakamoto (2008), section 11: Poisson-weighted gambler's ruin.
    """
    if not 0.0 <= attacker_fraction <= 1.0:
        raise ValidationError(f"attacker fraction must be in [0,1]: {attacker_fraction}")
    if depth < 0:
        raise ValidationError(f"depth must be >= 0: {depth}")
    q = attacker_fraction
    p = 1.0 - q
    if q >= p:
        return 1.0
    if depth == 0:
        return 1.0
    lam = depth * (q / p)
    total = 1.0
    poisson = math.exp(-lam)
    for k in range(depth + 1):
        total -= poisson * (1.0 - (q / p) ** (depth - k))
        poisson *= lam / (k + 1)
    return max(0.0, min(1.0, total))


@dataclass
class RewriteRaceResult:
    """Outcome of a Monte-Carlo rewrite experiment."""

    attacker_fraction: float
    depth: int
    trials: int
    successes: int
    mean_race_blocks: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


def simulate_rewrite_race(rng: SeededRng, attacker_fraction: float, depth: int,
                          trials: int = 1000, max_lead: int = 200) -> RewriteRaceResult:
    """Monte-Carlo of the Nakamoto double-spend race.

    Matches the whitepaper's model exactly, in two phases per trial:

    1. *Head start*: the attacker mines privately from the moment the
       target log entry is included; while the honest chain accumulates
       ``depth`` confirmations the attacker wins each block with
       probability ``q``.
    2. *Catch-up*: gambler's ruin — the attacker keeps mining until either
       its private fork overtakes the public chain (success) or falls
       ``max_lead`` blocks behind (failure; the catch-up probability from
       there is geometrically negligible).

    Cross-validated against :func:`nakamoto_success_probability` in the
    test suite and experiment E4.
    """
    if not 0.0 <= attacker_fraction <= 1.0:
        raise ValidationError(f"attacker fraction must be in [0,1]: {attacker_fraction}")
    if depth < 0 or trials <= 0:
        raise ValidationError("depth must be >= 0 and trials > 0")
    q = attacker_fraction
    p = 1.0 - q
    race_rng = rng.fork(f"rewrite-race/{q}/{depth}")
    successes = 0
    total_blocks = 0
    lam = depth * (q / p) if p > 0 else float("inf")
    for _ in range(trials):
        blocks = 0
        # Phase 1 (Nakamoto's assumption): honest blocks take their
        # expected time, so the attacker's head start k is Poisson with
        # mean depth*q/p.  Knuth's algorithm suffices for these lambdas.
        if lam == float("inf"):
            successes += 1
            continue
        threshold = math.exp(-lam)
        k = 0
        product = race_rng.random()
        while product > threshold:
            k += 1
            product *= race_rng.random()
        blocks += depth + k
        # Phase 2: gambler's ruin from deficit depth-k; reaching a tie
        # counts as catching up (the whitepaper's convention).
        deficit = depth - k
        while 0 < deficit <= max_lead:
            blocks += 1
            if race_rng.random() < q:
                deficit -= 1
            else:
                deficit += 1
        total_blocks += blocks
        if deficit <= 0:
            successes += 1
    return RewriteRaceResult(
        attacker_fraction=attacker_fraction,
        depth=depth,
        trials=trials,
        successes=successes,
        mean_race_blocks=total_blocks / trials,
    )
