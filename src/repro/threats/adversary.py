"""Adversary: schedules attacks and scores their detection.

The adversary owns a set of attacks, injects them at chosen simulated
times, and afterwards reconciles the federation's alert bus against each
attack's declared expectations — producing the per-attack records the
detection benchmarks (experiment E6) aggregate into detection rate and
latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.drams.alerts import Alert, AlertType
from repro.drams.system import DramsSystem
from repro.threats.attacks import Attack


@dataclass
class AttackRecord:
    """Outcome of one injected attack."""

    attack_name: str
    injected_at: float
    expected_alerts: tuple[AlertType, ...]
    detected: bool = False
    detected_at: Optional[float] = None
    detection_latency: Optional[float] = None
    matched_alerts: list[Alert] = field(default_factory=list)

    def summary(self) -> str:
        if self.detected:
            return (f"{self.attack_name}: DETECTED after "
                    f"{self.detection_latency:.2f}s "
                    f"({', '.join(sorted({a.alert_type.value for a in self.matched_alerts}))})")
        return f"{self.attack_name}: NOT DETECTED"


class Adversary:
    """Injects attacks into a running DRAMS deployment."""

    def __init__(self, drams: DramsSystem) -> None:
        self.drams = drams
        self.attacks: list[Attack] = []

    def launch(self, attack: Attack, at: Optional[float] = None) -> Attack:
        """Inject ``attack`` now, or schedule it for simulated time ``at``."""
        self.attacks.append(attack)
        if at is None:
            attack.inject(self.drams)
        else:
            self.drams.federation.sim.schedule_at(
                at, lambda: attack.inject(self.drams),
                label=f"attack:{attack.name}")
        return attack

    def lift_all(self) -> None:
        for attack in self.attacks:
            if attack.active:
                attack.lift(self.drams)

    # -- scoring ------------------------------------------------------------

    def record_for(self, attack: Attack) -> AttackRecord:
        """Score one attack against the alert bus."""
        record = AttackRecord(
            attack_name=attack.name,
            injected_at=attack.injected_at if attack.injected_at is not None else -1.0,
            expected_alerts=attack.expected_alerts,
        )
        if attack.injected_at is None:
            return record
        correlations = set(attack.affected_correlations)
        for alert in self.drams.alerts.all():
            if alert.alert_type not in attack.expected_alerts:
                continue
            if alert.raised_at < attack.injected_at:
                continue
            # Attribute by correlation when the attack tracked them;
            # component-level attacks (attestation) match by type alone.
            if correlations and alert.correlation_id not in correlations \
                    and alert.alert_type is not AlertType.ATTESTATION_FAILURE:
                continue
            record.matched_alerts.append(alert)
        if record.matched_alerts:
            record.detected = True
            record.detected_at = min(a.raised_at for a in record.matched_alerts)
            record.detection_latency = record.detected_at - record.injected_at
        return record

    def records(self) -> list[AttackRecord]:
        return [self.record_for(attack) for attack in self.attacks]

    def detection_rate(self) -> float:
        records = self.records()
        if not records:
            return 0.0
        return sum(1 for record in records if record.detected) / len(records)

    def false_positives(self) -> list[Alert]:
        """Alerts not attributable to any injected attack."""
        claimed: set[tuple[str, str]] = set()
        for attack in self.attacks:
            record = self.record_for(attack)
            claimed.update(alert.key() for alert in record.matched_alerts)
        return [alert for alert in self.drams.alerts.all()
                if alert.key() not in claimed]
