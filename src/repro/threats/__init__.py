"""Threat models and attack injection.

The paper motivates DRAMS with components that "are compromised so that
access requests or responses are modified, or the policies and the
evaluation process are altered".  This package implements those attacks —
plus attacks on the monitoring itself (probe suppression, log tampering)
and on the chain (history rewriting) — as injectable faults with declared
*expected detections*, which is what the detection benchmarks score
against.
"""

from repro.threats.attacks import (
    Attack,
    RequestTamperAttack,
    DecisionTamperAttack,
    CircumventionAttack,
    EvaluationTamperAttack,
    PolicySwapAttack,
    ProbeSuppressionAttack,
    LogTamperAttack,
    ReplayAttack,
    StalePolicyReplayAttack,
    TamperedPrpReplicaAttack,
    ATTACK_CATALOGUE,
)
from repro.threats.adversary import Adversary, AttackRecord
from repro.threats.chain_attacks import (
    nakamoto_success_probability,
    simulate_rewrite_race,
    RewriteRaceResult,
)

__all__ = [
    "Attack",
    "RequestTamperAttack",
    "DecisionTamperAttack",
    "CircumventionAttack",
    "EvaluationTamperAttack",
    "PolicySwapAttack",
    "ProbeSuppressionAttack",
    "LogTamperAttack",
    "ReplayAttack",
    "StalePolicyReplayAttack",
    "TamperedPrpReplicaAttack",
    "ATTACK_CATALOGUE",
    "Adversary",
    "AttackRecord",
    "nakamoto_success_probability",
    "simulate_rewrite_race",
    "RewriteRaceResult",
]
