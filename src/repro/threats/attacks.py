"""Injectable component-compromise attacks.

Each attack declares the alert types DRAMS is *expected* to raise against
it; the detection experiments score true/false positives against those
declarations.  Attacks install themselves via the components' interceptor
hooks and can be lifted again (for before/after experiments).

Detection map (paper threat → attack class → expected alert):

====================================  ==========================  =====================
Threat (paper Section I/II)           Attack class                Expected alert
====================================  ==========================  =====================
access request modified               RequestTamperAttack         REQUEST_MISMATCH
access response modified              DecisionTamperAttack        DECISION_MISMATCH
PEP circumvents the PDP               CircumventionAttack         MISSING_LOG
evaluation process altered            EvaluationTamperAttack      INCORRECT_DECISION
policy enforced is altered            PolicySwapAttack            INCORRECT_DECISION
probe silenced (monitoring attack)    ProbeSuppressionAttack      MISSING_LOG
LI falsifies logs (monitoring attack) LogTamperAttack             DECISION_MISMATCH
                                      (+ TPM deployments)          / MISSING_LOG
                                                                   + ATTESTATION_FAILURE
request replayed under a known id     ReplayAttack                EQUIVOCATION
PRP replica serves stale policy       StalePolicyReplayAttack     POLICY_VIOLATION
PRP replica serves tampered policy    TamperedPrpReplicaAttack    POLICY_VIOLATION
====================================  ==========================  =====================

The two PRP-replica attacks extend the catalogue to the policy
distribution plane and require a replicated one
(:class:`~repro.policydist.plane.ReplicatedPrpPlane`): they compromise
*one consumer's replica*, and detection rests on the Analyser holding an
independent replica of the policy history.  Against a shared single store
they would silently rewrite the auditor's own view, so injection refuses
that topology instead of faking a detection story.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Optional

from repro.common.errors import ValidationError
from repro.drams.alerts import AlertType
from repro.drams.logs import EntryType, LogEntry
from repro.drams.system import DramsSystem
from repro.accesscontrol.messages import AccessDecision, AccessRequest
from repro.accesscontrol.prp import PolicyVersion
from repro.policydist.replica import PrpReplica
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint


class Attack(ABC):
    """Base class: installable, liftable, self-describing compromise."""

    #: Stable name used in reports.
    name: str = ""
    #: Alert types whose appearance counts as detecting this attack.
    expected_alerts: tuple[AlertType, ...] = ()

    def __init__(self) -> None:
        self.active = False
        self.injected_at: Optional[float] = None
        self.affected_correlations: list[str] = []

    @abstractmethod
    def inject(self, drams: DramsSystem) -> None:
        """Install the compromise."""

    @abstractmethod
    def lift(self, drams: DramsSystem) -> None:
        """Remove the compromise."""

    def _mark_injected(self, drams: DramsSystem) -> None:
        self.active = True
        self.injected_at = drams.federation.sim.now

    def _tenant_pep(self, drams: DramsSystem, tenant: str):
        try:
            return drams.peps[tenant]
        except KeyError:
            raise ValidationError(f"no PEP deployed in tenant {tenant!r}") from None


class RequestTamperAttack(Attack):
    """Compromised PEP escalates the subject's attributes before forwarding.

    The PDP evaluates a request the subject never made; the PEP-in and
    PDP-in hash commitments diverge.  Secondary detection path: if the
    Analyser audits the decision before the (forged) pdp-in log lands, it
    re-derives the expected decision from the *pep-in* plaintext — the
    request the subject actually made — and reports the decision as
    incorrect, which is semantically true under this attack.
    """

    name = "request-tamper"
    expected_alerts = (AlertType.REQUEST_MISMATCH, AlertType.INCORRECT_DECISION)

    def __init__(self, tenant: str, attribute: str = "role",
                 escalated_value: str = "admin") -> None:
        super().__init__()
        self.tenant = tenant
        self.attribute = attribute
        self.escalated_value = escalated_value

    def inject(self, drams: DramsSystem) -> None:
        pep = self._tenant_pep(drams, self.tenant)

        def tamper(request: AccessRequest) -> AccessRequest:
            self.affected_correlations.append(request.correlation())
            forged = copy.deepcopy(request)
            subject = forged.content.setdefault("subject", {})
            subject[self.attribute] = [self.escalated_value]
            return forged

        pep.forward_interceptor = tamper
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        self._tenant_pep(drams, self.tenant).forward_interceptor = None
        self.active = False


class DecisionTamperAttack(Attack):
    """Compromised PEP enforces Permit regardless of the PDP's answer.

    The PDP-out and PEP-out hash commitments diverge whenever the true
    decision was not Permit.
    """

    name = "decision-tamper"
    expected_alerts = (AlertType.DECISION_MISMATCH,)

    def __init__(self, tenant: str, forced_decision: str = "Permit") -> None:
        super().__init__()
        self.tenant = tenant
        self.forced_decision = forced_decision

    def inject(self, drams: DramsSystem) -> None:
        pep = self._tenant_pep(drams, self.tenant)

        def tamper(request: AccessRequest, decision: AccessDecision) -> AccessDecision:
            self.affected_correlations.append(request.correlation())
            forged = copy.deepcopy(decision)
            forged.decision = self.forced_decision
            return forged

        pep.enforcement_interceptor = tamper
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        self._tenant_pep(drams, self.tenant).enforcement_interceptor = None
        self.active = False


class CircumventionAttack(Attack):
    """Compromised PEP never consults the PDP and grants locally.

    No PDP-side log entries ever appear; the timeout sweep flags the
    correlation.
    """

    name = "pdp-circumvention"
    expected_alerts = (AlertType.MISSING_LOG,)

    def __init__(self, tenant: str, granted_decision: str = "Permit") -> None:
        super().__init__()
        self.tenant = tenant
        self.granted_decision = granted_decision

    def inject(self, drams: DramsSystem) -> None:
        pep = self._tenant_pep(drams, self.tenant)

        def fabricate(request: AccessRequest) -> AccessDecision:
            self.affected_correlations.append(request.correlation())
            return AccessDecision(
                request_id=request.request_id,
                decision=self.granted_decision,
                status_code="fabricated",
                decided_at=pep.sim.now,
            )

        pep.bypass = fabricate
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        self._tenant_pep(drams, self.tenant).bypass = None
        self.active = False


class EvaluationTamperAttack(Attack):
    """Compromised PDP evaluation flips Deny to Permit.

    Both hash legs agree (the tampered decision is logged consistently at
    PDP-out and PEP-out), so only the Analyser's independent re-derivation
    exposes it.
    """

    name = "evaluation-tamper"
    expected_alerts = (AlertType.INCORRECT_DECISION,)

    def __init__(self, flip_from: str = "Deny", flip_to: str = "Permit") -> None:
        super().__init__()
        self.flip_from = flip_from
        self.flip_to = flip_to

    def inject(self, drams: DramsSystem) -> None:
        def tamper(request: AccessRequest, decision: AccessDecision) -> AccessDecision:
            if decision.decision != self.flip_from:
                return decision
            self.affected_correlations.append(request.correlation())
            forged = copy.deepcopy(decision)
            forged.decision = self.flip_to
            return forged

        drams.pdp_service.evaluation_interceptor = tamper
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        drams.pdp_service.evaluation_interceptor = None
        self.active = False


class PolicySwapAttack(Attack):
    """The policy the PDP enforces is replaced with a permissive rogue one.

    The PRP (and hence the Analyser) still holds the legitimate policy, so
    every decision that differs under the rogue policy is reported as
    incorrect.
    """

    name = "policy-swap"
    expected_alerts = (AlertType.INCORRECT_DECISION,)

    def __init__(self, rogue_document: dict) -> None:
        super().__init__()
        self.rogue_document = rogue_document

    def inject(self, drams: DramsSystem) -> None:
        drams.pdp_service.policy_override = PolicyDecisionPoint(
            policy_from_dict(self.rogue_document))
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        drams.pdp_service.policy_override = None
        self.active = False


class ProbeSuppressionAttack(Attack):
    """A probing agent is silenced (monitoring-infrastructure attack).

    The suppressed monitoring point stops producing log entries; the
    timeout sweep reports them missing.
    """

    name = "probe-suppression"
    expected_alerts = (AlertType.MISSING_LOG,)

    def __init__(self, probe_key: str, entry_types: tuple[str, ...] = ()) -> None:
        super().__init__()
        self.probe_key = probe_key
        self.entry_types = entry_types

    def inject(self, drams: DramsSystem) -> None:
        try:
            probe = drams.probes[self.probe_key]
        except KeyError:
            raise ValidationError(f"no probe {self.probe_key!r}; "
                                  f"have {sorted(drams.probes)}") from None
        if self.entry_types:
            probe.suppressed_types.update(self.entry_types)
        else:
            probe.suppressed = True
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        probe = drams.probes[self.probe_key]
        probe.suppressed = False
        probe.suppressed_types.difference_update(self.entry_types)
        self.active = False


class LogTamperAttack(Attack):
    """A compromised Logging Interface falsifies log entries before storage.

    Without a TPM the forged commitment disagrees with the honest side of
    the leg (mismatch alerts).  With a TPM the compromise changes the
    platform measurement: the federation key no longer unseals, the LI
    falls silent (missing-log alerts) and attestation rounds flag it.
    """

    name = "log-tamper"
    expected_alerts = (AlertType.DECISION_MISMATCH, AlertType.MISSING_LOG,
                       AlertType.ATTESTATION_FAILURE)

    def __init__(self, tenant: str, forged_decision: str = "Deny") -> None:
        super().__init__()
        self.tenant = tenant
        self.forged_decision = forged_decision

    def inject(self, drams: DramsSystem) -> None:
        try:
            li = drams.interfaces[self.tenant]
        except KeyError:
            raise ValidationError(f"no logging interface in {self.tenant!r}") from None

        def tamper(entry: LogEntry) -> LogEntry:
            if entry.entry_type != EntryType.PEP_OUT:
                return entry
            self.affected_correlations.append(entry.correlation_id)
            forged_payload = dict(entry.payload)
            forged_payload["decision"] = self.forged_decision
            return LogEntry(
                correlation_id=entry.correlation_id,
                entry_type=entry.entry_type,
                tenant=entry.tenant,
                component=entry.component,
                payload=forged_payload,
                observed_at=entry.observed_at,
            )

        li.tamper_interceptor = tamper
        if li.tpm is not None:
            # Modifying the LI's code changes its measured state.
            li.tpm.extend_pcr({"malicious-patch": self.name})
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        li = drams.interfaces[self.tenant]
        li.tamper_interceptor = None
        self.active = False


class ReplayAttack(Attack):
    """A captured request id is reused to smuggle a different access.

    The attacker re-submits a previously-granted request envelope with the
    content swapped for the access they actually want; the correlation id
    collides with the original, so the monitor contract sees a second,
    different payload for an already-recorded monitoring point.
    """

    name = "replay"
    expected_alerts = (AlertType.EQUIVOCATION,)

    def __init__(self, tenant: str) -> None:
        super().__init__()
        self.tenant = tenant
        self._captured: Optional[AccessRequest] = None

    def inject(self, drams: DramsSystem) -> None:
        pep = self._tenant_pep(drams, self.tenant)

        def capture(request: AccessRequest) -> None:
            if self._captured is None:
                self._captured = copy.deepcopy(request)

        pep.on_request_intercepted.append(capture)
        self._capture_hook = capture
        self._mark_injected(drams)

    def replay_now(self, drams: DramsSystem, forged_subject: dict) -> Optional[str]:
        """Fire the replay using the captured envelope; returns the corr id."""
        if self._captured is None:
            return None
        pep = self._tenant_pep(drams, self.tenant)
        forged = copy.deepcopy(self._captured)
        forged.content["subject"] = {key: value if isinstance(value, list) else [value]
                                     for key, value in forged_subject.items()}
        correlation = forged.correlation()
        self.affected_correlations.append(correlation)
        pep.submit(forged)
        return correlation

    def lift(self, drams: DramsSystem) -> None:
        pep = self._tenant_pep(drams, self.tenant)
        if self._capture_hook in pep.on_request_intercepted:
            pep.on_request_intercepted.remove(self._capture_hook)
        self.active = False


class _PrpReplicaAttack(Attack):
    """Shared plumbing for attacks on one PDP shard's PRP replica."""

    def __init__(self, shard: int = 0) -> None:
        super().__init__()
        self.shard = shard
        self._tracker = None

    def _shard_replica(self, drams: DramsSystem) -> PrpReplica:
        try:
            service = drams.pdp_services[self.shard]
        except IndexError:
            raise ValidationError(
                f"no PDP shard {self.shard}; plane has "
                f"{len(drams.pdp_services)} replicas") from None
        replica = service.prp
        if not isinstance(replica, PrpReplica):
            raise ValidationError(
                f"{self.name} needs a replicated policy distribution plane "
                "(ReplicatedPrpPlane): with a shared single store the "
                "compromise would rewrite the Analyser's own policy view")
        return replica

    def _track_shard_requests(self, drams: DramsSystem) -> None:
        """Every request the compromised shard evaluates is attributable."""
        service = drams.pdp_services[self.shard]

        def track(request: AccessRequest) -> None:
            self.affected_correlations.append(request.correlation())

        service.on_request_received.append(track)
        self._tracker = track

    def _untrack(self, drams: DramsSystem) -> None:
        service = drams.pdp_services[self.shard]
        if self._tracker in service.on_request_received:
            service.on_request_received.remove(self._tracker)
        self._tracker = None


class StalePolicyReplayAttack(_PrpReplicaAttack):
    """A compromised PRP replica freezes and keeps serving a superseded policy.

    The shard's decisions stay internally consistent (both hash legs
    agree) and their provenance stamp names a *genuine* historical
    version, so nothing mismatches on-chain.  Once the federation has
    published more than ``policy_staleness_bound`` newer versions, the
    Analyser's skew audit flags every further decision from the frozen
    replica.  Detection therefore requires policy churn after injection —
    the E12 experiment publishes the scenario's policy variants mid-run.
    """

    name = "stale-policy-replay"
    expected_alerts = (AlertType.POLICY_VIOLATION,)

    def inject(self, drams: DramsSystem) -> None:
        replica = self._shard_replica(drams)
        replica.frozen = True
        self._track_shard_requests(drams)
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        replica = self._shard_replica(drams)
        replica.frozen = False  # anti-entropy re-converges the replica
        self._untrack(drams)
        self.active = False


class TamperedPrpReplicaAttack(_PrpReplicaAttack):
    """A compromised PRP replica serves a tampered policy document.

    The attacker rewrites the replica's head version in place (e.g. a
    permit-all document), so the shard evaluates — and honestly stamps —
    a policy whose fingerprint appears in no publisher's history.  The
    Analyser's provenance audit reports ``policy-violation`` with reason
    ``unknown-policy-fingerprint`` once its grace window for replica lag
    expires; decisions that differ under the legitimate policy would
    additionally surface as ``incorrect-decision`` re-derivations.
    """

    name = "tampered-prp-replica"
    expected_alerts = (AlertType.POLICY_VIOLATION, AlertType.INCORRECT_DECISION)

    def __init__(self, rogue_document: dict, shard: int = 0) -> None:
        super().__init__(shard=shard)
        policy_from_dict(rogue_document)  # must parse, or the shard crashes
        self.rogue_document = rogue_document
        self._original: Optional[PolicyVersion] = None

    def inject(self, drams: DramsSystem) -> None:
        replica = self._shard_replica(drams)
        head = replica.current()
        self._original = head
        # In-place head swap: version number and provenance metadata are
        # kept, but the fingerprint (a content hash) necessarily changes —
        # the attacker cannot forge a colliding document.  The shard's
        # compiled-PDP and decision caches key on the fingerprint, so the
        # rogue policy takes effect on the next evaluation.
        replica._versions[-1] = PolicyVersion(
            version=head.version,
            document=self.rogue_document,
            published_at=head.published_at,
            publisher=head.publisher,
        )
        self._track_shard_requests(drams)
        self._mark_injected(drams)

    def lift(self, drams: DramsSystem) -> None:
        replica = self._shard_replica(drams)
        if self._original is not None:
            replica._versions[-1] = self._original
            self._original = None
        self._untrack(drams)
        self.active = False


#: Name → constructor hints for the detection experiments.
ATTACK_CATALOGUE = {
    RequestTamperAttack.name: RequestTamperAttack,
    DecisionTamperAttack.name: DecisionTamperAttack,
    CircumventionAttack.name: CircumventionAttack,
    EvaluationTamperAttack.name: EvaluationTamperAttack,
    PolicySwapAttack.name: PolicySwapAttack,
    ProbeSuppressionAttack.name: ProbeSuppressionAttack,
    LogTamperAttack.name: LogTamperAttack,
    ReplayAttack.name: ReplayAttack,
    StalePolicyReplayAttack.name: StalePolicyReplayAttack,
    TamperedPrpReplicaAttack.name: TamperedPrpReplicaAttack,
}
