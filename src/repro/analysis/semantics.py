"""Denotational semantics over policy documents.

This evaluator interprets the *serialized* policy representation (plain
dicts, as stored in the Policy Retrieval Point) against request dicts.  It
shares no code with the object-model evaluator the PDP runs — different
data structures, different traversal — which is the point: the Analyser
needs an oracle whose failure modes are independent of the monitored
component's.  Differential property tests (``tests/test_differential.py``)
pin the two implementations to each other.  :class:`DecisionOracle` layers
a *compiled* fast path on top (one target-index compilation per policy
version); the interpreter below remains the definitional reference that
path is pinned against.

The semantics is the XACML 3.0 one:

- match:     ⟦m⟧(q) ∈ {T, F, E}
- target:    conjunction of disjunctions of conjunctions over ⟦m⟧
- rule:      effect guarded by target and condition, errors → Ind{effect}
- policy:    combining algorithm folded over rule meanings
- policyset: combining algorithm folded over child meanings
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.common.errors import PolicyError
from repro.common.fastpath import FLAGS
from repro.xacml.context import RequestContext
from repro.xacml.index import compile_target_index
from repro.xacml.parser import policy_from_dict

# Three-valued match outcomes.
_T, _F, _E = "T", "F", "E"

# Decision constants (string-level, aligned with Decision.value).
PERMIT = "Permit"
DENY = "Deny"
NOT_APPLICABLE = "NotApplicable"
IND = "Indeterminate"
IND_P = "Indeterminate{P}"
IND_D = "Indeterminate{D}"
IND_DP = "Indeterminate{DP}"

_INDETERMINATES = {IND, IND_P, IND_D, IND_DP}


class _Error(Exception):
    """Internal evaluation error (→ indeterminate at the enclosing level)."""


def _bag(request: dict, category: str, attribute_id: str) -> list:
    return list(request.get(category, {}).get(attribute_id, []))


# -- function interpretations -----------------------------------------------------

_EQUALITY_FUNCTIONS = frozenset(
    {"string-equal", "integer-equal", "double-equal", "boolean-equal", "time-equal"})


def _interp_function(name: str, args: list) -> Any:
    """Interpret first-order functions over plain values/lists."""
    if name in _EQUALITY_FUNCTIONS:
        _need_arity(name, args, 2)
        return args[0] == args[1]
    if name == "integer-greater-than" or name == "double-greater-than":
        _need_arity(name, args, 2)
        return _num(args[0]) > _num(args[1])
    if name == "integer-greater-than-or-equal":
        _need_arity(name, args, 2)
        return _num(args[0]) >= _num(args[1])
    if name == "integer-less-than" or name == "double-less-than":
        _need_arity(name, args, 2)
        return _num(args[0]) < _num(args[1])
    if name == "integer-less-than-or-equal":
        _need_arity(name, args, 2)
        return _num(args[0]) <= _num(args[1])
    if name == "time-in-range":
        _need_arity(name, args, 3)
        return _num(args[1]) <= _num(args[0]) <= _num(args[2])
    if name == "integer-add":
        return sum(int(_num(a)) for a in args)
    if name == "integer-subtract":
        _need_arity(name, args, 2)
        return int(_num(args[0])) - int(_num(args[1]))
    if name == "integer-multiply":
        out = 1
        for a in args:
            out *= int(_num(a))
        return out
    if name == "double-add":
        return float(sum(_num(a) for a in args))
    if name == "integer-mod":
        _need_arity(name, args, 2)
        return int(_num(args[0])) % int(_num(args[1]))
    if name == "integer-abs":
        _need_arity(name, args, 1)
        return abs(int(_num(args[0])))
    if name == "and":
        return all(_bool(a) for a in args)
    if name == "or":
        return any(_bool(a) for a in args)
    if name == "not":
        _need_arity(name, args, 1)
        return not _bool(args[0])
    if name == "n-of":
        if not args:
            raise _Error("n-of needs a count")
        return sum(1 for a in args[1:] if _bool(a)) >= int(_num(args[0]))
    if name == "string-concatenate":
        return "".join(_str(a) for a in args)
    if name == "string-starts-with":
        _need_arity(name, args, 2)
        return _str(args[1]).startswith(_str(args[0]))
    if name == "string-ends-with":
        _need_arity(name, args, 2)
        return _str(args[1]).endswith(_str(args[0]))
    if name == "string-contains":
        _need_arity(name, args, 2)
        return _str(args[0]) in _str(args[1])
    if name == "string-regexp-match":
        _need_arity(name, args, 2)
        return re.search(_str(args[0]), _str(args[1])) is not None
    if name == "string-normalize-to-lower-case":
        _need_arity(name, args, 1)
        return _str(args[0]).lower()
    if name == "one-and-only":
        _need_arity(name, args, 1)
        bag = _list(args[0])
        if len(bag) != 1:
            raise _Error(f"one-and-only on bag of size {len(bag)}")
        return bag[0]
    if name == "bag-size":
        _need_arity(name, args, 1)
        return len(_list(args[0]))
    if name == "is-in":
        _need_arity(name, args, 2)
        return args[0] in _list(args[1])
    if name == "bag":
        return list(args)
    if name == "intersection":
        _need_arity(name, args, 2)
        right = _list(args[1])
        return [v for v in _list(args[0]) if v in right]
    if name == "union":
        _need_arity(name, args, 2)
        merged = _list(args[0])[:]
        merged.extend(v for v in _list(args[1]) if v not in merged)
        return merged
    if name == "at-least-one-member-of":
        _need_arity(name, args, 2)
        right = _list(args[1])
        return any(v in right for v in _list(args[0]))
    if name == "subset":
        _need_arity(name, args, 2)
        right = _list(args[1])
        return all(v in right for v in _list(args[0]))
    raise _Error(f"uninterpreted function: {name!r}")


def _need_arity(name: str, args: list, arity: int) -> None:
    if len(args) != arity:
        raise _Error(f"{name} expects {arity} args, got {len(args)}")


def _num(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _Error(f"not numeric: {value!r}")
    return value


def _bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise _Error(f"not boolean: {value!r}")
    return value


def _str(value: Any) -> str:
    if not isinstance(value, str):
        raise _Error(f"not a string: {value!r}")
    return value


def _list(value: Any) -> list:
    if not isinstance(value, list):
        raise _Error(f"not a bag: {value!r}")
    return value


# -- expression meaning ------------------------------------------------------------

_HIGHER_ORDER = {"any-of", "all-of", "any-of-any"}


def _eval_expression(expr: dict, request: dict) -> Any:
    if "literal" in expr:
        return expr["literal"]
    if "designator" in expr:
        spec = expr["designator"]
        bag = _bag(request, spec["category"], spec["attribute_id"])
        if spec.get("must_be_present") and not bag:
            raise _Error(f"missing mandatory attribute {spec['attribute_id']}")
        return bag
    if "apply" in expr:
        name = expr["apply"]
        raw_args = expr.get("arguments", [])
        if name in _HIGHER_ORDER:
            return _eval_higher_order(name, raw_args, request)
        args = [_eval_expression(arg, request) for arg in raw_args]
        return _interp_function(name, args)
    raise _Error(f"unrecognised expression node: {sorted(expr.keys())}")


def _eval_higher_order(name: str, raw_args: list, request: dict) -> bool:
    if len(raw_args) != 3:
        raise _Error(f"{name} expects 3 arguments")
    fn_expr = raw_args[0]
    if "literal" not in fn_expr:
        raise _Error(f"{name} needs a function-name literal")
    fn = fn_expr["literal"]
    if name == "any-of":
        value = _eval_expression(raw_args[1], request)
        bag = _list(_eval_expression(raw_args[2], request))
        return any(_bool(_interp_function(fn, [value, el])) for el in bag)
    if name == "all-of":
        value = _eval_expression(raw_args[1], request)
        bag = _list(_eval_expression(raw_args[2], request))
        return all(_bool(_interp_function(fn, [value, el])) for el in bag)
    # any-of-any
    bag_a = _list(_eval_expression(raw_args[1], request))
    bag_b = _list(_eval_expression(raw_args[2], request))
    return any(_bool(_interp_function(fn, [a, b])) for a in bag_a for b in bag_b)


# -- target meaning ---------------------------------------------------------------

def _eval_match(match: dict, request: dict) -> str:
    try:
        bag = _bag(request, match["category"], match["attribute_id"])
        for candidate in bag:
            if _bool(_interp_function(match["function"], [match["value"], candidate])):
                return _T
        return _F
    except _Error:
        return _E


def _eval_target(target: list | None, request: dict) -> str:
    """Conjunction over any_ofs of disjunction over all_ofs of conjunction."""
    if not target:
        return _T
    overall = _T
    for any_of in target:
        best = _F
        for all_of in any_of:
            verdict = _T
            for match in all_of:
                m = _eval_match(match, request)
                if m == _F:
                    verdict = _F
                    break
                if m == _E:
                    verdict = _E
            if verdict == _T:
                best = _T
                break
            if verdict == _E:
                best = _E
        if best == _F:
            return _F
        if best == _E:
            overall = _E
    return overall


# -- rule / policy / policy-set meaning ------------------------------------------

def _indeterminate_for(effect: str) -> str:
    return IND_P if effect == PERMIT else IND_D


def _eval_rule(rule: dict, request: dict) -> str:
    effect = rule["effect"]
    target = _eval_target(rule.get("target"), request)
    if target == _F:
        return NOT_APPLICABLE
    if target == _E:
        return _indeterminate_for(effect)
    condition = rule.get("condition")
    if condition is None:
        return effect
    try:
        outcome = _eval_expression(condition, request)
    except _Error:
        return _indeterminate_for(effect)
    if not isinstance(outcome, bool):
        return _indeterminate_for(effect)
    return effect if outcome else NOT_APPLICABLE


def _combine(algorithm: str, decisions: list[str]) -> str:
    if algorithm == "deny-overrides":
        return _combine_overrides(decisions, winner=DENY, loser=PERMIT,
                                  winner_ind=IND_D, loser_ind=IND_P)
    if algorithm == "permit-overrides":
        return _combine_overrides(decisions, winner=PERMIT, loser=DENY,
                                  winner_ind=IND_P, loser_ind=IND_D)
    if algorithm == "first-applicable":
        for decision in decisions:
            if decision == NOT_APPLICABLE:
                continue
            if decision in _INDETERMINATES:
                return IND
            return decision
        return NOT_APPLICABLE
    if algorithm == "only-one-applicable":
        seen: list[str] = []
        for decision in decisions:
            if decision == NOT_APPLICABLE:
                continue
            if decision in _INDETERMINATES:
                return IND
            seen.append(decision)
            if len(seen) > 1:
                return IND
        return seen[0] if seen else NOT_APPLICABLE
    if algorithm == "deny-unless-permit":
        return PERMIT if PERMIT in decisions else DENY
    if algorithm == "permit-unless-deny":
        return DENY if DENY in decisions else PERMIT
    raise PolicyError(f"unknown combining algorithm: {algorithm!r}")


def _combine_overrides(decisions: list[str], winner: str, loser: str,
                       winner_ind: str, loser_ind: str) -> str:
    saw_loser = False
    saw_w_ind = False
    saw_l_ind = False
    saw_dp = False
    for decision in decisions:
        if decision == winner:
            return winner
        if decision == loser:
            saw_loser = True
        elif decision == winner_ind:
            saw_w_ind = True
        elif decision == loser_ind:
            saw_l_ind = True
        elif decision in (IND_DP, IND):
            saw_dp = True
    if saw_dp:
        return IND_DP
    if saw_w_ind and (saw_l_ind or saw_loser):
        return IND_DP
    if saw_w_ind:
        return winner_ind
    if saw_loser:
        return loser
    if saw_l_ind:
        return loser_ind
    return NOT_APPLICABLE


def _adjust_for_target(combined: str) -> str:
    if combined == PERMIT:
        return IND_P
    if combined == DENY:
        return IND_D
    return combined


def evaluate_document(document: dict, request: dict) -> str:
    """⟦document⟧(request) — the expected decision as a string.

    ``document`` is the serialized policy (see :mod:`repro.xacml.parser`);
    ``request`` is the serialized request context.  Extended indeterminates
    are collapsed to ``"Indeterminate"`` at the top level, matching what a
    PDP reports on the wire.
    """
    decision = _eval_element(document, request)
    if decision in _INDETERMINATES:
        return IND
    return decision


def _eval_element(document: dict, request: dict) -> str:
    kind = document.get("kind")
    if kind == "policy":
        target = _eval_target(document.get("target"), request)
        if target == _F:
            return NOT_APPLICABLE
        combined = _combine(document["rule_combining"],
                            [_eval_rule(rule, request) for rule in document["rules"]])
        return _adjust_for_target(combined) if target == _E else combined
    if kind == "policy_set":
        target = _eval_target(document.get("target"), request)
        if target == _F:
            return NOT_APPLICABLE
        combined = _combine(document["policy_combining"],
                            [_eval_element(child, request)
                             for child in document["children"]])
        return _adjust_for_target(combined) if target == _E else combined
    raise PolicyError(f"unknown policy kind: {kind!r}")


class DecisionOracle:
    """The Analyser's oracle for a fixed policy document.

    Two evaluation modes share this interface:

    - **interpreted** (``compiled=False``): :func:`evaluate_document`, the
      denotational reference semantics above — an interpreter over the
      serialized document, sharing no code with the PDP;
    - **compiled** (the fast path, default per
      :data:`repro.common.fastpath.FLAGS.compiled_oracle`): the document is
      compiled *once per policy version* into the object model and the
      target index (:mod:`repro.xacml.index`), so each checked decision
      costs an indexed evaluation instead of a full document-tree
      interpretation.

    The compiled mode trades the interpreter's independence for
    throughput, which is sound because the two are pinned to each other:
    ``tests/test_differential.py`` holds interpreter ≡ object model on
    random policy trees, ``tests/test_target_index.py`` holds object model
    ≡ index, and the oracle's own differential tests close the loop per
    scenario.  Analyser deployments that want the independent failure
    modes back simply run with the flag off.
    """

    def __init__(self, document: dict, compiled: Optional[bool] = None) -> None:
        if document.get("kind") not in ("policy", "policy_set"):
            raise PolicyError("oracle needs a serialized policy document")
        self.document = document
        self.checks = 0
        self.compiled = FLAGS.compiled_oracle if compiled is None else compiled
        self._index = None
        if self.compiled:
            self._index = compile_target_index(policy_from_dict(document))

    def expected_decision(self, request: dict) -> str:
        """The decision the policies entail for ``request``."""
        self.checks += 1
        if self._index is not None:
            decision, _obligations = self._index.evaluate_full(
                RequestContext.from_dict(request))
            return decision.collapse().value
        return evaluate_document(self.document, request)

    def verify(self, request: dict, observed_decision: str) -> bool:
        """Does the observed decision match the policy semantics?"""
        return self.expected_decision(request) == observed_decision
