"""Formally-grounded policy analysis (the paper's reference [8] substitute).

The DRAMS Analyser must check, *independently of the PDP*, whether an
observed access decision is the one the policies in force actually entail.
We provide:

- :mod:`repro.analysis.semantics` — a denotational evaluator over policy
  *documents* (the serialized JSON form), written independently of the
  object-model evaluator in :mod:`repro.xacml`.  Differential tests keep
  the two in agreement; the Analyser uses this one as its oracle.
- :mod:`repro.analysis.properties` — finite-domain policy verification:
  completeness, rule-conflict detection and change-impact analysis by
  exhaustive (or sampled) model enumeration over declared attribute
  domains.
"""

from repro.analysis.semantics import DecisionOracle, evaluate_document
from repro.analysis.properties import (
    AttributeDomain,
    enumerate_requests,
    check_completeness,
    find_conflicts,
    change_impact,
    PropertyReport,
)

__all__ = [
    "DecisionOracle",
    "evaluate_document",
    "AttributeDomain",
    "enumerate_requests",
    "check_completeness",
    "find_conflicts",
    "change_impact",
    "PropertyReport",
]
