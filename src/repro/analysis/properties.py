"""Finite-domain policy verification.

The FACPL line of work the paper cites supports static policy analysis:
completeness (no request falls through), conflict detection (no two rules
pull in opposite directions on the same request) and change-impact between
policy versions.  We realise those checks by explicit model enumeration
over declared finite attribute domains — exact on the declared space, and
sampling-based beyond a configurable size budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.analysis.semantics import (
    DENY,
    PERMIT,
    _eval_rule,
    _eval_target,
    _F,
    evaluate_document,
)


@dataclass
class AttributeDomain:
    """Finite candidate values per (category, attribute).

    >>> domain = AttributeDomain()
    >>> domain.declare("subject", "role", ["doctor", "nurse", "admin"])
    >>> domain.declare("action", "action-id", ["read", "write"])
    """

    attributes: dict[tuple[str, str], list] = field(default_factory=dict)

    def declare(self, category: str, attribute_id: str, values: list) -> "AttributeDomain":
        if not values:
            raise ValidationError(f"domain for {attribute_id!r} must be non-empty")
        self.attributes[(category, attribute_id)] = list(values)
        return self

    def size(self) -> int:
        total = 1
        for values in self.attributes.values():
            total *= len(values)
        return total

    def keys(self) -> list[tuple[str, str]]:
        return sorted(self.attributes)


def enumerate_requests(domain: AttributeDomain) -> Iterator[dict]:
    """Yield every single-valued request over the declared domain."""
    keys = domain.keys()
    value_lists = [domain.attributes[key] for key in keys]
    for combo in itertools.product(*value_lists):
        request: dict = {}
        for (category, attribute_id), value in zip(keys, combo):
            request.setdefault(category, {})[attribute_id] = [value]
        yield request


def sample_requests(domain: AttributeDomain, count: int, rng: SeededRng) -> Iterator[dict]:
    """Yield ``count`` random single-valued requests over the domain."""
    keys = domain.keys()
    for _ in range(count):
        request: dict = {}
        for category, attribute_id in keys:
            value = rng.choice(domain.attributes[(category, attribute_id)])
            request.setdefault(category, {})[attribute_id] = [value]
        yield request


@dataclass
class PropertyReport:
    """Result of a property check: verdict plus counterexamples."""

    property_name: str
    holds: bool
    checked: int
    counterexamples: list[dict] = field(default_factory=list)
    exhaustive: bool = True

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else f"FAILS ({len(self.counterexamples)} cex)"
        mode = "exhaustive" if self.exhaustive else "sampled"
        return f"{self.property_name}: {verdict} over {self.checked} requests ({mode})"


def _requests_for(domain: AttributeDomain, max_exhaustive: int,
                  sample_size: int, seed: int) -> tuple[Iterator[dict], bool]:
    if domain.size() <= max_exhaustive:
        return enumerate_requests(domain), True
    rng = SeededRng(seed, "property-sampling")
    return sample_requests(domain, sample_size, rng), False


def check_completeness(document: dict, domain: AttributeDomain,
                       max_exhaustive: int = 100_000, sample_size: int = 20_000,
                       seed: int = 7, max_counterexamples: int = 10) -> PropertyReport:
    """Does every request in the domain get a Permit or Deny?

    NotApplicable or Indeterminate outcomes are counterexamples — they mean
    the policy leaves the access undefined, which in a federation deployment
    falls back to PEP-local bias (a classic misconfiguration source).
    """
    requests, exhaustive = _requests_for(domain, max_exhaustive, sample_size, seed)
    counterexamples = []
    checked = 0
    for request in requests:
        checked += 1
        decision = evaluate_document(document, request)
        if decision not in (PERMIT, DENY):
            if len(counterexamples) < max_counterexamples:
                counterexamples.append({"request": request, "decision": decision})
    return PropertyReport(
        property_name="completeness",
        holds=not counterexamples,
        checked=checked,
        counterexamples=counterexamples,
        exhaustive=exhaustive,
    )


def find_conflicts(document: dict, domain: AttributeDomain,
                   max_exhaustive: int = 100_000, sample_size: int = 20_000,
                   seed: int = 7, max_counterexamples: int = 10) -> PropertyReport:
    """Find requests where rules with opposite effects both apply.

    Conflicts are not bugs per se — combining algorithms resolve them — but
    each conflict is a spot where the choice of algorithm, not the rule
    author's intent, decides the outcome.  Only leaf policies are scanned.
    """
    policies = _leaf_policies(document)
    requests, exhaustive = _requests_for(domain, max_exhaustive, sample_size, seed)
    counterexamples = []
    checked = 0
    for request in requests:
        checked += 1
        for policy in policies:
            if _eval_target(policy.get("target"), request) == _F:
                continue
            fired = {PERMIT: [], DENY: []}
            for rule in policy["rules"]:
                outcome = _eval_rule(rule, request)
                if outcome in (PERMIT, DENY):
                    fired[outcome].append(rule["rule_id"])
            if fired[PERMIT] and fired[DENY]:
                if len(counterexamples) < max_counterexamples:
                    counterexamples.append({
                        "request": request,
                        "policy_id": policy["policy_id"],
                        "permit_rules": fired[PERMIT],
                        "deny_rules": fired[DENY],
                    })
    return PropertyReport(
        property_name="rule-conflicts",
        holds=not counterexamples,
        checked=checked,
        counterexamples=counterexamples,
        exhaustive=exhaustive,
    )


def change_impact(old_document: dict, new_document: dict, domain: AttributeDomain,
                  max_exhaustive: int = 100_000, sample_size: int = 20_000,
                  seed: int = 7, max_counterexamples: int = 25) -> PropertyReport:
    """Requests on which two policy versions decide differently.

    The DRAMS Analyser runs this when the PAP publishes a policy update, to
    report exactly which accesses change behaviour.
    """
    requests, exhaustive = _requests_for(domain, max_exhaustive, sample_size, seed)
    counterexamples = []
    checked = 0
    for request in requests:
        checked += 1
        old_decision = evaluate_document(old_document, request)
        new_decision = evaluate_document(new_document, request)
        if old_decision != new_decision:
            if len(counterexamples) < max_counterexamples:
                counterexamples.append({
                    "request": request,
                    "old": old_decision,
                    "new": new_decision,
                })
    return PropertyReport(
        property_name="change-impact",
        holds=not counterexamples,
        checked=checked,
        counterexamples=counterexamples,
        exhaustive=exhaustive,
    )


def _leaf_policies(document: dict) -> list[dict]:
    if document.get("kind") == "policy":
        return [document]
    if document.get("kind") == "policy_set":
        leaves: list[dict] = []
        for child in document.get("children", []):
            leaves.extend(_leaf_policies(child))
        return leaves
    raise ValidationError(f"unknown policy kind: {document.get('kind')!r}")
