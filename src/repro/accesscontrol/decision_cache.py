"""LRU cache of PDP decisions keyed by policy fingerprint and request.

The PDP is the single shared component every federation access request
flows through, so repeated evaluation of identical (policy, request)
pairs is the hot path's dominant waste.  The cache keys on:

- the *policy fingerprint* — the content hash the PRP assigns each
  published version, so a policy change can never serve stale decisions;
- the *canonicalised request attributes*, projected onto the policy's
  attribute footprint (see :func:`repro.xacml.index.attribute_footprint`)
  so attributes the policy cannot read (timestamps, payload padding) do
  not fragment the key space.

Entries are LRU-bounded; hit/miss/eviction/invalidation counters feed the
fast-path benchmark.  :meth:`DecisionCache.bind` subscribes to a PRP so
every policy publication flushes the cache — fingerprint keying already
prevents stale hits, but flushing bounds memory across policy churn and
keeps the invalidation behaviour observable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

from repro.crypto.hashing import hash_value


def project_attributes(content: dict, footprint: Iterable[tuple[str, str]]) -> dict:
    """Restrict a serialized request context to the policy's footprint."""
    keep = footprint if isinstance(footprint, (set, frozenset)) else set(footprint)
    projected: dict = {}
    for category, attributes in content.items():
        kept = {
            attribute_id: values
            for attribute_id, values in attributes.items()
            if (category, attribute_id) in keep
        }
        if kept:
            projected[category] = kept
    return projected


class DecisionCache:
    """Bounded LRU of serialized PDP responses."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        #: key -> (policy fingerprint, response payload)
        self._entries: "OrderedDict[str, tuple[str, dict]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._bound_prps: list = []

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys --------------------------------------------------------------------

    @staticmethod
    def request_key(
        fingerprint: str,
        content: dict,
        footprint: Optional[Iterable[tuple[str, str]]] = None,
    ) -> str:
        """Cache key for one request under one policy version."""
        payload = content if footprint is None else project_attributes(content, footprint)
        return hash_value({"policy": fingerprint, "request": payload})

    # -- lookup ------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Membership test without touching counters or LRU order."""
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return self._copy_response(entry[1])

    def put(self, key: str, fingerprint: str, response: dict) -> None:
        self._entries[key] = (fingerprint, self._copy_response(response))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def export_entries(self) -> list[tuple[str, str, dict]]:
        """Snapshot ``(key, fingerprint, response)`` triples, oldest first.

        The elastic decision plane uses this to migrate a drained shard's
        partitioned cache to the surviving shards; LRU order is preserved
        so re-inserting in iteration order keeps the hottest entries
        resident at the destination.
        """
        return [
            (key, fingerprint, self._copy_response(response))
            for key, (fingerprint, response) in self._entries.items()
        ]

    @staticmethod
    def _copy_response(response: dict) -> dict:
        # Decisions flow into mutable AccessDecision payloads; hand out
        # copies so a consumer can never corrupt the cached entry.  The
        # nested obligation attributes must be copied too, or a consumer
        # mutating them would poison every later cache hit.
        copied = dict(response)
        copied["obligations"] = [
            {**ob, "attributes": dict(ob.get("attributes", {}))}
            for ob in response.get("obligations", [])
        ]
        return copied

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Drop entries for one policy version, or everything."""
        if fingerprint is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [key for key, (entry_fp, _) in self._entries.items() if entry_fp == fingerprint]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        self.invalidations += dropped
        return dropped

    def bind(self, prp) -> None:
        """Flush on every policy publication from ``prp``.

        Idempotent per PRP: a cache shared between several PDP services
        over one PRP registers a single flush listener.
        """
        if any(bound is prp for bound in self._bound_prps):
            return
        self._bound_prps.append(prp)
        prp.on_publish(lambda version: self.invalidate())

    # -- reporting ---------------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
