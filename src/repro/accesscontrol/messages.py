"""Wire messages between PEPs and the decision plane.

The *semantic payloads* (request content, decision content) are hashed by
DRAMS probes on both sides of each hop; envelope metadata (ids are minted
once and echoed, timestamps vary per hop) is deliberately excluded from
the hashed payload so honest latency never looks like tampering.

``request_id`` doubles as the idempotency key across shard retries: a PEP
failing over to another PDP replica re-sends the *same* envelope, every
replica echoes the id back in its ``ac_response``, and the PEP enforces
only the first response it receives.  Probes on different replicas that
observe the same retried request hash identical request payloads, and —
as long as both replicas evaluate under the same policy version — equal
decision payloads too, so the monitor contract sees duplicate but
consistent log entries and stays quiet.  A policy publish racing a
failover *can* make two honest replicas answer one correlation
differently; because every decision is stamped with the policy
``(version, fingerprint)`` it was evaluated under, the monitor contract
reads that as *policy churn* (two replicas, two declared policy versions)
rather than equivocation against honest replicas, and the Analyser
decides — against its own policy history and the configured staleness
bound — whether the skew was honest propagation or a violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.ids import correlation_id, new_id
from repro.crypto.hashing import hash_value


@dataclass
class AccessRequest:
    """An access attempt intercepted by a PEP.

    ``content`` is the serialized XACML request context;
    ``request_id`` is minted by the receiving PEP and echoed end-to-end;
    ``issued_at`` is the simulated time the subject made the attempt.
    """

    content: dict[str, Any]
    origin_tenant: str
    request_id: str = field(default_factory=lambda: new_id("req"))
    issued_at: float = 0.0

    def semantic_payload(self) -> dict:
        """What tampering would have to change — and what probes hash."""
        return {"request_id": self.request_id, "content": self.content}

    def payload_hash(self) -> str:
        return hash_value(self.semantic_payload())

    def correlation(self) -> str:
        """Monitoring correlation id: unique per request instance.

        Derived from the request id, origin and issue time, so two
        identical accesses made at different times correlate separately
        (replayed requests cannot hide under an old correlation).
        """
        return correlation_id({
            "request_id": self.request_id,
            "origin": self.origin_tenant,
            "issued_at": self.issued_at,
        })

    def to_dict(self) -> dict:
        return {
            "content": self.content,
            "origin_tenant": self.origin_tenant,
            "request_id": self.request_id,
            "issued_at": self.issued_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccessRequest":
        return cls(
            content=dict(data["content"]),
            origin_tenant=data["origin_tenant"],
            request_id=data["request_id"],
            issued_at=float(data.get("issued_at", 0.0)),
        )


def decision_payload(request_id: str, decision: str,
                     obligations: list[dict] | None = None,
                     policy_version: int = 0,
                     policy_fingerprint: str = "") -> dict:
    """The semantic decision content hashed at PDP-out and PEP-enforce.

    ``policy_version``/``policy_fingerprint`` declare which policy the
    evaluator claims it decided under (0/"" when no policy was published,
    or for locally fabricated decisions that never saw an evaluator).
    They are part of the hashed payload: a decision and its provenance
    travel — and commit — together, which is what lets the monitor tell
    replica version skew apart from tampering.
    """
    return {
        "request_id": request_id,
        "decision": decision,
        "obligations": obligations or [],
        "policy_version": policy_version,
        "policy_fingerprint": policy_fingerprint,
    }


@dataclass
class AccessDecision:
    """The PDP's reply travelling back to the PEP."""

    request_id: str
    decision: str
    obligations: list[dict] = field(default_factory=list)
    status_code: str = ""
    decided_at: float = 0.0
    #: Policy provenance stamp: the version/fingerprint the evaluator
    #: decided under (see :func:`decision_payload`).
    policy_version: int = 0
    policy_fingerprint: str = ""

    def semantic_payload(self) -> dict:
        return decision_payload(self.request_id, self.decision, self.obligations,
                                self.policy_version, self.policy_fingerprint)

    def payload_hash(self) -> str:
        return hash_value(self.semantic_payload())

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "decision": self.decision,
            "obligations": list(self.obligations),
            "status_code": self.status_code,
            "decided_at": self.decided_at,
            "policy_version": self.policy_version,
            "policy_fingerprint": self.policy_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccessDecision":
        return cls(
            request_id=data["request_id"],
            decision=data["decision"],
            obligations=list(data.get("obligations", [])),
            status_code=data.get("status_code", ""),
            decided_at=float(data.get("decided_at", 0.0)),
            policy_version=int(data.get("policy_version", 0)),
            policy_fingerprint=data.get("policy_fingerprint", ""),
        )
