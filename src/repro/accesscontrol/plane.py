"""The decision plane: how PEPs reach the federation's policy evaluators.

The paper deploys the PDP as a single logical evaluator in the
infrastructure tenant.  That is an architectural choice, not a law of the
system — and after the PDP and monitoring fast paths, it is the remaining
throughput ceiling.  This module turns the choice into an explicit API:
PEPs are constructed with a :class:`DecisionPlane` handle instead of a raw
PDP address, and the plane decides how many :class:`PdpService` replicas
exist *at any moment*, where each request is routed, and in what order
the PEP fails over when a shard does not answer.

Two backends ship:

- :class:`SinglePdpPlane` — one replica at the conventional
  ``pdp@infrastructure`` address.  Deploying the default stack through it
  is bit-identical to the previous hard-wired topology (same addresses,
  same construction order, same event sequence).
- :class:`ShardedPdpPlane` — N replicas in the infrastructure tenant
  behind consistent hashing on the *decision-cache key* (policy
  fingerprint + footprint-projected request attributes, see
  :mod:`repro.accesscontrol.decision_cache`).  Keying the ring on the
  cache key gives cache affinity for free: every request that could share
  a cached decision lands on the same shard, so a ``partitioned`` cache
  policy loses no hits to routing.  A ``shared`` policy hands one
  :class:`DecisionCache` to every replica instead.  Either way the caches
  flush coherently on every PRP publish (``DecisionCache.bind`` is
  idempotent per PRP).

Shard membership is **elastic**: :meth:`ShardedPdpPlane.add_shard` grows
the pool at runtime and :meth:`ShardedPdpPlane.drain_shard` retires a
replica gracefully — the drained shard leaves the hash ring immediately
(its key range re-homes to the ring successors, and a partitioned cache's
entries migrate with it), finishes its in-flight evaluations, and is only
then removed from the network.  Monitoring systems subscribe to
membership events (:meth:`DecisionPlane.on_membership`) so probes attach
to a new shard before it serves its first request and detach from a
drained shard only after its last reply — coverage never gaps.

Two routing upgrades layer on top of ring order, both opt-in and both
pure topology (decisions and alerts stay bit-identical — E13's
differential arm pins this):

- ``queue_aware=True`` — each shard exposes its *busy cursor*
  (:meth:`~repro.accesscontrol.pdp_service.PdpService.busy_seconds`);
  when the ring-preferred shard's backlog exceeds the best alternative by
  more than ``queue_threshold`` seconds, the order is re-sorted around
  the hot shard instead of waiting out the PEP's per-attempt timeout.
- ``locality_aware=True`` — shards deploy round-robin across the member
  clouds' infrastructure sections and the plane prefers the shard
  co-located with the requesting PEP's cloud (metro latency instead of
  the federation WAN), falling back to ring order across clouds.

Elasticity closes the loop in :mod:`repro.accesscontrol.autoscale`: an
:class:`~repro.accesscontrol.autoscale.AutoscaleController` drives
:meth:`add_shard` / :meth:`drain_shard` from the very signals this module
already exposes (busy cursors plus the in-flight projection,
:meth:`ShardedPdpPlane.projected_backlogs`), so membership changes need
not be scripted by the harness at all.  Three plane-side features support
it: shard *warm-up* (a shard added to a partitioned-cache pool pre-seeds
its :class:`DecisionCache` with the entries whose keys re-home to it, via
the same ``export_entries`` path drains migrate through), *weighted
shards* (per-address vnode multipliers, :meth:`ShardedPdpPlane.set_shard_weights`,
so heterogeneous capacity gets a proportional key range), and an optional
*gossiped load view* (``load_view=CrossPepLoadView(...)``) replacing the
in-process route projection with per-tenant views converged over simnet
messages — PEPs in different processes share one picture of shard queues.

Monitoring coverage follows the plane: DRAMS and the centralized baseline
attach probes to *every* replica (:func:`repro.drams.probe.attach_plane_probes`),
and track membership changes live, so elasticity never opens an
unobserved decision path.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.accesscontrol.decision_cache import DecisionCache
from repro.accesscontrol.messages import AccessRequest
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion
from repro.common.errors import ValidationError
from repro.common.ids import short_hash
from repro.xacml.index import attribute_footprint
from repro.xacml.parser import policy_from_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.accesscontrol.autoscale import CrossPepLoadView
    from repro.federation.federation import Federation


#: Membership listener signature: ``listener(event, service)`` with
#: ``event`` one of ``"added"`` (routable, probe now), ``"draining"``
#: (left the ring, still finishing in-flight work), ``"removed"``
#: (quiescent and off the network, probe may detach), ``"crashed"``
#: (abruptly off the network with in-flight work lost — the probe died
#: with the process) or ``"restarted"`` (back up at the same address
#: under a fresh incarnation, probe re-attach before first request).
MembershipListener = Callable[[str, PdpService], None]


class DecisionPlane:
    """Abstract handle PEPs use to reach policy evaluators.

    A plane owns its :class:`PdpService` replicas (created by
    :meth:`deploy`) and answers one routing question per request:
    :meth:`endpoints` — which shard addresses to try, in failover order.
    Planes with elastic membership announce changes through
    :meth:`on_membership`; fixed-membership planes simply never fire.
    """

    #: Deployed evaluator services, primary first.  Monitoring systems
    #: attach probes to every entry; ``services[0]`` is the conventional
    #: compromise target for the threat experiments.
    _services: list[PdpService]

    def __init__(self) -> None:
        self._services = []
        self._membership_listeners: list[MembershipListener] = []
        #: Optional :class:`repro.telemetry.tracing.Tracer`; when set,
        #: membership changes leave instant markers on a ``lifecycle``
        #: trace so elasticity shows up on the same timeline as requests.
        self.telemetry = None

    @property
    def services(self) -> list[PdpService]:
        return list(self._services)

    def deploy(self, federation: "Federation", prp) -> "DecisionPlane":
        """Create the plane's evaluators in the infrastructure tenant.

        ``prp`` is either a bare :class:`PolicyRetrievalPoint` (every
        evaluator shares it, the pre-policydist convention) or a
        :class:`~repro.policydist.plane.PolicyDistributionPlane`, in which
        case each evaluator reads from the replica the policy plane
        assigns it (``pdp``, ``pdp-0``, … as consumer names).
        """
        raise NotImplementedError

    @staticmethod
    def _policy_plane(prp):
        """Normalise ``prp`` into a policy distribution plane.

        Imported lazily: :mod:`repro.policydist` imports this package's
        ``prp`` module, so a module-level import here would deadlock
        whichever package is imported first.
        """
        from repro.policydist.plane import as_policy_plane

        return as_policy_plane(prp)

    def endpoints(self, request: AccessRequest) -> tuple[str, ...]:
        """Shard addresses for ``request``, primary first, failover order.

        PEPs re-query this on every failover, so the answer may change
        between attempts — a drained shard drops out of the order, a hot
        shard is routed around — without the PEP holding stale state.
        """
        raise NotImplementedError

    def note_dispatch(self, address: str, source: Optional[str] = None) -> None:
        """Tell the plane a request was actually sent to ``address``.

        PEPs call this once per dispatch (initial send and each failover
        retry), passing their tenant as ``source`` so a gossiped load
        view can charge the dispatch to the right per-tenant picture.
        Load-aware planes use it to project in-flight work onto the
        right shard; querying :meth:`endpoints` alone — for routing,
        re-planning or inspection — must never charge a shard, because
        the caller may dispatch to a different entry (or not at all).
        The base plane ignores it.
        """

    def on_membership(self, listener: MembershipListener) -> None:
        """Subscribe to shard membership changes (see ``MembershipListener``).

        Monitoring orchestrators use this to attach a probe to a shard
        added at runtime before it serves its first request, and to
        detach a drained shard's probe only once it is quiescent.
        """
        self._membership_listeners.append(listener)

    def _notify_membership(self, event: str, service: PdpService) -> None:
        if self.telemetry is not None:
            self.telemetry.instant(
                f"plane.{event}", service.address, context=None,
                trace_id="lifecycle", category="membership")
        for listener in list(self._membership_listeners):
            listener(event, service)

    def caches(self) -> list[DecisionCache]:
        """The distinct decision caches behind the plane (for inspection)."""
        seen: list[DecisionCache] = []
        for service in self._services:
            cache = service.decision_cache
            if cache is not None and all(cache is not other for other in seen):
                seen.append(cache)
        return seen

    def describe(self) -> dict:
        """Topology summary (benchmarks and the Figure 1 walkthrough)."""
        return {
            "kind": type(self).__name__,
            "shards": len(self._services),
            "addresses": [service.address for service in self._services],
        }

    def stats(self) -> dict:
        """Per-shard service counters plus aggregate cache stats."""
        return {
            "requests_served": {
                service.address: service.requests_served for service in self._services
            },
            "caches": [cache.stats() for cache in self.caches()],
        }

    def _ensure_undeployed(self) -> None:
        if self._services:
            raise ValidationError(f"{type(self).__name__} is already deployed")


class SinglePdpPlane(DecisionPlane):
    """Today's topology: one evaluator at ``pdp@infrastructure``.

    ``service_kwargs`` are forwarded to the :class:`PdpService`
    constructor (cache toggles, processing delays, serialization).
    """

    def __init__(self, service_kwargs: Optional[dict] = None) -> None:
        super().__init__()
        self.service_kwargs = dict(service_kwargs or {})
        self._endpoints: tuple[str, ...] = ()

    @classmethod
    def at(cls, address: str) -> "SinglePdpPlane":
        """Route-only plane for manually wired deployments (tests).

        The evaluator at ``address`` is constructed by the caller; the
        plane merely routes to it.  ``services`` is empty, so monitoring
        orchestrators reject such planes — wrap the service with
        :meth:`wrap` when probes must attach.
        """
        plane = cls()
        plane._endpoints = (address,)
        return plane

    @classmethod
    def wrap(cls, service: PdpService) -> "SinglePdpPlane":
        """Adopt an existing, already-registered evaluator service."""
        plane = cls()
        plane._services = [service]
        plane._endpoints = (service.address,)
        return plane

    def deploy(self, federation: "Federation", prp) -> "SinglePdpPlane":
        self._ensure_undeployed()
        if self._endpoints:
            raise ValidationError("route-only plane (SinglePdpPlane.at) cannot be deployed")
        policy_plane = self._policy_plane(prp).deploy(federation)
        infra = federation.infrastructure_tenant
        service = PdpService(
            federation.network,
            infra.address("pdp"),
            policy_plane.retrieval_point_for("pdp"),
            **self.service_kwargs,
        )
        infra.register_host(service.address)
        self._services = [service]
        self._endpoints = (service.address,)
        return self

    def endpoints(self, request: AccessRequest) -> tuple[str, ...]:
        if not self._endpoints:
            raise ValidationError("decision plane is not deployed")
        return self._endpoints


class ShardedPdpPlane(DecisionPlane):
    """Evaluator replicas behind consistent hashing, elastic at runtime.

    ``shards`` is the *initial* membership; :meth:`add_shard` and
    :meth:`drain_shard` change it live (``self.shards`` tracks the
    current routable count).  ``cache_policy`` is ``"shared"`` (one
    :class:`DecisionCache` handed to every replica) or ``"partitioned"``
    (one per replica; routing affinity keeps each shard's cache hot, and
    a drained shard's entries migrate to their ring successors).
    ``virtual_nodes`` controls ring balance; the default spreads load
    within a few percent for small shard counts.

    Routing upgrades (both default off, preserving classic ring order):

    - ``queue_aware`` re-sorts the failover order around shards whose
      busy cursor exceeds the best alternative by more than
      ``queue_threshold`` seconds;
    - ``locality_aware`` places shards round-robin across the member
      clouds' infrastructure sections at deploy time and prefers the
      shard co-located with the requesting PEP's cloud.

    ``drain_grace`` is the minimum simulated time a draining shard lingers
    before removal (covering requests already on the wire toward it);
    quiescence additionally requires zero pending evaluations, checked
    every ``drain_poll_interval`` seconds.

    Elasticity support: ``warm_caches`` (default on) pre-seeds a runtime-added
    shard's partitioned cache with the entries re-homing to it;
    :meth:`set_shard_weights` scales each shard's vnode count for
    heterogeneous capacity; ``load_view`` (requires ``queue_aware``)
    swaps the in-process route projection for a gossiped cross-PEP view
    (see :mod:`repro.accesscontrol.autoscale`).
    """

    CACHE_POLICIES = ("shared", "partitioned")

    #: Footprint memo bound — same flip-flop-churn rationale as
    #: ``PdpService.pdp_cache_size``: policy publications are unbounded
    #: over a federation's lifetime, distinct *concurrent* versions are not.
    FOOTPRINT_MEMO_SIZE = 16

    def __init__(
        self,
        shards: int = 2,
        cache_policy: str = "shared",
        virtual_nodes: int = 32,
        service_kwargs: Optional[dict] = None,
        queue_aware: bool = False,
        locality_aware: bool = False,
        queue_threshold: float = 0.0,
        routing_horizon: float = 0.05,
        drain_grace: float = 1.0,
        drain_poll_interval: float = 0.25,
        warm_caches: bool = True,
        load_view: "Optional[CrossPepLoadView]" = None,
    ) -> None:
        super().__init__()
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if cache_policy not in self.CACHE_POLICIES:
            raise ValidationError(
                f"cache_policy must be one of {self.CACHE_POLICIES}, got {cache_policy!r}"
            )
        if virtual_nodes < 1:
            raise ValidationError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        if queue_threshold < 0:
            raise ValidationError(f"queue_threshold must be >= 0, got {queue_threshold}")
        if routing_horizon < 0:
            raise ValidationError(f"routing_horizon must be >= 0, got {routing_horizon}")
        if drain_grace < 0:
            raise ValidationError(f"drain_grace must be >= 0, got {drain_grace}")
        if drain_poll_interval <= 0:
            raise ValidationError(f"drain_poll_interval must be positive, got {drain_poll_interval}")
        if load_view is not None and not queue_aware:
            # The view only feeds the queue-aware reorder; accepting it on
            # a queue-blind plane would silently gossip into a void.
            raise ValidationError("load_view requires queue_aware=True")
        self.shards = shards
        self.cache_policy = cache_policy
        self.virtual_nodes = virtual_nodes
        self.service_kwargs = dict(service_kwargs or {})
        self.queue_aware = queue_aware
        self.locality_aware = locality_aware
        self.queue_threshold = queue_threshold
        self.routing_horizon = routing_horizon
        self.drain_grace = drain_grace
        self.drain_poll_interval = drain_poll_interval
        self.warm_caches = warm_caches
        self.load_view = load_view
        self.rebalances = 0
        #: Decision-cache entries copied into shards added at runtime
        #: (partitioned pools only; see :meth:`add_shard`).
        self.warmed_entries = 0
        #: Per-address vnode multipliers (1.0 when absent).  Set through
        #: :meth:`set_shard_weights`; the default leaves the ring
        #: bit-identical to the unweighted layout.
        self._shard_weights: dict[str, float] = {}
        #: Queue-aware dispatches not yet visible in a shard's busy
        #: cursor: ``(routed_at, address)`` pairs younger than
        #: ``routing_horizon``.  A shard's cursor only moves once the
        #: dispatched message *arrives*, so without this projection every
        #: request in a burst sees the same stale cursors and herds onto
        #: whichever shard currently looks idle.
        self._recent_routes: "deque[tuple[float, str]]" = deque()
        self._prp: Optional[PolicyRetrievalPoint] = None
        self._footprints: "OrderedDict[str, frozenset]" = OrderedDict()
        self._ring: list[tuple[int, int]] = []
        self._ring_points: list[int] = []
        self._federation: Optional["Federation"] = None
        self._policy_plane_handle = None
        self._shared_cache: Optional[DecisionCache] = None
        self._next_index = shards
        self._draining: dict[str, PdpService] = {}
        #: Shards currently crashed (fault plane).  They stay in
        #: ``_services`` — and on the ring — because a real crash is not
        #: announced to the router; failure detection happens at the PEP.
        self._crashed: dict[str, PdpService] = {}
        self._shard_cloud: dict[str, str] = {}
        self._tenant_cloud: dict[str, str] = {}

    # -- deployment --------------------------------------------------------------

    def deploy(self, federation: "Federation", prp) -> "ShardedPdpPlane":
        self._ensure_undeployed()
        if self.cache_policy == "partitioned" and "decision_cache" in self.service_kwargs:
            # Forwarding one cache object to every replica would silently
            # deploy a shared topology under a "partitioned" label.
            raise ValidationError(
                "cache_policy='partitioned' builds one cache per shard; "
                "pass cache_policy='shared' to supply a decision_cache"
            )
        policy_plane = self._policy_plane(prp).deploy(federation)
        self._federation = federation
        self._policy_plane_handle = policy_plane
        if self.cache_policy == "shared" and self.service_kwargs.get("use_decision_cache", True):
            # "or" would discard an *empty* supplied cache (len() == 0 is falsy).
            supplied = self.service_kwargs.get("decision_cache")
            self._shared_cache = supplied if supplied is not None else DecisionCache()
        if self.locality_aware:
            # Members map to one cloud each; requests carry their origin
            # tenant, so this is the request → cloud side of co-location.
            for tenant in federation.member_tenants:
                cloud = federation.cloud_of_tenant(tenant.name)
                if cloud is not None:
                    self._tenant_cloud[tenant.name] = cloud
        services = [self._build_service(index) for index in range(self.shards)]
        # Route on the authority store's head: affinity only needs the key
        # to be consistent across requests, and the publisher's view is the
        # one stable head while replicas converge.
        self._adopt(services, policy_plane.authority)
        if self.load_view is not None:
            # One gossip node per member tenant, registered before the
            # topology finalises so their links get wired like any host.
            self.load_view.deploy(federation)
        return self

    def _build_service(self, index: int) -> PdpService:
        """Construct, register and (when locality-aware) place shard ``index``."""
        federation = self._federation
        infra = federation.infrastructure_tenant
        kwargs = dict(self.service_kwargs)
        if self._shared_cache is not None:
            kwargs["decision_cache"] = self._shared_cache
        # Each shard reads policy from its own assigned replica; under
        # a SingleStorePlane these all alias one store (the pre-plane
        # wiring), under a ReplicatedPrpPlane they skew independently.
        service = PdpService(
            federation.network,
            infra.address(f"pdp-{index}"),
            self._policy_plane_handle.retrieval_point_for(f"pdp-{index}"),
            **kwargs,
        )
        section = None
        if self.locality_aware and federation.clouds:
            cloud = federation.clouds[index % len(federation.clouds)]
            section = next((s for s in infra.sections if s.cloud_name == cloud.name), None)
        infra.register_host(service.address, section=section)
        if section is not None:
            self._shard_cloud[service.address] = section.cloud_name
        return service

    @classmethod
    def over(
        cls,
        services: Sequence[PdpService],
        prp: Optional[PolicyRetrievalPoint] = None,
        virtual_nodes: int = 32,
        queue_aware: bool = False,
        queue_threshold: float = 0.0,
        routing_horizon: float = 0.05,
    ) -> "ShardedPdpPlane":
        """Wrap already-deployed evaluators (manual wiring and tests).

        Deploy-only knobs (``cache_policy``, ``service_kwargs``,
        ``locality_aware`` — placement happens at deployment) are
        deliberately not accepted — the adopted services were built by
        the caller, so the plane cannot change their caches or delays and
        reports ``cache_policy="external"``.  ``queue_aware`` is purely a
        routing policy, so it is accepted; :meth:`add_shard` is not
        available (the plane cannot build services), but
        :meth:`drain_shard` works on adopted simulator-bound services.
        Pass ``prp`` whenever routing affinity matters: without it the
        ring keys on the *raw* request content, and per-request
        attributes (``time-of-day`` in particular) fragment the key
        space, so partitioned caches see few repeat hits.
        """
        if not services:
            raise ValidationError("a sharded plane needs at least one service")
        plane = cls(
            shards=len(services),
            virtual_nodes=virtual_nodes,
            queue_aware=queue_aware,
            queue_threshold=queue_threshold,
            routing_horizon=routing_horizon,
        )
        plane.cache_policy = "external"  # whatever the adopted services carry
        plane._adopt(list(services), prp)
        return plane

    def _adopt(self, services: list[PdpService], prp: Optional[PolicyRetrievalPoint]) -> None:
        self._services = services
        self._prp = prp
        self._next_index = max(self._next_index, len(services))
        self._rebuild_ring()

    def _rebuild_ring(self) -> None:
        """Recompute the consistent-hash ring over the routable services.

        Vnode points key on shard *addresses*, so adding or draining a
        shard moves only the key ranges adjacent to its vnodes — the
        surviving shards keep their positions (and their cache affinity).
        A shard's vnode count scales with its weight (default 1.0, which
        reproduces the unweighted ring exactly); a shard observed to be
        twice as fast can carry twice the key range.
        """
        ring = []
        for index, service in enumerate(self._services):
            for vnode in range(self._vnode_count(service.address)):
                point = int(short_hash(f"{service.address}#vnode-{vnode}", 16), 16)
                ring.append((point, index))
        ring.sort()
        self._ring = ring
        self._ring_points = [point for point, _ in ring]
        self.shards = len(self._services)

    def _vnode_count(self, address: str) -> int:
        return max(1, round(self.virtual_nodes * self._shard_weights.get(address, 1.0)))

    @property
    def shard_weights(self) -> dict[str, float]:
        """Current vnode multipliers (addresses not listed weigh 1.0)."""
        return dict(self._shard_weights)

    def set_shard_weights(self, weights: dict[str, float]) -> bool:
        """Merge per-shard vnode multipliers; returns True if the ring moved.

        ``weights`` maps routable shard addresses to positive multipliers
        (1.0 = the plane's ``virtual_nodes`` baseline).  Addresses not
        mentioned keep their previous weight.  The ring is only rebuilt —
        and ``rebalances`` only bumped — when some shard's effective
        vnode count actually changes, so a controller may call this every
        tick without churning key ranges (small weight nudges below the
        vnode quantum are absorbed).
        """
        routable = {service.address for service in self._services}
        for address, weight in weights.items():
            if address not in routable:
                raise ValidationError(f"no routable shard at {address!r}")
            if weight <= 0:
                raise ValidationError(f"shard weight must be positive, got {weight} for {address!r}")
        before = {address: self._vnode_count(address) for address in routable}
        self._shard_weights.update(weights)
        if all(self._vnode_count(address) == before[address] for address in routable):
            return False
        self._rebuild_ring()
        self.rebalances += 1
        return True

    # -- elastic membership ------------------------------------------------------

    def add_shard(self) -> PdpService:
        """Grow the pool by one replica, live.

        The new shard joins the hash ring immediately (only the key
        ranges adjacent to its vnodes re-home to it), reads policy from
        its own assigned replica, shares or owns a decision cache per
        ``cache_policy``, and is announced to membership listeners
        *before* this method returns — so monitoring probes attach before
        the shard can serve a single request.
        """
        if self._federation is None:
            raise ValidationError(
                "add_shard needs a deployed plane (ShardedPdpPlane.over wraps "
                "externally built services; build and adopt a new one instead)"
            )
        index = self._next_index
        self._next_index += 1
        infra = self._federation.infrastructure_tenant
        known = set(infra.host_addresses)
        service = self._build_service(index)
        self._services.append(service)
        self._rebuild_ring()
        self.rebalances += 1
        if self.warm_caches:
            self.warmed_entries += self._warm_new_shard(service)
        # New hosts, new links: the shard itself plus any host the policy
        # plane provisioned for its replica get their LAN (and, when
        # placed, same-cloud metro) latencies wired before any request
        # routes here — O(hosts) per new host, not a full re-finalize.
        for address in infra.host_addresses:
            if address not in known:
                self._federation.wire_host(address)
        self._notify_membership("added", service)
        return service

    def _warm_new_shard(self, service: PdpService) -> int:
        """Pre-seed a new shard's partitioned cache from the pool, return count.

        The new shard's vnodes claim key ranges previously owned by its
        ring neighbours; without warm-up every re-homed key that was hot
        in a neighbour's cache restarts cold here (the cold-start latency
        cliff).  Walking the surviving shards' ``export_entries`` — the
        same path drains migrate through — and copying entries whose key
        now homes on the new shard closes that gap before the membership
        event even fires.  Shared caches (one object behind every shard)
        need nothing; the copy preserves each entry's fingerprint, so the
        seeded cache still flushes coherently on the next PRP publish.
        """
        cache = getattr(service, "decision_cache", None)
        if cache is None:
            return 0
        if any(getattr(s, "decision_cache", None) is cache for s in self._services if s is not service):
            return 0  # shared cache: the new shard already reads every entry
        seeded = 0
        for donor in self._services:
            if donor is service:
                continue
            donor_cache = getattr(donor, "decision_cache", None)
            if donor_cache is None or donor_cache is cache:
                continue
            for key, fingerprint, response in donor_cache.export_entries():
                home = self._services[self._shard_index_for_point(self._key_point(key))]
                if home is service:
                    cache.put(key, fingerprint, response)
                    seeded += 1
        return seeded

    def drain_shard(self, address: Optional[str] = None) -> PdpService:
        """Retire one replica gracefully, live.

        The shard leaves the hash ring at once — new requests re-home to
        its ring successors, and a partitioned cache's entries migrate
        with them — but keeps its network face until it is *quiescent*:
        zero pending evaluations and at least ``drain_grace`` simulated
        seconds elapsed (covering requests already on the wire).  Only
        then does it detach from the network and fire the ``"removed"``
        membership event that lets monitoring probes let go.

        ``address`` picks the replica (default: the last in deployment
        order).  The last routable shard cannot be drained.
        """
        if len(self._services) <= 1:
            raise ValidationError("cannot drain the last routable shard")
        if address is None:
            # Never auto-pick a crashed shard: draining needs a live
            # process to quiesce (and an autoscale controller scaling in
            # during an outage should retire a healthy replica).
            service = next(
                (s for s in reversed(self._services) if s.address not in self._crashed),
                None,
            )
            if service is None:
                raise ValidationError("no live shard to drain")
        else:
            service = next((s for s in self._services if s.address == address), None)
            if service is None:
                raise ValidationError(f"no routable shard at {address!r}")
            if service.address in self._crashed:
                raise ValidationError(
                    f"cannot drain crashed shard {address!r}; restart it first")
        sim = getattr(service, "sim", None)
        if sim is None:
            raise ValidationError(f"shard {service.address!r} has no simulator binding to drain on")
        self._services.remove(service)
        self._draining[service.address] = service
        self._rebuild_ring()
        self.rebalances += 1
        self._rehome_cache_entries(service)
        self._notify_membership("draining", service)
        started = sim.now

        def check_quiescent() -> None:
            if (
                getattr(service, "pending_evaluations", 0) == 0
                and sim.now >= started + self.drain_grace
            ):
                self._draining.pop(service.address, None)
                # Off the network: a pathological straggler request is
                # dropped at the fabric and the PEP re-plans onto a live
                # shard — never served unobserved after the probe detaches.
                service.network.detach(service.address)
                self._notify_membership("removed", service)
                return
            sim.schedule(
                self.drain_poll_interval,
                check_quiescent,
                label=f"plane-drain:{service.address}",
            )

        sim.schedule(
            self.drain_poll_interval,
            check_quiescent,
            label=f"plane-drain:{service.address}",
        )
        return service

    def draining(self) -> list[PdpService]:
        """Shards that left the ring but are still finishing work."""
        return list(self._draining.values())

    # -- crash / restart (fault plane) -------------------------------------------

    def crash_shard(self, address: Optional[str] = None) -> PdpService:
        """Abruptly kill one replica (fault injection), live.

        Unlike :meth:`drain_shard` this is *not* a membership operation:
        the shard stays in the ring, because a real crash is never
        announced to the router — failure detection lives at the PEP,
        whose per-attempt timer expires against the silent shard and
        fails the request over (counted as ``failovers``, a fault, not
        ``churn_reroutes``).  The process loses its in-flight
        evaluations, its busy cursor, and — when the cache topology is
        partitioned — its decision cache; a shared cache lives outside
        the process and survives.  Fires the ``"crashed"`` membership
        event so monitoring probes detach (the probe dies with the
        component it runs in).
        """
        if address is None:
            service = self._services[-1]
        else:
            service = next((s for s in self._services if s.address == address), None)
            if service is None:
                raise ValidationError(f"no routable shard at {address!r}")
        if service.address in self._crashed:
            return service
        cache = getattr(service, "decision_cache", None)
        if cache is not None and not any(
            getattr(s, "decision_cache", None) is cache
            for s in self._services
            if s is not service
        ):
            # Partitioned topology: the cache was process memory.
            cache.invalidate()
        service.crash()
        self._crashed[service.address] = service
        self._notify_membership("crashed", service)
        return service

    def restart_shard(self, address: str) -> PdpService:
        """Bring a crashed replica back, live.

        The shard re-attaches under a fresh network incarnation (messages
        sent to the dead one never arrive), and — in a partitioned cache
        topology — re-warms its cache through the same donor path a shard
        added at runtime uses: survivors served the crashed shard's key
        range during the outage, so their caches hold exactly the entries
        that re-home here.  Fires ``"restarted"`` before returning, so a
        monitoring probe is attached before the first post-restart
        request can be served.
        """
        service = self._crashed.pop(address, None)
        if service is None:
            raise ValidationError(f"no crashed shard at {address!r}")
        service.restart()
        if self.warm_caches:
            self.warmed_entries += self._warm_new_shard(service)
        self._notify_membership("restarted", service)
        return service

    def crashed(self) -> list[PdpService]:
        """Shards currently crashed (still on the ring, off the network)."""
        return list(self._crashed.values())

    def _rehome_cache_entries(self, drained: PdpService) -> None:
        """Migrate a partitioned cache's entries to their new ring homes.

        Shared caches need nothing (every survivor already reads the same
        object); entries whose new home aliases the drained cache are
        skipped for the same reason.
        """
        cache = getattr(drained, "decision_cache", None)
        if cache is None:
            return
        if all(getattr(s, "decision_cache", None) is cache for s in self._services):
            return  # shared cache: every survivor already reads these entries
        for key, fingerprint, response in cache.export_entries():
            target = self._services[self._shard_index_for_point(self._key_point(key))]
            target_cache = getattr(target, "decision_cache", None)
            if target_cache is None or target_cache is cache:
                continue
            target_cache.put(key, fingerprint, response)

    @staticmethod
    def _key_point(key: str) -> int:
        return int(short_hash(key, 16), 16)

    def _shard_index_for_point(self, point: int) -> int:
        start = bisect_right(self._ring_points, point)
        return self._ring[start % len(self._ring)][1]

    # -- routing -----------------------------------------------------------------

    def route_key(self, request: AccessRequest) -> str:
        """The decision-cache key for ``request`` under the active policy.

        Routing on exactly the cache key means requests that could share a
        cached decision always land on the same shard.  Before any policy
        is published the raw request attributes key the ring instead.
        """
        if self._prp is not None and self._prp.version_count() > 0:
            version = self._prp.current()
            footprint = self._footprint_for(version)
            return DecisionCache.request_key(version.fingerprint, request.content, footprint)
        return DecisionCache.request_key("unversioned", request.content, None)

    def _footprint_for(self, version: PolicyVersion) -> frozenset:
        footprint = self._footprints.get(version.fingerprint)
        if footprint is not None:
            self._footprints.move_to_end(version.fingerprint)
            return footprint
        # Prefer the primary shard's compiled footprint: it is the very
        # projection the shards key their caches with, and reusing it
        # avoids compiling each policy version a second time on the
        # routing path.  Falls back to a local compile for route-only
        # planes over stub services (tests) or a PRP the services do not
        # share.
        primary = self._services[0] if self._services else None
        if isinstance(primary, PdpService) and primary.prp.version_count() > 0:
            compiled_version, compiled_footprint = primary.current_footprint()
            if compiled_version.fingerprint == version.fingerprint:
                footprint = compiled_footprint
        if footprint is None:
            footprint = attribute_footprint(policy_from_dict(version.document))
        self._footprints[version.fingerprint] = footprint
        while len(self._footprints) > self.FOOTPRINT_MEMO_SIZE:
            self._footprints.popitem(last=False)
        return footprint

    def endpoints(self, request: AccessRequest) -> tuple[str, ...]:
        """Failover order for ``request``: ring → locality → queue.

        Ring order gives cache affinity; a locality-aware plane then
        stably prefers shards co-located with the requesting PEP's cloud;
        a queue-aware plane finally re-sorts by busy cursor when the
        preferred shard's backlog exceeds the best alternative by more
        than ``queue_threshold``.  Every transform is a stable reorder of
        the same address set, so failover still eventually tries every
        routable shard.
        """
        if not self._services:
            raise ValidationError("decision plane is not deployed")
        if len(self._services) == 1:
            return (self._services[0].address,)
        point = self._key_point(self.route_key(request))
        start = bisect_right(self._ring_points, point)
        order: list[str] = []
        seen: set[int] = set()
        total = len(self._ring)
        for offset in range(total):
            _, shard = self._ring[(start + offset) % total]
            if shard in seen:
                continue
            seen.add(shard)
            order.append(self._services[shard].address)
            if len(order) == len(self._services):
                break
        if self.locality_aware and self._shard_cloud:
            cloud = self._tenant_cloud.get(request.origin_tenant)
            if cloud is not None:
                local = [a for a in order if self._shard_cloud.get(a) == cloud]
                if local:
                    order = local + [a for a in order if self._shard_cloud.get(a) != cloud]
        if self.queue_aware and len(order) > 1:
            backlogs = self.projected_backlogs(origin=request.origin_tenant)
            if backlogs[order[0]] - min(backlogs[a] for a in order) > self.queue_threshold:
                # Stable sort: equal backlogs keep ring/locality order, so
                # an idle plane routes exactly like a queue-blind one.
                order.sort(key=backlogs.__getitem__)
        return tuple(order)

    def note_dispatch(self, address: str, source: Optional[str] = None) -> None:
        """Project a real dispatch onto ``address`` (see base docstring).

        Recording here — not in :meth:`endpoints` — keeps the in-flight
        projection honest: a failover retry charges the shard actually
        retried (the PEP skips already-tried entries, so that is not
        necessarily ``endpoints()[0]``), and inspection-only queries
        charge nobody.  With a gossiped load view the dispatch is charged
        to the ``source`` tenant's node (each PEP records only its own
        sends and learns the others' through gossip); a dispatch without
        a known source is invisible to the distributed view, exactly as
        it would be to real per-process PEPs.
        """
        # A single-shard pool has nothing to balance, and its endpoints()
        # short-circuits past the projection's pruning — skip recording
        # so the deque cannot grow while a drained-down plane runs.
        if not (self.queue_aware and len(self._services) > 1):
            return
        if self.load_view is not None and self.load_view.deployed:
            service = next((s for s in self._services if s.address == address), None)
            cost = getattr(service, "base_processing_delay", 0.0) if service is not None else 0.0
            self.load_view.record(source, address, cost)
            return
        self._record_route(address)

    def projected_backlogs(self, origin: Optional[str] = None) -> dict[str, float]:
        """Busy cursor per routable shard, plus dispatches still on the wire.

        A cursor only advances when a routed request *arrives* at its
        shard, so during a burst every caller would see the same stale
        cursors and herd onto whichever shard currently looks idle.
        Routings younger than ``routing_horizon`` (sized to the dispatch
        latency) are therefore projected onto their target at the shard's
        advertised per-request cost before the cursors are compared.

        ``origin`` selects whose in-flight picture is merged in when a
        gossiped load view is deployed: a tenant name yields that PEP's
        view (own fresh dispatches plus the peers' last gossiped
        snapshots — boundedly stale, as a distributed view must be);
        ``None`` yields the exact global projection (every node's own
        fresh charges), which is what the in-process autoscale controller
        reads.  Without a load view the shared in-process deque is used
        and ``origin`` is irrelevant.  This is also the autoscaler's
        utilisation signal — see :mod:`repro.accesscontrol.autoscale`.
        """
        backlogs = {service.address: self._busy_seconds(service) for service in self._services}
        now = self._sim_now()
        if now is None:
            return backlogs
        if self.load_view is not None and self.load_view.deployed:
            for address, charge in self.load_view.projection_for(origin).items():
                if address in backlogs:
                    backlogs[address] += charge
            return backlogs
        # Inclusive expiry so ``routing_horizon=0`` disables the
        # projection outright (same-instant routes would otherwise
        # survive a strict comparison forever at age 0).
        while self._recent_routes and now - self._recent_routes[0][0] >= self.routing_horizon:
            self._recent_routes.popleft()
        by_address = {service.address: service for service in self._services}
        for _, address in self._recent_routes:
            service = by_address.get(address)
            if service is not None:
                backlogs[address] += getattr(service, "base_processing_delay", 0.0)
        return backlogs

    def _record_route(self, address: str) -> None:
        now = self._sim_now()
        if now is None:
            return
        # Prune on write as well as on read, so the deque stays bounded
        # by rate × horizon even when nothing queries the projection.
        while self._recent_routes and now - self._recent_routes[0][0] >= self.routing_horizon:
            self._recent_routes.popleft()
        self._recent_routes.append((now, address))

    def _sim_now(self) -> Optional[float]:
        for service in self._services:
            sim = getattr(service, "sim", None)
            if sim is not None:
                return sim.now
        return None

    @staticmethod
    def _busy_seconds(service) -> float:
        """A shard's busy cursor; externally adopted stubs report idle."""
        probe = getattr(service, "busy_seconds", None)
        return probe() if callable(probe) else 0.0

    def describe(self) -> dict:
        summary = super().describe()
        summary["cache_policy"] = self.cache_policy
        summary["virtual_nodes"] = self.virtual_nodes
        summary["queue_aware"] = self.queue_aware
        summary["locality_aware"] = self.locality_aware
        summary["draining"] = sorted(self._draining)
        summary["rebalances"] = self.rebalances
        summary["gossip_load_view"] = self.load_view is not None
        if self._shard_weights:
            summary["shard_weights"] = dict(sorted(self._shard_weights.items()))
        if self._shard_cloud:
            summary["shard_clouds"] = dict(sorted(self._shard_cloud.items()))
        return summary

    def stats(self) -> dict:
        stats = super().stats()
        stats["draining"] = {
            address: service.requests_served
            for address, service in sorted(self._draining.items())
        }
        stats["rebalances"] = self.rebalances
        stats["warmed_entries"] = self.warmed_entries
        return stats


def as_plane(plane_or_service) -> DecisionPlane:
    """Normalise a plane handle.

    Monitoring orchestrators accept either a :class:`DecisionPlane` or a
    bare :class:`PdpService` (the pre-plane calling convention); a bare
    service is adopted into a :class:`SinglePdpPlane`.
    """
    if isinstance(plane_or_service, DecisionPlane):
        return plane_or_service
    if isinstance(plane_or_service, PdpService):
        return SinglePdpPlane.wrap(plane_or_service)
    raise ValidationError(
        f"expected a DecisionPlane or PdpService, got {type(plane_or_service).__name__}"
    )
