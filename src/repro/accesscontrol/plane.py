"""The decision plane: how PEPs reach the federation's policy evaluators.

The paper deploys the PDP as a single logical evaluator in the
infrastructure tenant.  That is an architectural choice, not a law of the
system — and after the PDP and monitoring fast paths, it is the remaining
throughput ceiling.  This module turns the choice into an explicit API:
PEPs are constructed with a :class:`DecisionPlane` handle instead of a raw
PDP address, and the plane decides how many :class:`PdpService` replicas
exist, where each request is routed, and in what order the PEP fails over
when a shard does not answer.

Two backends ship:

- :class:`SinglePdpPlane` — one replica at the conventional
  ``pdp@infrastructure`` address.  Deploying the default stack through it
  is bit-identical to the previous hard-wired topology (same addresses,
  same construction order, same event sequence).
- :class:`ShardedPdpPlane` — N replicas in the infrastructure tenant
  behind consistent hashing on the *decision-cache key* (policy
  fingerprint + footprint-projected request attributes, see
  :mod:`repro.accesscontrol.decision_cache`).  Keying the ring on the
  cache key gives cache affinity for free: every request that could share
  a cached decision lands on the same shard, so a ``partitioned`` cache
  policy loses no hits to routing.  A ``shared`` policy hands one
  :class:`DecisionCache` to every replica instead.  Either way the caches
  flush coherently on every PRP publish (``DecisionCache.bind`` is
  idempotent per PRP).

Monitoring coverage follows the plane: DRAMS and the centralized baseline
attach probes to *every* replica (:func:`repro.drams.probe.attach_plane_probes`),
so sharding never opens an unobserved decision path.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Sequence

from repro.accesscontrol.decision_cache import DecisionCache
from repro.accesscontrol.messages import AccessRequest
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion
from repro.common.errors import ValidationError
from repro.common.ids import short_hash
from repro.xacml.index import attribute_footprint
from repro.xacml.parser import policy_from_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.federation.federation import Federation


class DecisionPlane:
    """Abstract handle PEPs use to reach policy evaluators.

    A plane owns its :class:`PdpService` replicas (created by
    :meth:`deploy`) and answers one routing question per request:
    :meth:`endpoints` — which shard addresses to try, in failover order.
    """

    #: Deployed evaluator services, primary first.  Monitoring systems
    #: attach probes to every entry; ``services[0]`` is the conventional
    #: compromise target for the threat experiments.
    _services: list[PdpService]

    def __init__(self) -> None:
        self._services = []

    @property
    def services(self) -> list[PdpService]:
        return list(self._services)

    def deploy(self, federation: "Federation", prp) -> "DecisionPlane":
        """Create the plane's evaluators in the infrastructure tenant.

        ``prp`` is either a bare :class:`PolicyRetrievalPoint` (every
        evaluator shares it, the pre-policydist convention) or a
        :class:`~repro.policydist.plane.PolicyDistributionPlane`, in which
        case each evaluator reads from the replica the policy plane
        assigns it (``pdp``, ``pdp-0``, … as consumer names).
        """
        raise NotImplementedError

    @staticmethod
    def _policy_plane(prp):
        """Normalise ``prp`` into a policy distribution plane.

        Imported lazily: :mod:`repro.policydist` imports this package's
        ``prp`` module, so a module-level import here would deadlock
        whichever package is imported first.
        """
        from repro.policydist.plane import as_policy_plane

        return as_policy_plane(prp)

    def endpoints(self, request: AccessRequest) -> tuple[str, ...]:
        """Shard addresses for ``request``, primary first, failover order."""
        raise NotImplementedError

    def caches(self) -> list[DecisionCache]:
        """The distinct decision caches behind the plane (for inspection)."""
        seen: list[DecisionCache] = []
        for service in self._services:
            cache = service.decision_cache
            if cache is not None and all(cache is not other for other in seen):
                seen.append(cache)
        return seen

    def describe(self) -> dict:
        """Topology summary (benchmarks and the Figure 1 walkthrough)."""
        return {
            "kind": type(self).__name__,
            "shards": len(self._services),
            "addresses": [service.address for service in self._services],
        }

    def stats(self) -> dict:
        """Per-shard service counters plus aggregate cache stats."""
        return {
            "requests_served": {
                service.address: service.requests_served for service in self._services
            },
            "caches": [cache.stats() for cache in self.caches()],
        }

    def _ensure_undeployed(self) -> None:
        if self._services:
            raise ValidationError(f"{type(self).__name__} is already deployed")


class SinglePdpPlane(DecisionPlane):
    """Today's topology: one evaluator at ``pdp@infrastructure``.

    ``service_kwargs`` are forwarded to the :class:`PdpService`
    constructor (cache toggles, processing delays, serialization).
    """

    def __init__(self, service_kwargs: Optional[dict] = None) -> None:
        super().__init__()
        self.service_kwargs = dict(service_kwargs or {})
        self._endpoints: tuple[str, ...] = ()

    @classmethod
    def at(cls, address: str) -> "SinglePdpPlane":
        """Route-only plane for manually wired deployments (tests).

        The evaluator at ``address`` is constructed by the caller; the
        plane merely routes to it.  ``services`` is empty, so monitoring
        orchestrators reject such planes — wrap the service with
        :meth:`wrap` when probes must attach.
        """
        plane = cls()
        plane._endpoints = (address,)
        return plane

    @classmethod
    def wrap(cls, service: PdpService) -> "SinglePdpPlane":
        """Adopt an existing, already-registered evaluator service."""
        plane = cls()
        plane._services = [service]
        plane._endpoints = (service.address,)
        return plane

    def deploy(self, federation: "Federation", prp) -> "SinglePdpPlane":
        self._ensure_undeployed()
        if self._endpoints:
            raise ValidationError("route-only plane (SinglePdpPlane.at) cannot be deployed")
        policy_plane = self._policy_plane(prp).deploy(federation)
        infra = federation.infrastructure_tenant
        service = PdpService(
            federation.network,
            infra.address("pdp"),
            policy_plane.retrieval_point_for("pdp"),
            **self.service_kwargs,
        )
        infra.register_host(service.address)
        self._services = [service]
        self._endpoints = (service.address,)
        return self

    def endpoints(self, request: AccessRequest) -> tuple[str, ...]:
        if not self._endpoints:
            raise ValidationError("decision plane is not deployed")
        return self._endpoints


class ShardedPdpPlane(DecisionPlane):
    """N evaluator replicas behind consistent hashing on the cache key.

    ``cache_policy`` is ``"shared"`` (one :class:`DecisionCache` handed to
    every replica) or ``"partitioned"`` (one per replica; routing affinity
    keeps each shard's cache hot).  ``virtual_nodes`` controls ring
    balance; the default spreads load within a few percent for small
    shard counts.
    """

    CACHE_POLICIES = ("shared", "partitioned")

    #: Footprint memo bound — same flip-flop-churn rationale as
    #: ``PdpService.pdp_cache_size``: policy publications are unbounded
    #: over a federation's lifetime, distinct *concurrent* versions are not.
    FOOTPRINT_MEMO_SIZE = 16

    def __init__(
        self,
        shards: int = 2,
        cache_policy: str = "shared",
        virtual_nodes: int = 32,
        service_kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if cache_policy not in self.CACHE_POLICIES:
            raise ValidationError(
                f"cache_policy must be one of {self.CACHE_POLICIES}, got {cache_policy!r}"
            )
        if virtual_nodes < 1:
            raise ValidationError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.shards = shards
        self.cache_policy = cache_policy
        self.virtual_nodes = virtual_nodes
        self.service_kwargs = dict(service_kwargs or {})
        self._prp: Optional[PolicyRetrievalPoint] = None
        self._footprints: "OrderedDict[str, frozenset]" = OrderedDict()
        self._ring: list[tuple[int, int]] = []
        self._ring_points: list[int] = []

    # -- deployment --------------------------------------------------------------

    def deploy(self, federation: "Federation", prp) -> "ShardedPdpPlane":
        self._ensure_undeployed()
        if self.cache_policy == "partitioned" and "decision_cache" in self.service_kwargs:
            # Forwarding one cache object to every replica would silently
            # deploy a shared topology under a "partitioned" label.
            raise ValidationError(
                "cache_policy='partitioned' builds one cache per shard; "
                "pass cache_policy='shared' to supply a decision_cache"
            )
        policy_plane = self._policy_plane(prp).deploy(federation)
        infra = federation.infrastructure_tenant
        shared_cache = None
        if self.cache_policy == "shared" and self.service_kwargs.get("use_decision_cache", True):
            # "or" would discard an *empty* supplied cache (len() == 0 is falsy).
            supplied = self.service_kwargs.get("decision_cache")
            shared_cache = supplied if supplied is not None else DecisionCache()
        services = []
        for index in range(self.shards):
            kwargs = dict(self.service_kwargs)
            if shared_cache is not None:
                kwargs["decision_cache"] = shared_cache
            # Each shard reads policy from its own assigned replica; under
            # a SingleStorePlane these all alias one store (the pre-plane
            # wiring), under a ReplicatedPrpPlane they skew independently.
            service = PdpService(
                federation.network,
                infra.address(f"pdp-{index}"),
                policy_plane.retrieval_point_for(f"pdp-{index}"),
                **kwargs,
            )
            infra.register_host(service.address)
            services.append(service)
        # Route on the authority store's head: affinity only needs the key
        # to be consistent across requests, and the publisher's view is the
        # one stable head while replicas converge.
        self._adopt(services, policy_plane.authority)
        return self

    @classmethod
    def over(
        cls,
        services: Sequence[PdpService],
        prp: Optional[PolicyRetrievalPoint] = None,
        virtual_nodes: int = 32,
    ) -> "ShardedPdpPlane":
        """Wrap already-deployed evaluators (manual wiring and tests).

        Deploy-only knobs (``cache_policy``, ``service_kwargs``) are
        deliberately not accepted — the adopted services were built by
        the caller, so the plane cannot change their caches or delays and
        reports ``cache_policy="external"``.  Pass ``prp`` whenever
        routing affinity matters: without it the ring keys on the *raw*
        request content, and per-request attributes (``time-of-day`` in
        particular) fragment the key space, so partitioned caches see few
        repeat hits.
        """
        if not services:
            raise ValidationError("a sharded plane needs at least one service")
        plane = cls(shards=len(services), virtual_nodes=virtual_nodes)
        plane.cache_policy = "external"  # whatever the adopted services carry
        plane._adopt(list(services), prp)
        return plane

    def _adopt(self, services: list[PdpService], prp: Optional[PolicyRetrievalPoint]) -> None:
        self._services = services
        self._prp = prp
        ring = []
        for index, service in enumerate(services):
            for vnode in range(self.virtual_nodes):
                point = int(short_hash(f"{service.address}#vnode-{vnode}", 16), 16)
                ring.append((point, index))
        ring.sort()
        self._ring = ring
        self._ring_points = [point for point, _ in ring]

    # -- routing -----------------------------------------------------------------

    def route_key(self, request: AccessRequest) -> str:
        """The decision-cache key for ``request`` under the active policy.

        Routing on exactly the cache key means requests that could share a
        cached decision always land on the same shard.  Before any policy
        is published the raw request attributes key the ring instead.
        """
        if self._prp is not None and self._prp.version_count() > 0:
            version = self._prp.current()
            footprint = self._footprint_for(version)
            return DecisionCache.request_key(version.fingerprint, request.content, footprint)
        return DecisionCache.request_key("unversioned", request.content, None)

    def _footprint_for(self, version: PolicyVersion) -> frozenset:
        footprint = self._footprints.get(version.fingerprint)
        if footprint is not None:
            self._footprints.move_to_end(version.fingerprint)
            return footprint
        # Prefer the primary shard's compiled footprint: it is the very
        # projection the shards key their caches with, and reusing it
        # avoids compiling each policy version a second time on the
        # routing path.  Falls back to a local compile for route-only
        # planes over stub services (tests) or a PRP the services do not
        # share.
        primary = self._services[0] if self._services else None
        if isinstance(primary, PdpService) and primary.prp.version_count() > 0:
            compiled_version, compiled_footprint = primary.current_footprint()
            if compiled_version.fingerprint == version.fingerprint:
                footprint = compiled_footprint
        if footprint is None:
            footprint = attribute_footprint(policy_from_dict(version.document))
        self._footprints[version.fingerprint] = footprint
        while len(self._footprints) > self.FOOTPRINT_MEMO_SIZE:
            self._footprints.popitem(last=False)
        return footprint

    def endpoints(self, request: AccessRequest) -> tuple[str, ...]:
        if not self._services:
            raise ValidationError("decision plane is not deployed")
        if len(self._services) == 1:
            return (self._services[0].address,)
        point = int(short_hash(self.route_key(request), 16), 16)
        start = bisect_right(self._ring_points, point)
        order: list[str] = []
        seen: set[int] = set()
        total = len(self._ring)
        for offset in range(total):
            _, shard = self._ring[(start + offset) % total]
            if shard in seen:
                continue
            seen.add(shard)
            order.append(self._services[shard].address)
            if len(order) == len(self._services):
                break
        return tuple(order)

    def describe(self) -> dict:
        summary = super().describe()
        summary["cache_policy"] = self.cache_policy
        summary["virtual_nodes"] = self.virtual_nodes
        return summary


def as_plane(plane_or_service) -> DecisionPlane:
    """Normalise a plane handle.

    Monitoring orchestrators accept either a :class:`DecisionPlane` or a
    bare :class:`PdpService` (the pre-plane calling convention); a bare
    service is adopted into a :class:`SinglePdpPlane`.
    """
    if isinstance(plane_or_service, DecisionPlane):
        return plane_or_service
    if isinstance(plane_or_service, PdpService):
        return SinglePdpPlane.wrap(plane_or_service)
    raise ValidationError(
        f"expected a DecisionPlane or PdpService, got {type(plane_or_service).__name__}"
    )
