"""The Policy Enforcement Point at a tenant's edge.

Receives access attempts from subjects in its tenant, forwards them to the
PDP and enforces the decision that comes back.  Deny-biased: anything other
than an explicit Permit is enforced as a denial (the safe default for
federated data sharing).

Probe hooks (DRAMS attaches here):

- ``on_request_intercepted(request)`` — the access attempt as the subject
  made it (PEP-in),
- ``on_enforce(request, decision)`` — the decision as actually enforced
  (PEP-out), after any compromise interceptor.

Attack injection points used by :mod:`repro.threats`:

- ``forward_interceptor`` rewrites the request between interception and
  forwarding (request-tampering attack),
- ``enforcement_interceptor`` rewrites the decision between receipt and
  enforcement (decision-tampering attack),
- ``bypass`` fabricates a local decision without consulting the PDP
  (circumvention attack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.simnet.network import Host, Message, Network
from repro.accesscontrol.context_handler import ContextHandler
from repro.accesscontrol.messages import AccessDecision, AccessRequest

RequestHook = Callable[[AccessRequest], None]
EnforceHook = Callable[[AccessRequest, AccessDecision], None]
ForwardInterceptor = Callable[[AccessRequest], AccessRequest]
EnforcementInterceptor = Callable[[AccessRequest, AccessDecision], AccessDecision]
CompletionCallback = Callable[["EnforcedAccess"], None]


@dataclass
class EnforcedAccess:
    """Outcome of one access attempt, as seen at the PEP."""

    request: AccessRequest
    decision: AccessDecision
    granted: bool
    requested_at: float
    enforced_at: float

    @property
    def latency(self) -> float:
        return self.enforced_at - self.requested_at


class PolicyEnforcementPoint(Host):
    """Edge enforcement for one tenant."""

    def __init__(self, network: Network, address: str, tenant_name: str,
                 pdp_address: str, request_timeout: float = 30.0) -> None:
        super().__init__(network, address)
        self.tenant_name = tenant_name
        self.pdp_address = pdp_address
        self.request_timeout = request_timeout
        self.context_handler = ContextHandler(tenant_name)
        self.enforced: list[EnforcedAccess] = []
        self.timeouts = 0
        self.on_request_intercepted: list[RequestHook] = []
        self.on_enforce: list[EnforceHook] = []
        self.forward_interceptor: Optional[ForwardInterceptor] = None
        self.enforcement_interceptor: Optional[EnforcementInterceptor] = None
        self.bypass: Optional[Callable[[AccessRequest], AccessDecision]] = None
        self._pending: dict[str, tuple[AccessRequest, Optional[CompletionCallback], float, Any]] = {}

    # -- client API -----------------------------------------------------------

    def request_access(self, subject: dict, resource: dict, action: dict,
                       callback: Optional[CompletionCallback] = None,
                       environment: dict | None = None) -> AccessRequest:
        """Entry point for subjects in this tenant."""
        content = self.context_handler.build(
            subject=subject, resource=resource, action=action,
            now=self.sim.now, environment=environment)
        request = AccessRequest(content=content, origin_tenant=self.tenant_name,
                                issued_at=self.sim.now)
        return self.submit(request, callback)

    def submit(self, request: AccessRequest,
               callback: Optional[CompletionCallback] = None) -> AccessRequest:
        """Process an already-built access request."""
        for hook in self.on_request_intercepted:
            hook(request)
        if self.bypass is not None:
            # Circumvention: fabricate a decision locally, never call the PDP.
            decision = self.bypass(request)
            self._enforce(request, decision, callback, request.issued_at)
            return request
        forwarded = request
        if self.forward_interceptor is not None:
            forwarded = self.forward_interceptor(request)
        timeout_event = self.sim.schedule(
            self.request_timeout, lambda: self._timeout(request.request_id),
            label=f"pep-timeout:{request.request_id}")
        self._pending[request.request_id] = (request, callback, self.sim.now, timeout_event)
        self.send(self.pdp_address, "ac_request", forwarded.to_dict())
        return request

    # -- message handling ----------------------------------------------------------

    def receive(self, message: Message) -> None:
        if message.kind != "ac_response":
            return
        decision = AccessDecision.from_dict(message.payload)
        pending = self._pending.pop(decision.request_id, None)
        if pending is None:
            return  # duplicate or timed-out response
        request, callback, requested_at, timeout_event = pending
        timeout_event.cancel()
        if self.enforcement_interceptor is not None:
            decision = self.enforcement_interceptor(request, decision)
        self._enforce(request, decision, callback, requested_at)

    def _enforce(self, request: AccessRequest, decision: AccessDecision,
                 callback: Optional[CompletionCallback], requested_at: float) -> None:
        for hook in self.on_enforce:
            hook(request, decision)
        outcome = EnforcedAccess(
            request=request,
            decision=decision,
            granted=decision.decision == "Permit",
            requested_at=requested_at,
            enforced_at=self.sim.now,
        )
        self.enforced.append(outcome)
        if callback is not None:
            callback(outcome)

    def _timeout(self, request_id: str) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        request, callback, requested_at, _ = pending
        self.timeouts += 1
        decision = AccessDecision(request_id=request_id, decision="Deny",
                                  status_code="timeout", decided_at=self.sim.now)
        self._enforce(request, decision, callback, requested_at)
