"""The Policy Enforcement Point at a tenant's edge.

Receives access attempts from subjects in its tenant, routes them through
the federation's :class:`~repro.accesscontrol.plane.DecisionPlane` and
enforces the decision that comes back.  Deny-biased: anything other than
an explicit Permit is enforced as a denial (the safe default for federated
data sharing).

Routing and failover: the plane answers ``endpoints(request)`` — shard
addresses in failover order.  The PEP sends to the first endpoint and arms
a per-attempt timer.  By default the timer window is ``request_timeout``
split evenly across the endpoints answered at submit time, so a
single-evaluator plane keeps the classic whole-request timeout.  With a
:class:`RetryBackoff` installed (``backoff=``), attempt windows instead
grow exponentially with decorrelated jitter — short first probes, longer
later ones — while every window is clamped to the remaining budget so
``request_timeout`` still bounds the whole request.  On a timer expiry
with attempts left the PEP
*re-queries the plane* and retries the same request envelope against the
first not-yet-tried endpoint — re-planning rather than replaying the
submit-time order, so a shard drained from an elastic plane mid-flight is
skipped instead of timed out against, and a queue-aware plane can steer
the retry around a backlog that built up since submit.  ``failovers``
counts retries around a shard that is still listed but did not answer (a
fault); ``churn_reroutes`` counts retries whose timed-out shard has left
the re-queried membership (the autoscale controller drained it
mid-attempt — topology churn, not a fault).  When no untried endpoint
remains (or the attempt budget is spent) the request is enforced as a
timeout denial, even with budget left — an elastic pool can shrink
mid-flight.  ``request_id``
is the idempotency key: a late or duplicate ``ac_response`` for a
request that has already been enforced (or already failed over and
completed) finds no pending entry and is dropped, so a slow shard can
never double-enforce.

Probe hooks (DRAMS attaches here):

- ``on_request_intercepted(request)`` — the access attempt as the subject
  made it (PEP-in),
- ``on_enforce(request, decision)`` — the decision as actually enforced
  (PEP-out), after any compromise interceptor.

Attack injection points used by :mod:`repro.threats`:

- ``forward_interceptor`` rewrites the request between interception and
  forwarding (request-tampering attack),
- ``enforcement_interceptor`` rewrites the decision between receipt and
  enforcement (decision-tampering attack),
- ``bypass`` fabricates a local decision without consulting the plane
  (circumvention attack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.common.errors import ValidationError
from repro.simnet.network import Host, Message, Network
from repro.simnet.simulator import Event
from repro.accesscontrol.context_handler import ContextHandler
from repro.accesscontrol.messages import AccessDecision, AccessRequest
from repro.accesscontrol.plane import as_plane

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.accesscontrol.plane import DecisionPlane

RequestHook = Callable[[AccessRequest], None]
EnforceHook = Callable[[AccessRequest, AccessDecision], None]
ForwardInterceptor = Callable[[AccessRequest], AccessRequest]
EnforcementInterceptor = Callable[[AccessRequest, AccessDecision], AccessDecision]
CompletionCallback = Callable[["EnforcedAccess"], None]


@dataclass(frozen=True)
class RetryBackoff:
    """Exponential backoff with decorrelated jitter for failover windows.

    The first attempt waits ``base`` seconds before failing over; each
    subsequent window is drawn uniformly from
    ``[base, previous * multiplier]`` (decorrelated jitter, after
    Brooker) and capped at ``cap``.  Windows are additionally clamped to
    the remaining ``request_timeout`` budget, so enabling backoff never
    loosens the whole-request bound — it only re-shapes how the budget is
    spent: cheap early probes against a dead link, patient later ones.

    ``None`` (the default on the PEP) keeps the PR 6 even-split window
    and draws no randomness, so existing runs stay bit-identical.
    """

    base: float
    cap: float
    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValidationError(f"backoff base must be > 0, got {self.base}")
        if self.cap < self.base:
            raise ValidationError(
                f"backoff cap must be >= base, got cap={self.cap} base={self.base}")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"backoff multiplier must be >= 1, got {self.multiplier}")

    def first_window(self, budget: float) -> float:
        return min(self.base, self.cap, budget)

    def next_window(self, previous: float, remaining: float, rng) -> float:
        upper = max(self.base, previous * self.multiplier)
        window = min(self.cap, rng.uniform(self.base, upper))
        return min(window, remaining)


@dataclass
class EnforcedAccess:
    """Outcome of one access attempt, as seen at the PEP."""

    request: AccessRequest
    decision: AccessDecision
    granted: bool
    requested_at: float
    enforced_at: float

    @property
    def latency(self) -> float:
        return self.enforced_at - self.requested_at


@dataclass
class _PendingAttempt:
    """One in-flight request: which shard attempt is live and how to finish."""

    request: AccessRequest
    forwarded: AccessRequest
    #: Shards already attempted (failover never re-tries one of these).
    tried: tuple[str, ...]
    #: Failover attempts remaining after the live one.
    attempts_left: int
    #: The live attempt's timer window.  Without backoff this is the
    #: even split fixed at submit time; with backoff it is the window
    #: the live attempt was armed with (the jitter recurrence's input).
    per_attempt: float
    #: Absolute time the whole request must resolve by (submit time plus
    #: ``request_timeout``); backoff windows clamp to it.
    deadline: float
    callback: Optional[CompletionCallback]
    requested_at: float
    timeout_event: Event
    #: Keyed tracer span for the live attempt (None when untraced).
    trace_key: Optional[tuple] = None


class PolicyEnforcementPoint(Host):
    """Edge enforcement for one tenant."""

    def __init__(
        self,
        network: Network,
        address: str,
        tenant_name: str,
        plane: "DecisionPlane",
        request_timeout: float = 30.0,
        backoff: Optional[RetryBackoff] = None,
    ) -> None:
        if isinstance(plane, str):
            # Guard before Host.__init__ attaches us: a half-constructed
            # PEP must not occupy the address in the network registry.
            raise TypeError(
                "PolicyEnforcementPoint now takes a DecisionPlane handle, not a raw "
                "PDP address; wrap the address with SinglePdpPlane.at(address) "
                "(see README: 'Choosing a decision plane')."
            )
        # Same calling convention as DramsSystem / the baselines: a bare
        # PdpService is adopted into a single-evaluator plane, anything
        # else non-plane fails fast here rather than at the first submit.
        plane = as_plane(plane)
        super().__init__(network, address)
        self.tenant_name = tenant_name
        self.plane = plane
        self.request_timeout = request_timeout
        self.backoff = backoff
        # Jitter draws come from a dedicated named fork so enabling
        # backoff on one PEP never perturbs any other consumer's stream
        # (and the default no-backoff path draws nothing at all).
        self._backoff_rng = (
            network.rng.fork(f"pep-backoff/{address}") if backoff is not None else None
        )
        self.context_handler = ContextHandler(tenant_name)
        self.enforced: list[EnforcedAccess] = []
        self.timeouts = 0
        self.failovers = 0
        #: Re-routes whose timed-out shard had already left the plane's
        #: membership when the timer fired (an elastic controller drained
        #: it mid-attempt).  Kept apart from ``failovers`` so autoscale
        #: churn is never misread as shard faults.
        self.churn_reroutes = 0
        self.on_request_intercepted: list[RequestHook] = []
        self.on_enforce: list[EnforceHook] = []
        self.forward_interceptor: Optional[ForwardInterceptor] = None
        self.enforcement_interceptor: Optional[EnforcementInterceptor] = None
        self.bypass: Optional[Callable[[AccessRequest], AccessDecision]] = None
        self._pending: dict[str, _PendingAttempt] = {}
        #: Root trace spans by request id (live until enforcement).
        self._trace_roots: dict = {}

    # -- client API -----------------------------------------------------------

    def request_access(
        self,
        subject: dict,
        resource: dict,
        action: dict,
        callback: Optional[CompletionCallback] = None,
        environment: dict | None = None,
    ) -> AccessRequest:
        """Entry point for subjects in this tenant."""
        content = self.context_handler.build(
            subject=subject,
            resource=resource,
            action=action,
            now=self.sim.now,
            environment=environment,
        )
        request = AccessRequest(
            content=content, origin_tenant=self.tenant_name, issued_at=self.sim.now
        )
        return self.submit(request, callback)

    def submit(
        self, request: AccessRequest, callback: Optional[CompletionCallback] = None
    ) -> AccessRequest:
        """Process an already-built access request."""
        tracer = self.network.telemetry
        if tracer is None:
            return self._submit(request, callback)
        # Root span of the decision trace.  The trace id is the request's
        # own (pre-existing) id — tracing mints nothing — and the
        # correlation binding is what lets the log pipeline's async legs
        # re-join this trace later.
        root = self._trace_roots.get(request.request_id)
        if root is None:
            root = tracer.begin(
                "pep.request", self.address, parent=None,
                trace_id=request.request_id,
                attrs={"tenant": self.tenant_name})
            self._trace_roots[request.request_id] = root
            tracer.bind_correlation(request.correlation(), root.context)
        with tracer.activate(root.context):
            return self._submit(request, callback)

    def _submit(
        self, request: AccessRequest, callback: Optional[CompletionCallback]
    ) -> AccessRequest:
        for hook in self.on_request_intercepted:
            hook(request)
        if self.bypass is not None:
            # Circumvention: fabricate a decision locally, never call the plane.
            decision = self.bypass(request)
            self._enforce(request, decision, callback, request.issued_at)
            return request
        forwarded = request
        if self.forward_interceptor is not None:
            forwarded = self.forward_interceptor(request)
        # Route on the envelope the shard will actually receive (and key
        # its decision cache on) — under a tampering interceptor that is
        # the forged request, not the original.
        endpoints = tuple(self.plane.endpoints(forwarded))
        if not endpoints:
            raise ValidationError("decision plane routed no endpoints")
        # A re-submission under an already-pending id supersedes the
        # earlier attempt: disarm its timer, or it would fire against the
        # new attempt's pending entry and force a premature failover.
        previous = self._pending.pop(request.request_id, None)
        if previous is not None:
            previous.timeout_event.cancel()
            tracer = self.network.telemetry
            if tracer is not None and previous.trace_key is not None:
                tracer.close_span(previous.trace_key, "superseded",
                                  strict=False)
        # The attempt budget and deadline freeze at submit time (so
        # request_timeout still bounds the whole request); the actual
        # shard for each retry is re-planned at failover time.
        now = self.sim.now
        if self.backoff is None:
            first_window = self.request_timeout / len(endpoints)
        else:
            first_window = self.backoff.first_window(self.request_timeout)
        self._dispatch(
            request,
            forwarded,
            endpoints[0],
            tried=(),
            attempts_left=len(endpoints) - 1,
            per_attempt=first_window,
            deadline=now + self.request_timeout,
            callback=callback,
            requested_at=now,
        )
        return request

    def _dispatch(
        self,
        request: AccessRequest,
        forwarded: AccessRequest,
        endpoint: str,
        tried: tuple[str, ...],
        attempts_left: int,
        per_attempt: float,
        deadline: float,
        callback: Optional[CompletionCallback],
        requested_at: float,
    ) -> None:
        """Arm the attempt timer and send one shard attempt."""
        timeout_event = self.sim.schedule(
            per_attempt,
            lambda: self._timeout(request.request_id),
            label=f"pep-timeout:{request.request_id}",
        )
        tracer = self.network.telemetry
        trace_key = None
        attempt_span = None
        if tracer is not None:
            # One keyed span per shard attempt — the response handler or
            # the attempt timer closes it, whichever fires first.
            root = self._trace_roots.get(request.request_id)
            trace_key = ("pep.dispatch", self.address,
                         request.request_id, len(tried))
            attempt_span = tracer.open_span(
                trace_key, "pep.dispatch", self.address,
                parent=root.context if root is not None else None,
                trace_id=root.trace_id if root is not None else None,
                attrs={"endpoint": endpoint, "attempt": len(tried)})
        self._pending[request.request_id] = _PendingAttempt(
            request=request,
            forwarded=forwarded,
            tried=tried + (endpoint,),
            attempts_left=attempts_left,
            per_attempt=per_attempt,
            deadline=deadline,
            callback=callback,
            requested_at=requested_at,
            timeout_event=timeout_event,
            trace_key=trace_key,
        )
        # Load-aware planes project in-flight work from real dispatches
        # (initial sends and failover retries alike), never from routing
        # queries — this is the one place a send actually happens.  The
        # tenant tag lets a gossiped load view charge the dispatch to
        # this PEP's own picture of the shard queues.
        self.plane.note_dispatch(endpoint, source=self.tenant_name)
        if attempt_span is not None:
            with tracer.activate(attempt_span.context):
                self.send(endpoint, "ac_request", forwarded.to_dict())
        else:
            self.send(endpoint, "ac_request", forwarded.to_dict())

    # -- message handling ----------------------------------------------------------

    def receive(self, message: Message) -> None:
        if message.kind != "ac_response":
            return
        decision = AccessDecision.from_dict(message.payload)
        pending = self._pending.pop(decision.request_id, None)
        if pending is None:
            return  # duplicate or timed-out response
        pending.timeout_event.cancel()
        tracer = self.network.telemetry
        if tracer is not None and pending.trace_key is not None:
            tracer.close_span(pending.trace_key, "ok")
        if self.enforcement_interceptor is not None:
            decision = self.enforcement_interceptor(pending.request, decision)
        self._enforce(pending.request, decision, pending.callback, pending.requested_at)

    def _enforce(
        self,
        request: AccessRequest,
        decision: AccessDecision,
        callback: Optional[CompletionCallback],
        requested_at: float,
    ) -> None:
        tracer = self.network.telemetry
        root = (self._trace_roots.pop(request.request_id, None)
                if tracer is not None else None)
        if root is not None:
            # PEP-out hooks run under the root context so the probe's log
            # legs attach to the decision trace, not to whichever shard's
            # response happened to deliver this enforcement.
            with tracer.activate(root.context):
                for hook in self.on_enforce:
                    hook(request, decision)
            tracer.end(root, status=decision.decision,
                       attrs={"status_code": decision.status_code})
        else:
            for hook in self.on_enforce:
                hook(request, decision)
        outcome = EnforcedAccess(
            request=request,
            decision=decision,
            granted=decision.decision == "Permit",
            requested_at=requested_at,
            enforced_at=self.sim.now,
        )
        self.enforced.append(outcome)
        if callback is not None:
            callback(outcome)

    def _timeout(self, request_id: str) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        tracer = self.network.telemetry
        if tracer is not None and pending.trace_key is not None:
            tracer.close_span(pending.trace_key, "timeout")
        if self.backoff is None:
            next_window = pending.per_attempt
            budget_left = pending.attempts_left > 0
        else:
            remaining = pending.deadline - self.sim.now
            budget_left = pending.attempts_left > 0 and remaining > 1e-9
            next_window = (
                self.backoff.next_window(pending.per_attempt, remaining,
                                         self._backoff_rng)
                if budget_left else 0.0
            )
        if budget_left:
            current = tuple(self.plane.endpoints(pending.forwarded))
            next_endpoint = next(
                (endpoint for endpoint in current if endpoint not in pending.tried), None
            )
            if next_endpoint is not None:
                # Fail over: same envelope, next shard in the *current*
                # plane order (membership and backlogs may have changed
                # since submit).  The request id carries over, so
                # whichever shard answers first wins and stragglers are
                # dropped as duplicates.  A shard the controller drained
                # mid-attempt has dropped out of the re-queried order —
                # that re-route is membership churn, not a shard fault,
                # and must not pollute the failover counter.
                if pending.tried and pending.tried[-1] not in current:
                    self.churn_reroutes += 1
                else:
                    self.failovers += 1
                self._dispatch(
                    pending.request,
                    pending.forwarded,
                    next_endpoint,
                    pending.tried,
                    pending.attempts_left - 1,
                    next_window,
                    pending.deadline,
                    pending.callback,
                    pending.requested_at,
                )
                return
        self.timeouts += 1
        decision = AccessDecision(
            request_id=request_id,
            decision="Deny",
            status_code="timeout",
            decided_at=self.sim.now,
        )
        self._enforce(pending.request, decision, pending.callback, pending.requested_at)
