"""Context handler: application attributes → XACML request context.

In the XACML dataflow the context handler sits between the PEP and the
application, normalising native request attributes into the category model.
Ours also enriches requests with environment attributes (simulated time of
day, originating tenant) so policies can express temporal and locality
constraints.
"""

from __future__ import annotations

from typing import Any

from repro.xacml.context import RequestContext


class ContextHandler:
    """Builds serialized request contexts for a given tenant edge."""

    def __init__(self, tenant_name: str) -> None:
        self.tenant_name = tenant_name

    def build(self, subject: dict[str, Any], resource: dict[str, Any],
              action: dict[str, Any], now: float = 0.0,
              environment: dict[str, Any] | None = None) -> dict:
        """Return the canonical request-context dict for this access attempt.

        ``now`` is simulated seconds; the handler derives ``time-of-day``
        (seconds since local midnight) so policies can use
        ``time-in-range`` conditions.
        """
        env: dict[str, Any] = {
            "origin-tenant": self.tenant_name,
            "time-of-day": float(now % 86_400),
        }
        if environment:
            env.update(environment)
        request = RequestContext.of(
            subject=subject,
            resource=resource,
            action=action,
            environment=env,
        )
        return request.to_dict()
