"""Policy Administration Point.

The management front-end through which federation operators author and
publish policies.  Publication validates the document (it must parse into
the object model and evaluate), optionally runs the change-impact analysis
against the outgoing version, and hands the result to the PRP.

Under a replicated policy distribution plane (:mod:`repro.policydist`)
the PAP binds to the plane's *authority* store — the publisher's own
view.  That keeps two invariants: the change-impact analysis always
compares against the publisher's current version (never a stale
replica's), and replicas stay read-only (their ``publish`` raises), so
there is exactly one version-numbering authority to converge on.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common.errors import ValidationError
from repro.xacml.parser import policy_from_dict, policy_to_dict
from repro.xacml.policy import Policy, PolicySet
from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion
from repro.analysis.properties import AttributeDomain, change_impact, PropertyReport


class PolicyAdministrationPoint:
    """Author-side policy management."""

    def __init__(self, prp: PolicyRetrievalPoint, administrator: str) -> None:
        self.prp = prp
        self.administrator = administrator
        self.last_impact_report: Optional[PropertyReport] = None

    def publish(self, policy: Union[Policy, PolicySet, dict], published_at: float = 0.0,
                impact_domain: Optional[AttributeDomain] = None) -> PolicyVersion:
        """Validate and publish a policy (object or document form).

        When ``impact_domain`` is given and a previous version exists, a
        change-impact analysis runs first and is stored on
        ``last_impact_report`` for operator review; publication proceeds
        regardless (the report is advisory).
        """
        if isinstance(policy, dict):
            document = policy
            policy_from_dict(document)  # raises if malformed
        elif isinstance(policy, (Policy, PolicySet)):
            document = policy_to_dict(policy)
        else:
            raise ValidationError(f"cannot publish a {type(policy).__name__}")

        self.last_impact_report = None
        if impact_domain is not None and self.prp.version_count() > 0:
            self.last_impact_report = change_impact(
                self.prp.current().document, document, impact_domain)
        return self.prp.publish(document, publisher=self.administrator,
                                published_at=published_at)
