"""The self-driving half of the elastic decision plane.

PR 5 made PDP shard membership runtime-elastic, but every scaling moment
was still *scripted*: a benchmark (or the harness) decided up front that
shards would be added at t=0.8.  This module closes the loop.  An
:class:`AutoscaleController` watches the signals the plane already
exposes — each shard's busy cursor
(:meth:`~repro.accesscontrol.pdp_service.PdpService.busy_seconds`) plus
the in-flight routing projection, folded together by
:meth:`~repro.accesscontrol.plane.ShardedPdpPlane.projected_backlogs` —
and drives :meth:`~repro.accesscontrol.plane.ShardedPdpPlane.add_shard` /
:meth:`~repro.accesscontrol.plane.ShardedPdpPlane.drain_shard` itself.

The control law is deliberately boring — a target-utilisation band with
hysteresis, the shape every production autoscaler converges on:

- **Signal.**  Mean projected backlog per routable shard, in seconds of
  queued work: how long a request arriving *now* expects to wait before
  its evaluation starts.
- **Band.**  Scale up above ``high_water``; scale down below
  ``low_water``; *hold* anywhere between.  The gap between the two
  thresholds is the hysteresis that keeps a load level sitting near one
  threshold from toggling membership every tick.
- **Asymmetric damping.**  Scaling up is cheap and urgent (capacity
  arrives instantly, and monitoring probes attach before the shard's
  first request), so it only waits out ``up_cooldown``.  Scaling down
  destroys state (a drained partitioned cache migrates, a re-added shard
  starts warm but not hot), so it additionally requires the signal to
  stay below ``low_water`` for ``down_samples`` consecutive ticks, and
  never overlaps an in-progress drain.
- **Bounds.**  ``min_shards`` / ``max_shards`` clamp actuation outright;
  with ``min_shards == max_shards`` the controller observes but never
  acts (the differential arm of E14 pins decisions bit-identical to an
  uncontrolled plane in exactly this configuration).

Two supporting pieces live here too:

- **Weighted shards** (``weight_shards=True``): each tick the controller
  derives every shard's *observed* service rate (``requests_served`` per
  ``busy_accumulated`` second) and, when a shard drifts more than
  ``weight_deadband`` from the pool mean, re-weights the hash ring so
  vnode counts are proportional to measured capacity — heterogeneous
  pools stop queueing on their slowest member.
- **:class:`CrossPepLoadView`**: the in-process route projection assumes
  every PEP shares one deque — fine in one process, wrong as a model of
  PEPs at different tenants.  The view deploys one gossip node per
  member tenant; each PEP's dispatches are charged to its own node, and
  nodes exchange full snapshots over ``load_gossip`` simnet messages
  every ``gossip_interval``.  Routing then sees its *own* dispatches
  fresh and its peers' through the last received snapshot — boundedly
  stale, monotone per peer (sequence numbers), and self-repairing under
  message loss because every round re-sends full state.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.accesscontrol.plane import ShardedPdpPlane
from repro.common.errors import ValidationError
from repro.simnet.network import Host, Message, Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.accesscontrol.pdp_service import PdpService
    from repro.federation.federation import Federation
    from repro.simnet.simulator import Simulator


class _LoadGossipNode(Host):
    """One member tenant's picture of the shard queues.

    Holds the tenant's own recent dispatches (fresh, pruned to the view's
    horizon) and the latest snapshot received from each peer.  Snapshots
    carry monotone sequence numbers, so reordered or duplicated gossip
    never regresses the picture, and a lost round is fully repaired by
    the next one — each broadcast is the node's complete current state.
    """

    def __init__(self, network: Network, address: str, view: "CrossPepLoadView",
                 origin: str) -> None:
        super().__init__(network, address)
        self.view = view
        self.origin = origin
        self.seq = 0
        self._local: "deque[tuple[float, str, float]]" = deque()
        #: Latest accepted snapshot per peer origin: (seq, sent_at, charges).
        self._peer_snapshots: dict[str, tuple[int, float, dict[str, float]]] = {}

    # -- local picture -----------------------------------------------------------

    def note_local(self, shard_address: str, cost: float) -> None:
        self._prune()
        self._local.append((self.sim.now, shard_address, cost))

    def _prune(self) -> None:
        now = self.sim.now
        # Inclusive expiry, mirroring the plane's in-process projection:
        # horizon 0 disables local charges outright.
        while self._local and now - self._local[0][0] >= self.view.horizon:
            self._local.popleft()

    def local_charges(self) -> dict[str, float]:
        """This tenant's own in-flight charges, pruned to the horizon."""
        self._prune()
        charges: dict[str, float] = {}
        for _, address, cost in self._local:
            charges[address] = charges.get(address, 0.0) + cost
        return charges

    def merged_charges(self) -> dict[str, float]:
        """Own fresh charges plus every peer's last non-stale snapshot."""
        charges = self.local_charges()
        now = self.sim.now
        for _, sent_at, snapshot in self._peer_snapshots.values():
            if now - sent_at > self.view.stale_after:
                continue  # old in-flight work is already in the busy cursors
            for address, cost in snapshot.items():
                charges[address] = charges.get(address, 0.0) + cost
        return charges

    def peer_seqs(self) -> dict[str, int]:
        """Last accepted sequence number per peer (convergence checks)."""
        return {origin: seq for origin, (seq, _, _) in self._peer_snapshots.items()}

    # -- gossip ------------------------------------------------------------------

    def gossip_round(self) -> None:
        if not self.network.is_attached(self.address):
            # Fault plane crashed this host; its periodic timer keeps
            # firing but a detached node must not source traffic.  Peers
            # coast on the last accepted snapshot until restart.
            return
        self.seq += 1
        payload = {
            "origin": self.origin,
            "seq": self.seq,
            "at": self.sim.now,
            "charges": self.local_charges(),
        }
        for peer in self.view.peer_addresses(self.origin):
            self.send(peer, "load_gossip", payload)

    def receive(self, message: Message) -> None:
        if message.kind != "load_gossip":
            return
        payload = message.payload
        origin = payload.get("origin")
        if not origin or origin == self.origin:
            return
        seq = int(payload.get("seq", 0))
        current = self._peer_snapshots.get(origin)
        if current is not None and seq <= current[0]:
            return  # late or duplicate round: the newer snapshot stands
        self._peer_snapshots[origin] = (
            seq,
            float(payload.get("at", 0.0)),
            dict(payload.get("charges", {})),
        )


class CrossPepLoadView:
    """Gossiped cross-PEP picture of in-flight work, one node per tenant.

    Pass an instance to ``ShardedPdpPlane(queue_aware=True, load_view=...)``;
    the plane deploys it (one :class:`_LoadGossipNode` per member tenant,
    registered like any simnet host) and consults
    :meth:`projection_for` instead of its in-process route deque.

    ``horizon`` bounds how long a node's *own* dispatch stays charged
    (size it like the plane's ``routing_horizon``: the dispatch latency).
    ``gossip_interval`` paces the snapshot exchange; ``stale_after``
    bounds how long a peer snapshot is trusted once received (default
    ``horizon + 2 × gossip_interval`` — by then the work it described has
    reached the busy cursors, and double-charging it would repel traffic
    from healthy shards).
    """

    def __init__(self, gossip_interval: float = 0.02, horizon: float = 0.05,
                 stale_after: Optional[float] = None) -> None:
        if gossip_interval <= 0:
            raise ValidationError(f"gossip_interval must be positive, got {gossip_interval}")
        if horizon < 0:
            raise ValidationError(f"horizon must be >= 0, got {horizon}")
        if stale_after is not None and stale_after < 0:
            raise ValidationError(f"stale_after must be >= 0, got {stale_after}")
        self.gossip_interval = gossip_interval
        self.horizon = horizon
        self.stale_after = (stale_after if stale_after is not None
                            else horizon + 2 * gossip_interval)
        self.deployed = False
        self.records = 0
        self._nodes: dict[str, _LoadGossipNode] = {}
        self._stops: list[Callable[[], None]] = []

    # -- deployment --------------------------------------------------------------

    def deploy(self, federation: "Federation") -> "CrossPepLoadView":
        """One gossip node per member tenant, each broadcasting every interval."""
        if self.deployed:
            raise ValidationError("load view is already deployed")
        for tenant in federation.member_tenants:
            node = _LoadGossipNode(
                federation.network, tenant.address("loadview"), self, tenant.name
            )
            tenant.register_host(
                node.address, section=tenant.sections[0] if tenant.sections else None
            )
            self._nodes[tenant.name] = node
        for node in self._nodes.values():
            self._stops.append(node.sim.every(
                self.gossip_interval, node.gossip_round,
                label=f"loadview-gossip:{node.origin}",
            ))
        self.deployed = True
        return self

    def stop(self) -> None:
        """Stop the gossip timers (the nodes stay attached, just silent)."""
        for stop in self._stops:
            stop()
        self._stops.clear()

    def peer_addresses(self, origin: str) -> list[str]:
        return [node.address for name, node in sorted(self._nodes.items())
                if name != origin]

    def node_for(self, origin: str) -> Optional[_LoadGossipNode]:
        return self._nodes.get(origin)

    # -- the load picture --------------------------------------------------------

    def record(self, origin: Optional[str], shard_address: str, cost: float) -> None:
        """Charge a real dispatch by tenant ``origin`` to its own node.

        A dispatch without a known origin node is dropped: the
        distributed view only knows what some PEP recorded, exactly as
        real per-process PEPs would.
        """
        node = self._nodes.get(origin) if origin else None
        if node is None:
            return
        node.note_local(shard_address, cost)
        self.records += 1

    def projection_for(self, origin: Optional[str] = None) -> dict[str, float]:
        """In-flight charges per shard, as seen from ``origin``.

        A tenant name yields that PEP's view: its own fresh dispatches
        plus peers' last gossiped snapshots (boundedly stale).  ``None``
        yields the exact union of every node's own fresh charges — the
        omniscient picture an in-process controller is entitled to.
        """
        if origin is not None:
            node = self._nodes.get(origin)
            return node.merged_charges() if node is not None else {}
        merged: dict[str, float] = {}
        for node in self._nodes.values():
            for address, cost in node.local_charges().items():
                merged[address] = merged.get(address, 0.0) + cost
        return merged

    def describe(self) -> dict:
        return {
            "kind": type(self).__name__,
            "gossip_interval": self.gossip_interval,
            "horizon": self.horizon,
            "stale_after": self.stale_after,
            "nodes": sorted(self._nodes),
            "records": self.records,
        }


class AutoscaleController:
    """Drives elastic shard membership from the plane's own load signals.

    Bind to a deployed :class:`~repro.accesscontrol.plane.ShardedPdpPlane`
    and a simulator, then :meth:`start` the decide loop (the harness's
    ``build(autoscaler=...)`` does both).  Thresholds are in *seconds of
    queued work per routable shard* — the same unit
    :meth:`~repro.accesscontrol.plane.ShardedPdpPlane.projected_backlogs`
    reports — so ``high_water=0.05`` reads "scale up once an arriving
    request expects to wait 50 ms".  See ``docs/elasticity.md`` for the
    tuning guide and failure modes.
    """

    def __init__(
        self,
        min_shards: int = 1,
        max_shards: int = 8,
        high_water: float = 0.05,
        low_water: float = 0.005,
        decide_interval: float = 0.05,
        up_cooldown: float = 0.1,
        down_cooldown: float = 1.0,
        down_samples: int = 5,
        weight_shards: bool = False,
        weight_deadband: float = 0.25,
        min_rate_observation: float = 0.05,
    ) -> None:
        if min_shards < 1:
            raise ValidationError(f"min_shards must be >= 1, got {min_shards}")
        if max_shards < min_shards:
            raise ValidationError(
                f"max_shards must be >= min_shards, got {max_shards} < {min_shards}"
            )
        if low_water < 0:
            raise ValidationError(f"low_water must be >= 0, got {low_water}")
        if high_water <= low_water:
            # A band with no width has no hysteresis: one load level
            # could satisfy both thresholds and thrash membership.
            raise ValidationError(
                f"high_water must exceed low_water, got {high_water} <= {low_water}"
            )
        if decide_interval <= 0:
            raise ValidationError(f"decide_interval must be positive, got {decide_interval}")
        if up_cooldown < 0 or down_cooldown < 0:
            raise ValidationError("cooldown windows must be >= 0")
        if down_samples < 1:
            raise ValidationError(f"down_samples must be >= 1, got {down_samples}")
        if weight_deadband <= 0:
            raise ValidationError(f"weight_deadband must be positive, got {weight_deadband}")
        if min_rate_observation <= 0:
            raise ValidationError(
                f"min_rate_observation must be positive, got {min_rate_observation}"
            )
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.high_water = high_water
        self.low_water = low_water
        self.decide_interval = decide_interval
        self.up_cooldown = up_cooldown
        self.down_cooldown = down_cooldown
        self.down_samples = down_samples
        self.weight_shards = weight_shards
        self.weight_deadband = weight_deadband
        self.min_rate_observation = min_rate_observation
        self.plane: Optional[ShardedPdpPlane] = None
        self.sim: Optional["Simulator"] = None
        self.decisions = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.reweights = 0
        #: One entry per actuation: at / action / address / signal / shards.
        self.actions: list[dict] = []
        self.last_signal: Optional[dict] = None
        self._low_streak = 0
        self._last_action: Optional[float] = None
        self._stop: Optional[Callable[[], None]] = None

    # -- lifecycle ---------------------------------------------------------------

    def bind(self, plane, sim: "Simulator") -> "AutoscaleController":
        """Attach to a deployed elastic plane (once)."""
        if self.plane is not None:
            raise ValidationError("controller is already bound to a plane")
        if not isinstance(plane, ShardedPdpPlane):
            raise ValidationError(
                "AutoscaleController needs a ShardedPdpPlane (add_shard/drain_shard); "
                f"got {type(plane).__name__}"
            )
        self.plane = plane
        self.sim = sim
        return self

    def start(self) -> "AutoscaleController":
        """Arm the periodic decide loop on the bound simulator."""
        if self.plane is None or self.sim is None:
            raise ValidationError("bind(plane, sim) before start()")
        if self._stop is not None:
            raise ValidationError("controller is already running")
        self._stop = self.sim.every(
            self.decide_interval, self._tick, label="autoscale-decide"
        )
        return self

    @property
    def running(self) -> bool:
        return self._stop is not None

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    # -- the control law ---------------------------------------------------------

    def signal(self) -> dict:
        """The utilisation signal, side-effect free (tests and benchmarks)."""
        backlogs = self.plane.projected_backlogs()
        routable = max(1, len(backlogs))
        return {
            "backlogs": backlogs,
            "mean_backlog": sum(backlogs.values()) / routable,
            "shards": len(backlogs),
            "draining": len(self.plane.draining()),
        }

    def _tick(self) -> None:
        self.decisions += 1
        sig = self.signal()
        self.last_signal = sig
        if self.weight_shards:
            self._reweight()
        mean = sig["mean_backlog"]
        shards = sig["shards"]
        now = self.sim.now
        if mean > self.high_water:
            self._low_streak = 0
            if shards < self.max_shards and self._cooled(now, self.up_cooldown):
                service = self.plane.add_shard()
                self.scale_ups += 1
                self._record(now, "add", service.address, mean)
        elif mean < self.low_water:
            self._low_streak += 1
            if (
                shards > self.min_shards
                and self._low_streak >= self.down_samples
                and self._cooled(now, self.down_cooldown)
                # One drain at a time: stacking drains under a transient
                # lull would dump several caches' key ranges at once.
                and not self.plane.draining()
            ):
                drained = self.plane.drain_shard()
                self.scale_downs += 1
                self._low_streak = 0
                self._record(now, "drain", drained.address, mean)
        else:
            # Inside the band: hold, and restart the scale-down count —
            # "sustained low" means *consecutively* low.
            self._low_streak = 0

    def _cooled(self, now: float, window: float) -> bool:
        return self._last_action is None or now - self._last_action >= window

    def _record(self, now: float, action: str, address: str, mean: float) -> None:
        self._last_action = now
        self.actions.append({
            "at": now,
            "action": action,
            "address": address,
            "mean_backlog": mean,
            "shards": self.plane.shards,
        })

    def _reweight(self) -> None:
        """Nudge vnode weights toward each shard's observed service rate.

        Rates come from cumulative counters (``requests_served`` per
        ``busy_accumulated`` second), so they converge as evidence
        accumulates; shards without ``min_rate_observation`` busy seconds
        keep their current weight.  The deadband absorbs measurement
        noise — a homogeneous pool never rebalances.
        """
        rates: dict[str, float] = {}
        for service in self.plane.services:
            busy = getattr(service, "busy_accumulated", 0.0)
            served = getattr(service, "requests_served", 0)
            if busy >= self.min_rate_observation and served > 0:
                rates[service.address] = served / busy
        if len(rates) < 2:
            return  # nothing to weight against
        mean_rate = sum(rates.values()) / len(rates)
        current = self.plane.shard_weights
        proposed = {
            address: rate / mean_rate
            for address, rate in rates.items()
            if abs(rate / mean_rate - current.get(address, 1.0)) > self.weight_deadband
        }
        if proposed and self.plane.set_shard_weights(proposed):
            self.reweights += 1

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> dict:
        return {
            "kind": type(self).__name__,
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "high_water": self.high_water,
            "low_water": self.low_water,
            "decide_interval": self.decide_interval,
            "up_cooldown": self.up_cooldown,
            "down_cooldown": self.down_cooldown,
            "down_samples": self.down_samples,
            "weight_shards": self.weight_shards,
            "decisions": self.decisions,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "reweights": self.reweights,
            "actions": list(self.actions),
        }
