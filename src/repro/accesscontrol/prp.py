"""Policy Retrieval Point: versioned store of policy documents.

The PDP fetches the active policy version from here at evaluation time; the
PAP publishes new versions; the DRAMS Analyser reads the same *logical*
store to know the "policies currently in force".  Documents are the
serialized JSON form — hashing a version gives a tamper-evident policy
fingerprint that DRAMS logs alongside decisions.

Whether "the same logical store" is one in-process object or a set of
replicas fed by publish propagation is a deployment choice, made explicit
by :mod:`repro.policydist`: this class is the single-store building block,
:class:`repro.policydist.replica.PrpReplica` subclasses it into a
propagation-fed replica, and a
:class:`~repro.policydist.plane.PolicyDistributionPlane` decides who gets
which.

Reentrancy: ``publish`` notifies listeners synchronously, and a listener
that published *again* from inside its callback used to interleave version
notifications (listener lists are walked in order, so later subscribers
would observe version ``k+1`` before ``k``).  Publishing from a publish
listener is now rejected with a :class:`ValidationError` — queue the
document and publish after the notification completes instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ValidationError
from repro.crypto.hashing import hash_value


@dataclass
class PolicyVersion:
    """One published policy document with provenance."""

    version: int
    document: dict
    published_at: float
    publisher: str
    fingerprint: str = field(init=False)

    def __post_init__(self) -> None:
        self.fingerprint = hash_value(self.document)

    def to_record(self) -> dict:
        """Wire form for publish propagation (see :mod:`repro.policydist`).

        The fingerprint travels alongside the document so a receiving
        replica can prove the document was not altered in flight —
        recomputing the hash over the delivered document must reproduce it.
        """
        return {
            "version": self.version,
            "document": self.document,
            "published_at": self.published_at,
            "publisher": self.publisher,
            "fingerprint": self.fingerprint,
        }


class PolicyRetrievalPoint:
    """Append-only, versioned policy store."""

    def __init__(self) -> None:
        self._versions: list[PolicyVersion] = []
        self._listeners: list[Callable[[PolicyVersion], None]] = []
        self._notifying = False

    def publish(
        self, document: dict, publisher: str, published_at: float = 0.0
    ) -> PolicyVersion:
        """Append a new active version and notify subscribers."""
        if document.get("kind") not in ("policy", "policy_set"):
            raise ValidationError("PRP accepts serialized policy documents only")
        version = PolicyVersion(
            version=len(self._versions) + 1,
            document=document,
            published_at=published_at,
            publisher=publisher,
        )
        self._install(version)
        return version

    def _install(self, version: PolicyVersion) -> None:
        """Append ``version`` and notify listeners (reentrancy-guarded)."""
        if self._notifying:
            raise ValidationError(
                "reentrant policy publish: a publish listener may not publish "
                "from inside its notification (version ordering would "
                "interleave); queue the document and publish afterwards"
            )
        self._versions.append(version)
        self._notifying = True
        try:
            for listener in self._listeners:
                listener(version)
        finally:
            self._notifying = False

    def current(self) -> PolicyVersion:
        if not self._versions:
            raise ValidationError("no policy has been published")
        return self._versions[-1]

    def get_version(self, version: int) -> PolicyVersion:
        if not 1 <= version <= len(self._versions):
            raise ValidationError(f"no such policy version: {version}")
        return self._versions[version - 1]

    def history(self) -> list[PolicyVersion]:
        return list(self._versions)

    def version_count(self) -> int:
        return len(self._versions)

    def on_publish(self, listener: Callable[[PolicyVersion], None]) -> None:
        """Subscribe to future publications (Analyser, monitors)."""
        self._listeners.append(listener)
