"""Policy Retrieval Point: versioned store of policy documents.

The PDP fetches the active policy from here at evaluation time; the PAP
publishes new versions; the DRAMS Analyser reads the same store (from its
own replica) to know the "policies currently in force".  Documents are the
serialized JSON form — hashing a version gives a tamper-evident policy
fingerprint that DRAMS logs alongside decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ValidationError
from repro.crypto.hashing import hash_value


@dataclass
class PolicyVersion:
    """One published policy document with provenance."""

    version: int
    document: dict
    published_at: float
    publisher: str
    fingerprint: str = field(init=False)

    def __post_init__(self) -> None:
        self.fingerprint = hash_value(self.document)


class PolicyRetrievalPoint:
    """Append-only, versioned policy store."""

    def __init__(self) -> None:
        self._versions: list[PolicyVersion] = []
        self._listeners: list[Callable[[PolicyVersion], None]] = []

    def publish(self, document: dict, publisher: str,
                published_at: float = 0.0) -> PolicyVersion:
        """Append a new active version and notify subscribers."""
        if document.get("kind") not in ("policy", "policy_set"):
            raise ValidationError("PRP accepts serialized policy documents only")
        version = PolicyVersion(
            version=len(self._versions) + 1,
            document=document,
            published_at=published_at,
            publisher=publisher,
        )
        self._versions.append(version)
        for listener in self._listeners:
            listener(version)
        return version

    def current(self) -> PolicyVersion:
        if not self._versions:
            raise ValidationError("no policy has been published")
        return self._versions[-1]

    def get_version(self, version: int) -> PolicyVersion:
        if not 1 <= version <= len(self._versions):
            raise ValidationError(f"no such policy version: {version}")
        return self._versions[version - 1]

    def history(self) -> list[PolicyVersion]:
        return list(self._versions)

    def version_count(self) -> int:
        return len(self._versions)

    def on_publish(self, listener: Callable[[PolicyVersion], None]) -> None:
        """Subscribe to future publications (Analyser, monitors)."""
        self._listeners.append(listener)
