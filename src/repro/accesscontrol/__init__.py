"""The distributed XACML access control system DRAMS monitors.

Mirrors the FaaS deployment from the paper: PEPs are deployed at each
tenant's edge and intercept all access attempts; the PDP and the policy
management (PRP/PAP) live in the infrastructure tenant; requests and
decisions travel as network messages between them.

Components expose *probe hooks* — callbacks fired at the four monitoring
points (PEP receives request, PDP receives request, PDP issues decision,
PEP enforces decision).  DRAMS probing agents attach there; attacks in
:mod:`repro.threats` compromise the components between hooks, which is
exactly the window the paper's monitoring closes.
"""

from repro.accesscontrol.messages import AccessRequest, AccessDecision, decision_payload
from repro.accesscontrol.context_handler import ContextHandler
from repro.accesscontrol.decision_cache import DecisionCache, project_attributes
from repro.accesscontrol.prp import PolicyRetrievalPoint
from repro.accesscontrol.pap import PolicyAdministrationPoint
from repro.accesscontrol.pdp_service import PdpService
from repro.accesscontrol.pep import PolicyEnforcementPoint
from repro.accesscontrol.plane import (
    DecisionPlane,
    ShardedPdpPlane,
    SinglePdpPlane,
    as_plane,
)
from repro.accesscontrol.autoscale import AutoscaleController, CrossPepLoadView

__all__ = [
    "AccessRequest",
    "AccessDecision",
    "decision_payload",
    "ContextHandler",
    "DecisionCache",
    "project_attributes",
    "PolicyRetrievalPoint",
    "PolicyAdministrationPoint",
    "PdpService",
    "PolicyEnforcementPoint",
    "DecisionPlane",
    "SinglePdpPlane",
    "ShardedPdpPlane",
    "as_plane",
    "AutoscaleController",
    "CrossPepLoadView",
]
