"""The PDP as a deployed network service.

Lives in the infrastructure tenant.  For each ``ac_request`` message it
fetches the active policy version from the PRP, evaluates the request and
replies with an ``ac_response``.

Probe hooks (DRAMS attaches here):

- ``on_request_received(request)`` — fired when a request arrives (PDP-in),
- ``on_decision(request, decision)`` — fired when the decision leaves the
  component (PDP-out), *after* any compromise interceptor, because a probe
  can only observe what the component actually emits.

Attack injection: :mod:`repro.threats` installs ``evaluation_interceptor``
to model a compromised evaluation process, or publishes a rogue policy via
the PRP to model policy alteration.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.network import Host, Message, Network
from repro.xacml.context import RequestContext
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint
from repro.accesscontrol.messages import AccessDecision, AccessRequest
from repro.accesscontrol.prp import PolicyRetrievalPoint

RequestHook = Callable[[AccessRequest], None]
DecisionHook = Callable[[AccessRequest, AccessDecision], None]
EvaluationInterceptor = Callable[[AccessRequest, AccessDecision], AccessDecision]


class PdpService(Host):
    """Network-facing wrapper around the XACML PDP."""

    def __init__(self, network: Network, address: str, prp: PolicyRetrievalPoint,
                 base_processing_delay: float = 0.0005,
                 per_rule_delay: float = 0.00001) -> None:
        super().__init__(network, address)
        self.prp = prp
        self.base_processing_delay = base_processing_delay
        self.per_rule_delay = per_rule_delay
        self.requests_served = 0
        self.on_request_received: list[RequestHook] = []
        self.on_decision: list[DecisionHook] = []
        self.evaluation_interceptor: Optional[EvaluationInterceptor] = None
        #: Attack injection point: a rogue policy replacing the PRP view
        #: (models the attacker altering the policy the PDP enforces).
        self.policy_override: Optional[PolicyDecisionPoint] = None
        self._pdp_cache: dict[str, PolicyDecisionPoint] = {}

    # -- policy management -------------------------------------------------------

    def _current_pdp(self) -> PolicyDecisionPoint:
        version = self.prp.current()
        pdp = self._pdp_cache.get(version.fingerprint)
        if pdp is None:
            pdp = PolicyDecisionPoint(policy_from_dict(version.document))
            self._pdp_cache = {version.fingerprint: pdp}
        return pdp

    def _rule_count(self) -> int:
        document = self.prp.current().document
        return _count_rules(document)

    # -- message handling -------------------------------------------------------

    def receive(self, message: Message) -> None:
        if message.kind != "ac_request":
            return
        request = AccessRequest.from_dict(message.payload)
        for hook in self.on_request_received:
            hook(request)
        delay = self.base_processing_delay + self.per_rule_delay * self._rule_count()
        self.sim.schedule(delay, lambda: self._evaluate_and_reply(request, message.src),
                          label=f"pdp-eval:{request.request_id}")

    def _evaluate_and_reply(self, request: AccessRequest, reply_to: str) -> None:
        self.requests_served += 1
        pdp = self.policy_override or self._current_pdp()
        response = pdp.evaluate(RequestContext.from_dict(request.content))
        decision = AccessDecision(
            request_id=request.request_id,
            decision=response.decision.value,
            obligations=[ob.to_dict() for ob in response.obligations],
            status_code=response.status_code,
            decided_at=self.sim.now,
        )
        if self.evaluation_interceptor is not None:
            decision = self.evaluation_interceptor(request, decision)
        for hook in self.on_decision:
            hook(request, decision)
        self.send(reply_to, "ac_response", decision.to_dict())


def _count_rules(document: dict) -> int:
    if document.get("kind") == "policy":
        return len(document.get("rules", []))
    return sum(_count_rules(child) for child in document.get("children", []))
