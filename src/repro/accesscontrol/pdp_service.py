"""The PDP as a deployed network service.

Lives in the infrastructure tenant.  For each ``ac_request`` message it
fetches the active policy version from the PRP, evaluates the request and
replies with an ``ac_response``.

Fast path: compiled PDPs are kept in a small per-fingerprint LRU (policy
flip-flops no longer recompile), rule counts are memoised per version, and
a :class:`~repro.accesscontrol.decision_cache.DecisionCache` serves
repeated requests without re-walking the policy tree.  Cached and indexed
decisions are bit-identical to slow-path evaluation (differential tests
enforce this), so probes and DRAMS observe the same behaviour either way.

Every decision (and hence its ``pdp-out`` log entry) is stamped with the
policy ``(version, fingerprint)`` it was evaluated under, so when PRP
replicas skew (see :mod:`repro.policydist`) the monitoring plane can tell
honest propagation churn from tampering.  The decision cache keys on the
fingerprint, so a stale replica serving version *k* never pollutes a
fresh replica's cache even when the cache is shared across shards.

Probe hooks (DRAMS attaches here):

- ``on_request_received(request)`` — fired when a request arrives (PDP-in),
- ``on_decision(request, decision)`` — fired when the decision leaves the
  component (PDP-out), *after* any compromise interceptor, because a probe
  can only observe what the component actually emits.

Attack injection: :mod:`repro.threats` installs ``evaluation_interceptor``
to model a compromised evaluation process, or publishes a rogue policy via
the PRP to model policy alteration.  An override PDP bypasses the decision
cache entirely — rogue decisions are neither served from nor written to it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.simnet.network import Host, Message, Network
from repro.xacml.context import RequestContext
from repro.xacml.index import attribute_footprint
from repro.xacml.parser import policy_from_dict
from repro.xacml.pdp import PolicyDecisionPoint
from repro.accesscontrol.decision_cache import DecisionCache
from repro.accesscontrol.messages import AccessDecision, AccessRequest
from repro.accesscontrol.prp import PolicyRetrievalPoint, PolicyVersion

RequestHook = Callable[[AccessRequest], None]
DecisionHook = Callable[[AccessRequest, AccessDecision], None]
EvaluationInterceptor = Callable[[AccessRequest, AccessDecision], AccessDecision]


@dataclass
class _CompiledPolicy:
    """Everything derived once per policy fingerprint."""

    pdp: PolicyDecisionPoint
    rule_count: int
    footprint: frozenset


class PdpService(Host):
    """Network-facing wrapper around the XACML PDP."""

    def __init__(self, network: Network, address: str, prp: PolicyRetrievalPoint,
                 base_processing_delay: float = 0.0005,
                 per_rule_delay: float = 0.00001,
                 pdp_cache_size: int = 8,
                 use_target_index: bool = True,
                 decision_cache: Optional[DecisionCache] = None,
                 use_decision_cache: bool = True,
                 serialize_evaluations: bool = False) -> None:
        super().__init__(network, address)
        self.prp = prp
        self.base_processing_delay = base_processing_delay
        self.per_rule_delay = per_rule_delay
        #: Capacity model: when True the evaluator is single-threaded —
        #: each evaluation occupies it for its processing delay and
        #: concurrent requests queue behind the busy cursor.  Off by
        #: default (the classic infinitely-parallel service), on in the
        #: decision-plane scaling benchmark where the single-evaluator
        #: ceiling is the thing being measured.
        self.serialize_evaluations = serialize_evaluations
        self._busy_until = 0.0
        self.requests_served = 0
        #: Cumulative evaluation-occupancy seconds (the service cost of
        #: every accepted request, queueing excluded).  With
        #: ``requests_served`` this yields the *observed* service rate —
        #: requests per busy second — which the autoscale controller's
        #: weighting pass turns into vnode multipliers for heterogeneous
        #: pools.  Accumulated at accept time, so under load it may run
        #: slightly ahead of the served counter by the queued requests.
        self.busy_accumulated = 0.0
        #: Evaluations accepted but not yet replied to.  The elastic
        #: decision plane drains a shard only once this reaches zero, so
        #: membership changes never abandon in-flight work.
        self.pending_evaluations = 0
        #: Crash/restart state (fault plane).  ``_epoch`` fences scheduled
        #: evaluation events: an event armed before a crash carries the old
        #: epoch and is discarded when it fires, modelling the process
        #: dying with its run queue.
        self.crashed = False
        self.crashes = 0
        self.evaluations_lost = 0
        self._epoch = 0
        self.on_request_received: list[RequestHook] = []
        self.on_decision: list[DecisionHook] = []
        self.evaluation_interceptor: Optional[EvaluationInterceptor] = None
        #: Attack injection point: a rogue policy replacing the PRP view
        #: (models the attacker altering the policy the PDP enforces).
        self.policy_override: Optional[PolicyDecisionPoint] = None
        self.use_target_index = use_target_index
        self.pdp_cache_size = max(1, pdp_cache_size)
        self.pdp_compilations = 0
        self._pdp_cache: "OrderedDict[str, _CompiledPolicy]" = OrderedDict()
        self.decision_cache: Optional[DecisionCache] = None
        if use_decision_cache:
            # "or" would discard an *empty* shared cache (len() == 0 is falsy).
            self.decision_cache = (decision_cache if decision_cache is not None
                                   else DecisionCache())
            self.decision_cache.bind(prp)

    # -- policy management -------------------------------------------------------

    def _compiled_current(self) -> tuple[PolicyVersion, _CompiledPolicy]:
        """The active policy version with its compiled artefacts (LRU-kept)."""
        version = self.prp.current()
        compiled = self._pdp_cache.get(version.fingerprint)
        if compiled is None:
            root = policy_from_dict(version.document)
            compiled = _CompiledPolicy(
                pdp=PolicyDecisionPoint(root, indexed=self.use_target_index),
                rule_count=_count_rules(version.document),
                footprint=attribute_footprint(root),
            )
            self._pdp_cache[version.fingerprint] = compiled
            self.pdp_compilations += 1
            while len(self._pdp_cache) > self.pdp_cache_size:
                self._pdp_cache.popitem(last=False)
        else:
            self._pdp_cache.move_to_end(version.fingerprint)
        return version, compiled

    def _current_pdp(self) -> PolicyDecisionPoint:
        return self._compiled_current()[1].pdp

    def current_footprint(self) -> tuple[PolicyVersion, frozenset]:
        """Active policy version and its attribute footprint (LRU-kept).

        Public so the decision plane can route on the same footprint
        projection this service keys its cache with, without compiling
        the policy a second time.
        """
        version, compiled = self._compiled_current()
        return version, compiled.footprint

    def _rule_count(self) -> int:
        return self._compiled_current()[1].rule_count

    # -- load inspection ---------------------------------------------------------

    def busy_seconds(self) -> float:
        """The shard's *busy cursor*: queued work ahead of a new arrival.

        Under ``serialize_evaluations`` every accepted request extends
        ``_busy_until``, so this is exactly how long a request arriving
        now would wait before its evaluation starts.  The queue-aware
        decision plane routes around shards whose cursor is long instead
        of waiting out the PEP's per-attempt timeout.  An
        infinitely-parallel evaluator (the default model) never queues
        and always reports 0.
        """
        if not self.serialize_evaluations:
            return 0.0
        return max(0.0, self._busy_until - self.sim.now)

    # -- crash / restart ---------------------------------------------------------

    def crash(self) -> None:
        """Abrupt process failure: drop off the network, lose in-flight work.

        Accepted-but-unanswered evaluations are gone (their scheduled
        events are epoch-fenced, their PEPs will time out and fail over);
        the busy cursor resets with the process.  The decision cache is
        *not* touched here — whether it dies with the process is the
        plane's call (:meth:`ShardedPdpPlane.crash_shard` clears a
        partitioned cache, leaves a shared one to the survivors).
        Idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        self._epoch += 1
        self.evaluations_lost += self.pending_evaluations
        self.pending_evaluations = 0
        self._busy_until = 0.0
        tracer = self.network.telemetry
        if tracer is not None:
            # Accepted-but-unanswered evaluations die with the process;
            # their spans close now instead of lingering as orphans.
            tracer.close_prefixed(("pdp.evaluate", self.address), "crashed")
        self.network.detach(self.address)

    def restart(self) -> None:
        """Come back up at the same address (a fresh network incarnation).

        Messages sent to the dead incarnation stay dead (the network's
        incarnation fence drops them); only traffic sent from now on
        reaches the restarted service.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.network.attach(self)

    # -- message handling -------------------------------------------------------

    def receive(self, message: Message) -> None:
        if message.kind != "ac_request":
            return
        request = AccessRequest.from_dict(message.payload)
        for hook in self.on_request_received:
            hook(request)
        # Compute the cache key once at receipt; the scheduled evaluation
        # reuses it unless a racing policy publication changed the
        # fingerprint in between (then it recomputes — correctness first).
        # The processing delay is committed here, so a hit-predicted request
        # whose entry is flushed/evicted before evaluation is charged the
        # hit-path delay despite the full tree walk — an accepted
        # approximation, bounded by in-flight requests per policy publish.
        keyed = self._request_key(request)
        hit_expected = keyed is not None and self.decision_cache.contains(keyed[1])
        delay = self.base_processing_delay
        if not hit_expected:
            delay += self.per_rule_delay * self._rule_count()
        self.busy_accumulated += delay
        if self.serialize_evaluations:
            start = max(self.sim.now, self._busy_until)
            self._busy_until = start + delay
            delay = self._busy_until - self.sim.now
        self.pending_evaluations += 1
        epoch = self._epoch
        tracer = self.network.telemetry
        if tracer is not None:
            # Keyed span covering queue wait + evaluation; the reply path
            # closes it, a crash closes every open one for this shard.
            # open_span is idempotent, so a duplicated delivery re-finds
            # the live span instead of forking the trace.
            tracer.open_span(
                ("pdp.evaluate", self.address, request.request_id),
                "pdp.evaluate", self.address,
                attrs={"cache_hit": hit_expected})
        self.sim.schedule(
            delay,
            lambda: self._evaluate_and_reply(request, message.src, keyed, epoch),
            label=f"pdp-eval:{request.request_id}")

    def _request_key(self, request: AccessRequest) -> Optional[tuple[str, str]]:
        """``(fingerprint, cache key)`` for the active policy, if cacheable."""
        if self.decision_cache is None or self.policy_override is not None:
            return None
        if self.prp.version_count() == 0:
            return None
        version, compiled = self._compiled_current()
        key = self.decision_cache.request_key(
            version.fingerprint, request.content, compiled.footprint)
        return version.fingerprint, key

    def _evaluate_and_reply(self, request: AccessRequest, reply_to: str,
                            keyed: Optional[tuple[str, str]] = None,
                            epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._epoch:
            # The process crashed after accepting this evaluation; the
            # event outlived it.  The loss was already accounted at crash
            # time (``evaluations_lost``) — just let the event die.
            return
        tracer = self.network.telemetry
        if tracer is not None:
            span_key = ("pdp.evaluate", self.address, request.request_id)
            span = tracer.keyed(span_key)
            if span is not None:
                # The reply (and the PDP-out probe legs) inherit the
                # evaluation span; non-strict close because a duplicated
                # request schedules a second evaluation of the same key.
                with tracer.activate(span.context):
                    self._serve(request, reply_to, keyed)
                tracer.close_span(span_key, "ok", strict=False)
                return
        self._serve(request, reply_to, keyed)

    def _serve(self, request: AccessRequest, reply_to: str,
               keyed: Optional[tuple[str, str]]) -> None:
        self.requests_served += 1
        self.pending_evaluations -= 1
        payload, version = self._decide(request, keyed)
        decision = AccessDecision(
            request_id=request.request_id,
            decision=payload["decision"],
            obligations=payload["obligations"],
            status_code=payload["status_code"],
            decided_at=self.sim.now,
            # Provenance stamp: the policy this evaluator claims it decided
            # under.  On the compromised-override path the stamp still names
            # the PRP's version — an attacker forging decisions forges a
            # legitimate-looking stamp, and only the Analyser's re-derivation
            # exposes the lie.
            policy_version=version.version if version is not None else 0,
            policy_fingerprint=version.fingerprint if version is not None else "",
        )
        if self.evaluation_interceptor is not None:
            decision = self.evaluation_interceptor(request, decision)
        for hook in self.on_decision:
            hook(request, decision)
        self.send(reply_to, "ac_response", decision.to_dict())

    def _decide(self, request: AccessRequest,
                keyed: Optional[tuple[str, str]] = None
                ) -> tuple[dict, Optional[PolicyVersion]]:
        """Serialized response for ``request`` plus the policy version used:
        cached, indexed, or overridden."""
        if self.policy_override is not None:
            # Compromised evaluation path: never consult or feed the cache.
            response = self.policy_override.evaluate(
                RequestContext.from_dict(request.content))
            claimed = self.prp.current() if self.prp.version_count() else None
            return {
                "decision": response.decision.value,
                "status_code": response.status_code,
                "obligations": [ob.to_dict() for ob in response.obligations],
            }, claimed
        version, compiled = self._compiled_current()
        key = None
        if self.decision_cache is not None:
            if keyed is not None and keyed[0] == version.fingerprint:
                key = keyed[1]
            else:
                key = self.decision_cache.request_key(
                    version.fingerprint, request.content, compiled.footprint)
            cached = self.decision_cache.get(key)
            if cached is not None:
                return cached, version
        response = compiled.pdp.evaluate(RequestContext.from_dict(request.content))
        payload = {
            "decision": response.decision.value,
            "status_code": response.status_code,
            "obligations": [ob.to_dict() for ob in response.obligations],
        }
        if key is not None:
            self.decision_cache.put(key, version.fingerprint, payload)
        return payload, version


def _count_rules(document: dict) -> int:
    if document.get("kind") == "policy":
        return len(document.get("rules", []))
    return sum(_count_rules(child) for child in document.get("children", []))
