"""Detection-quality aggregation for attack experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.threats.adversary import AttackRecord


@dataclass(frozen=True)
class DetectionSummary:
    """Aggregate over a set of attack records."""

    attacks: int
    detected: int
    detection_rate: float
    mean_latency: Optional[float]
    p95_latency: Optional[float]
    false_positives: int

    def as_row(self, label: str) -> dict:
        return {
            "config": label,
            "attacks": self.attacks,
            "detected": self.detected,
            "rate": round(self.detection_rate, 3),
            "mean_latency_s": (round(self.mean_latency, 2)
                               if self.mean_latency is not None else "-"),
            "p95_latency_s": (round(self.p95_latency, 2)
                              if self.p95_latency is not None else "-"),
            "false_pos": self.false_positives,
        }


class DetectionScorer:
    """Accumulates attack records (possibly across runs) into a summary."""

    def __init__(self) -> None:
        self._records: list[AttackRecord] = []
        self._false_positives = 0

    def add(self, record: AttackRecord) -> None:
        self._records.append(record)

    def add_all(self, records: list[AttackRecord], false_positives: int = 0) -> None:
        self._records.extend(records)
        self._false_positives += false_positives

    def summary(self) -> DetectionSummary:
        detected = [record for record in self._records if record.detected]
        latencies = sorted(record.detection_latency for record in detected
                           if record.detection_latency is not None)
        mean_latency = sum(latencies) / len(latencies) if latencies else None
        p95 = None
        if latencies:
            index = min(len(latencies) - 1, int(0.95 * (len(latencies) - 1) + 0.5))
            p95 = latencies[index]
        return DetectionSummary(
            attacks=len(self._records),
            detected=len(detected),
            detection_rate=(len(detected) / len(self._records)
                            if self._records else 0.0),
            mean_latency=mean_latency,
            p95_latency=p95,
            false_positives=self._false_positives,
        )
