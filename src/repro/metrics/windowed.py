"""Constant-memory windowed run metrics for streaming issuance.

The materialised harness path keeps every :class:`EnforcedAccess` and
summarises at the end; a million-request streaming run cannot.
:class:`WindowedMetrics` folds each outcome into O(1) cumulative
aggregates plus a bounded ring of per-window buckets (simulated-time
windows), so a run's footprint is independent of its length while the
recent-load shape stays observable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class _Window:
    start: float
    count: int = 0
    grants: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0


@dataclass
class WindowedMetrics:
    """Streaming aggregates: cumulative totals + a bounded window ring."""

    window_seconds: float = 1.0
    max_windows: int = 64
    count: int = 0
    grants: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0
    latency_min: float = float("inf")
    _windows: deque = field(default_factory=deque, repr=False)

    def observe(self, at: float, latency: float, granted: bool) -> None:
        """Fold one enforced outcome in; ``at`` is simulated time."""
        self.count += 1
        if granted:
            self.grants += 1
        self.latency_sum += latency
        if latency > self.latency_max:
            self.latency_max = latency
        if latency < self.latency_min:
            self.latency_min = latency
        start = (at // self.window_seconds) * self.window_seconds
        if not self._windows or self._windows[-1].start != start:
            self._windows.append(_Window(start=start))
            while len(self._windows) > self.max_windows:
                self._windows.popleft()
        window = self._windows[-1]
        window.count += 1
        if granted:
            window.grants += 1
        window.latency_sum += latency
        if latency > window.latency_max:
            window.latency_max = latency

    def grant_rate(self) -> float:
        return self.grants / self.count if self.count else 0.0

    def mean_latency(self) -> float:
        return self.latency_sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """One dict: cumulative totals plus the retained window series."""
        return {
            "count": self.count,
            "grants": self.grants,
            "grant_rate": round(self.grant_rate(), 6),
            "latency_mean": self.mean_latency(),
            "latency_max": self.latency_max,
            "latency_min": self.latency_min if self.count else 0.0,
            "windows": [
                {
                    "start": window.start,
                    "count": window.count,
                    "grants": window.grants,
                    "latency_mean": (
                        window.latency_sum / window.count if window.count else 0.0
                    ),
                    "latency_max": window.latency_max,
                }
                for window in self._windows
            ],
        }
