"""Latency series and summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class SeriesSummary:
    """Order statistics of one latency series (seconds)."""

    name: str
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_row(self, scale: float = 1000.0, unit: str = "ms") -> dict:
        return {
            "series": self.name,
            "n": self.count,
            f"mean_{unit}": round(self.mean * scale, 3),
            f"p50_{unit}": round(self.p50 * scale, 3),
            f"p95_{unit}": round(self.p95 * scale, 3),
            f"p99_{unit}": round(self.p99 * scale, 3),
            f"max_{unit}": round(self.maximum * scale, 3),
        }


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile over pre-sorted values."""
    if not sorted_values:
        raise ValidationError("percentile of empty series")
    if not 0.0 <= fraction <= 1.0:
        raise ValidationError(f"fraction must be in [0,1]: {fraction}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


class LatencyRecorder:
    """Collects named latency samples."""

    def __init__(self) -> None:
        self._series: dict[str, list[float]] = {}

    def record(self, name: str, value: float) -> None:
        if value < 0:
            raise ValidationError(f"negative latency recorded for {name!r}: {value}")
        self._series.setdefault(name, []).append(value)

    def extend(self, name: str, values: Iterable[float]) -> None:
        for value in values:
            self.record(name, value)

    def count(self, name: str) -> int:
        return len(self._series.get(name, []))

    def values(self, name: str) -> list[float]:
        return list(self._series.get(name, []))

    def names(self) -> list[str]:
        return sorted(self._series)

    def summary(self, name: str) -> SeriesSummary:
        values = self._series.get(name)
        if not values:
            raise ValidationError(f"no samples recorded for {name!r}")
        ordered = sorted(values)
        return SeriesSummary(
            name=name,
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            maximum=ordered[-1],
        )

    def summaries(self) -> list[SeriesSummary]:
        return [self.summary(name) for name in self.names()]
