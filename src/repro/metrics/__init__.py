"""Measurement utilities shared by tests and benchmarks.

- :class:`LatencyRecorder` — named latency series with percentile
  summaries,
- :class:`DetectionScorer` — detection rate / latency / false-positive
  aggregation over attack records,
- :func:`format_table` — aligned plain-text tables, the output format of
  every benchmark harness (mirrors how the paper would present results).
"""

from repro.metrics.recorder import LatencyRecorder, SeriesSummary
from repro.metrics.detection import DetectionScorer, DetectionSummary
from repro.metrics.tables import format_table

__all__ = [
    "LatencyRecorder",
    "SeriesSummary",
    "DetectionScorer",
    "DetectionSummary",
    "format_table",
]
