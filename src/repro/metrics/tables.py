"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(rows: Sequence[dict[str, Any]], title: str = "") -> str:
    """Render dict rows as an aligned text table.

    Column order follows the first row's key order; missing cells render
    as ``-``.  All benchmark harnesses print through this function, so the
    regenerated "tables" look alike across experiments.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_cell(row.get(column, "-")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    parts = []
    if title:
        parts.append(title)
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    parts.append(header)
    parts.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        parts.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(parts)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
