"""The ten hand-built scenarios, transcribed as :class:`ScenarioSpec`s.

Each preset compiles (via :func:`repro.scenariogen.generate.
generate_scenario`) to a scenario *behaviourally equivalent* to its
hand-built counterpart in :mod:`repro.workload.scenarios`: the identical
:class:`WorkloadConfig` (hence the bit-identical request stream) and a
policy document that agrees with the hand-built one on every decision
and obligation — the conformance suite in ``tests/test_scenariogen.py``
pins both.  The catalogue-shaped presets import the very same
service-class tables the hand-built factories use, so the two stay in
lockstep by construction.

Corpus quirks are transcribed, not repaired: the healthcare
``clinicians-read`` rule keeps its ``role_match="all"`` conjunction
(matches nobody with single-valued roles), and clerks still get nothing
clinical.
"""

from __future__ import annotations

from repro.scenariogen.spec import (
    ArrivalSpec,
    ChurnSpec,
    ObligationSpec,
    PopulationSpec,
    RuleSpec,
    ScenarioSpec,
    ServiceClassSpec,
)
from repro.workload.scenarios import (
    _DIURNAL_SERVICE_CLASSES,
    _ELASTIC_AUDITED_CLASSES,
    _ELASTIC_SERVICE_CLASSES,
    _FEDERATION_AUDITED_CLASSES,
    _FEDERATION_SERVICE_CLASSES,
    _IOT_AUDITED_CLASSES,
    _IOT_DEVICE_CLASSES,
    _STORM_AUDITED_CLASSES,
    _STORM_SERVICE_CLASSES,
)

_DENY = RuleSpec(effect="Deny")


def _catalogue_classes(
    catalogue: dict,
    audited: tuple = (),
    audit_reason: str = "",
    home_write: bool = True,
    policy_prefix: str = "",
) -> tuple:
    """The uniform per-class policy shape five scenarios share."""
    classes = []
    for name, (readers, writers) in catalogue.items():
        obligations = ()
        if name in audited:
            obligations = (
                ObligationSpec(
                    obligation_id=f"audit-{name}",
                    attributes=(("reason", audit_reason),),
                ),
            )
        write_rule = RuleSpec(
            roles=writers,
            actions=("write",),
            condition="home-tenant" if home_write else "",
            rule_id=f"{name}-home-write" if home_write else f"{name}-write",
        )
        classes.append(
            ServiceClassSpec(
                name=name,
                rules=(
                    RuleSpec(roles=readers, actions=("read",), rule_id=f"{name}-read"),
                    write_rule,
                ),
                obligations=obligations,
                policy_id=f"{policy_prefix}{name}",
            )
        )
    return tuple(classes)


def healthcare_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="healthcare",
        roles=("doctor", "nurse", "clerk"),
        classes=(
            ServiceClassSpec(
                name="medical-record",
                combining="first-applicable",
                rules=(
                    RuleSpec(roles=("doctor",), actions=("read",), rule_id="doctor-read"),
                    RuleSpec(
                        roles=("doctor",),
                        actions=("write",),
                        condition="home-tenant",
                        rule_id="doctor-write-own-tenant",
                    ),
                    RuleSpec(
                        effect="Deny", actions=("write",), rule_id="deny-clinical-writes"
                    ),
                ),
                obligations=(
                    ObligationSpec(
                        obligation_id="log-clinical-access",
                        attributes=(("reason", "GDPR art. 9 processing record"),),
                    ),
                ),
                policy_id="medical-records",
            ),
            ServiceClassSpec(
                name="lab-result",
                rules=(
                    # The corpus's conjunction quirk, preserved verbatim:
                    # doctor AND nurse, satisfiable only by multi-role bags.
                    RuleSpec(
                        roles=("doctor", "nurse"),
                        role_match="all",
                        actions=("read",),
                        rule_id="clinicians-read",
                    ),
                ),
                policy_id="lab-results",
            ),
        ),
        population=PopulationSpec(
            subjects=60,
            resources=300,
            role_weights=(0.35, 0.35, 0.30),
            read_fraction=0.85,
        ),
        arrival=ArrivalSpec(rate=2.0),
        description="Hospitals in two clouds share records and lab results.",
    )


def ministry_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="ministry",
        roles=("officer", "auditor", "intern"),
        classes=(
            ServiceClassSpec(
                name="tax-document",
                combining="first-applicable",
                rules=(
                    RuleSpec(
                        roles=("officer",),
                        actions=("read",),
                        condition="clearance",
                        rule_id="officer-clearance-read",
                    ),
                    RuleSpec(
                        roles=("auditor",),
                        actions=("read",),
                        condition="office-hours",
                        rule_id="auditor-office-hours",
                    ),
                    RuleSpec(
                        roles=("officer",),
                        actions=("write",),
                        condition="home-tenant",
                        rule_id="owner-tenant-write",
                    ),
                    RuleSpec(effect="Deny", rule_id="default-deny"),
                ),
                obligations=(
                    ObligationSpec(
                        obligation_id="notify-owner",
                        attributes=(("channel", "audit-queue"),),
                    ),
                ),
                policy_id="tax-documents",
            ),
        ),
        population=PopulationSpec(
            subjects=40,
            resources=150,
            role_weights=(0.5, 0.2, 0.3),
            read_fraction=0.7,
        ),
        arrival=ArrivalSpec(rate=2.0),
        description="Finance and interior ministries share tax documents.",
    )


def iot_edge_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="iot-edge",
        roles=("sensor", "technician", "operator", "analyst"),
        classes=_catalogue_classes(
            _IOT_DEVICE_CLASSES,
            audited=_IOT_AUDITED_CLASSES,
            audit_reason="safety-critical device class",
            home_write=False,
            policy_prefix="iot-",
        ),
        population=PopulationSpec(
            subjects=200,
            resources=600,
            role_weights=(0.45, 0.15, 0.25, 0.15),
            read_fraction=0.6,
        ),
        arrival=ArrivalSpec(rate=2.0),
        description="Edge clouds exchange telemetry, control and firmware "
        "for a dozen device-data classes.",
    )


def delegation_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="delegation",
        roles=("hr-officer", "finance-officer", "operator", "auditor", "delegate"),
        classes=(
            ServiceClassSpec(
                name="hr-record",
                combining="first-applicable",
                rules=(
                    RuleSpec(
                        roles=("hr-officer",), actions=("read",), rule_id="hr-officer-read"
                    ),
                    RuleSpec(
                        roles=("hr-officer",),
                        actions=("write",),
                        condition="home-tenant",
                        rule_id="hr-officer-home-write",
                    ),
                    RuleSpec(
                        roles=("delegate",),
                        actions=("read",),
                        condition="clearance",
                        rule_id="delegate-attenuated-read",
                    ),
                    RuleSpec(effect="Deny", rule_id="hr-record-default-deny"),
                ),
                obligations=(
                    ObligationSpec(
                        obligation_id="record-delegated-access",
                        attributes=(("registry", "delegation-ledger"),),
                    ),
                ),
                group=("cloud-a",),
                policy_id="hr-records",
            ),
            ServiceClassSpec(
                name="finance-record",
                combining="first-applicable",
                rules=(
                    RuleSpec(
                        roles=("finance-officer",),
                        actions=("read",),
                        rule_id="finance-officer-read",
                    ),
                    RuleSpec(
                        roles=("finance-officer",),
                        actions=("write",),
                        condition="home-tenant",
                        rule_id="finance-officer-home-write",
                    ),
                    RuleSpec(
                        roles=("delegate",),
                        actions=("read",),
                        condition="clearance",
                        rule_id="delegate-attenuated-read",
                    ),
                    RuleSpec(effect="Deny", rule_id="finance-record-default-deny"),
                ),
                group=("cloud-a",),
                policy_id="finance-records",
            ),
            ServiceClassSpec(
                name="ops-log",
                combining="first-applicable",
                rules=(
                    RuleSpec(roles=("operator",), rule_id="operator-read-write"),
                    RuleSpec(
                        roles=("auditor",), actions=("read",), rule_id="auditor-read"
                    ),
                    RuleSpec(effect="Deny", rule_id="ops-default-deny"),
                ),
                group=("cloud-b",),
                policy_id="ops-logs",
            ),
            ServiceClassSpec(
                name="audit-trail",
                combining="first-applicable",
                rules=(
                    RuleSpec(
                        roles=("auditor",), actions=("read",), rule_id="auditor-read-trail"
                    ),
                    RuleSpec(
                        roles=("operator",),
                        actions=("write",),
                        condition="home-tenant",
                        rule_id="operator-home-append",
                    ),
                    RuleSpec(effect="Deny", rule_id="trail-default-deny"),
                ),
                obligations=(
                    ObligationSpec(
                        obligation_id="notify-audit-board",
                        fulfill_on="Deny",
                        attributes=(("channel", "compliance-queue"),),
                    ),
                ),
                group=("cloud-b",),
                policy_id="audit-trails",
            ),
        ),
        population=PopulationSpec(
            subjects=80,
            resources=240,
            role_weights=(0.25, 0.2, 0.2, 0.15, 0.2),
            read_fraction=0.75,
        ),
        arrival=ArrivalSpec(rate=2.0),
        description="Cross-cloud delegation over nested administrative "
        "and operational domains.",
    )


def audit_burst_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="audit-burst",
        roles=("service", "auditor", "operator"),
        classes=(
            ServiceClassSpec(
                name="audit-entry",
                combining="first-applicable",
                rules=(
                    RuleSpec(
                        roles=("service",), actions=("write",), rule_id="service-append"
                    ),
                    RuleSpec(
                        roles=("auditor",), actions=("read",), rule_id="auditor-read"
                    ),
                    RuleSpec(effect="Deny", rule_id="audit-default-deny"),
                ),
                obligations=(
                    ObligationSpec(
                        obligation_id="retain-seven-years",
                        attributes=(("basis", "compliance mandate"),),
                    ),
                ),
                policy_id="audit-log",
            ),
            ServiceClassSpec(
                name="service-record",
                combining="first-applicable",
                rules=(
                    RuleSpec(
                        roles=("operator",), actions=("read",), rule_id="operator-read"
                    ),
                    RuleSpec(
                        roles=("operator",),
                        actions=("write",),
                        condition="home-tenant",
                        rule_id="operator-home-write",
                    ),
                    RuleSpec(effect="Deny", rule_id="records-default-deny"),
                ),
                policy_id="service-records",
            ),
        ),
        population=PopulationSpec(
            subjects=120,
            resources=480,
            role_weights=(0.7, 0.1, 0.2),
            read_fraction=0.25,
            zipf_skew=1.3,
        ),
        arrival=ArrivalSpec(rate=25.0),
        description="A tenant's services flood the chain with audit "
        "appends while operators keep working.",
    )


def federation_scale_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="federation-scale",
        roles=("caseworker", "analyst", "auditor", "service-bot"),
        classes=_catalogue_classes(
            _FEDERATION_SERVICE_CLASSES,
            audited=_FEDERATION_AUDITED_CLASSES,
            audit_reason="public-integrity register",
            policy_prefix="svc-",
        ),
        population=PopulationSpec(
            subjects=500,
            resources=2000,
            role_weights=(0.4, 0.25, 0.15, 0.2),
            read_fraction=0.65,
        ),
        arrival=ArrivalSpec(rate=2500.0),
        description="A whole-of-government federation whose arrival rate "
        "exceeds one PDP evaluator's service rate.",
    )


def policy_churn_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="policy-churn",
        roles=("caseworker", "contractor", "auditor"),
        classes=(
            ServiceClassSpec(
                name="case-file",
                combining="first-applicable",
                rules=(
                    RuleSpec(
                        roles=("caseworker",), actions=("read",), rule_id="caseworker-read"
                    ),
                    RuleSpec(
                        roles=("caseworker",),
                        actions=("write",),
                        condition="home-tenant",
                        rule_id="caseworker-home-write",
                    ),
                    RuleSpec(
                        roles=("auditor",), actions=("read",), rule_id="auditor-read"
                    ),
                    RuleSpec(effect="Deny", rule_id="case-default-deny"),
                ),
                policy_id="case-files",
            ),
        ),
        churn=ChurnSpec(
            generations=4,
            stamp_class="case-file",
            toggle_rule=RuleSpec(
                roles=("contractor",), actions=("read",), rule_id="contractor-read"
            ),
        ),
        population=PopulationSpec(
            subjects=150,
            resources=600,
            role_weights=(0.45, 0.35, 0.2),
            read_fraction=0.8,
        ),
        arrival=ArrivalSpec(rate=25.0),
        description="Case handling while the policy is republished "
        "mid-traffic; contractor access flips per generation.",
    )


def elastic_scale_spec() -> ScenarioSpec:
    catalogue = ("alert-feed", "alert-feed", "alert-feed") + tuple(
        c for c in _ELASTIC_SERVICE_CLASSES if c != "alert-feed"
    )
    return ScenarioSpec(
        name="elastic-scale",
        roles=("responder", "coordinator", "analyst", "ingest-bot"),
        classes=_catalogue_classes(
            _ELASTIC_SERVICE_CLASSES,
            audited=_ELASTIC_AUDITED_CLASSES,
            audit_reason="emergency-powers accountability record",
            policy_prefix="civ-",
        ),
        population=PopulationSpec(
            subjects=300,
            resources=900,
            role_weights=(0.45, 0.2, 0.15, 0.2),
            read_fraction=0.75,
            zipf_skew=1.5,
            catalogue=catalogue,
        ),
        arrival=ArrivalSpec(rate=3000.0),
        description="A civil-protection flash crowd whose hot keys and "
        "spiking arrival rate demand an elastic decision plane.",
    )


def diurnal_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="diurnal",
        roles=("citizen", "clerk", "inspector", "service-bot"),
        classes=_catalogue_classes(_DIURNAL_SERVICE_CLASSES, policy_prefix="mun-"),
        population=PopulationSpec(
            subjects=300,
            resources=800,
            role_weights=(0.65, 0.2, 0.05, 0.1),
            read_fraction=0.85,
            zipf_skew=1.2,
        ),
        arrival=ArrivalSpec(rate=350.0, period=6.0, trough=0.1),
        description="Citizens work the municipal portals through a daily "
        "peak-trough-peak arrival curve; the efficient plane "
        "sheds shards into the trough.",
    )


def partition_storm_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="partition-storm",
        roles=("operator", "commander", "liaison", "feed-bot"),
        classes=_catalogue_classes(
            _STORM_SERVICE_CLASSES,
            audited=_STORM_AUDITED_CLASSES,
            audit_reason="emergency-operations accountability record",
            policy_prefix="em-",
        ),
        population=PopulationSpec(
            subjects=200,
            resources=600,
            role_weights=(0.5, 0.2, 0.15, 0.15),
            read_fraction=0.85,
        ),
        arrival=ArrivalSpec(rate=150.0),
        description="An emergency-management federation that must keep "
        "resolving access decisions while a scripted fault plan "
        "partitions, crashes and degrades the substrate.",
    )


#: Preset factories, ordered like ``SCENARIO_FACTORIES``.
PRESET_SPECS = (
    healthcare_spec,
    ministry_spec,
    iot_edge_spec,
    delegation_spec,
    audit_burst_spec,
    federation_scale_spec,
    policy_churn_spec,
    elastic_scale_spec,
    diurnal_spec,
    partition_storm_spec,
)


def preset_spec(name: str):
    """Look a preset up by scenario name."""
    for factory in PRESET_SPECS:
        spec = factory()
        if spec.name == name:
            return spec
    raise KeyError(f"no preset spec named {name!r}")
