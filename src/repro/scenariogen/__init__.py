"""Parameterised, seeded scenario generation.

The hand-built corpus in :mod:`repro.workload.scenarios` tops out at ten
federations; this package turns scenarios into *data*.  A
:class:`~repro.scenariogen.spec.ScenarioSpec` describes a federation
declaratively — shape, roles, service-class catalogue (or a random-tree
recipe), arrival process, churn and attack mix — and
:func:`~repro.scenariogen.generate.generate_scenario` compiles it into
the same :class:`~repro.workload.scenarios.Scenario` the harness and
benchmarks already consume, with validity guarantees (every role
reachable, every class readable, a permit path per tenant) and full
seed-reproducibility.  See ``docs/scenariogen.md``.
"""

from repro.scenariogen.spec import (
    ArrivalSpec,
    ChurnSpec,
    FederationShape,
    ObligationSpec,
    PopulationSpec,
    RuleSpec,
    ScenarioSpec,
    ServiceClassSpec,
    TreeSpec,
    spec_from_json,
    spec_to_json,
)
from repro.scenariogen.generate import (
    build_stack_from_spec,
    default_attacks,
    generate_scenario,
    validity_report,
)
from repro.scenariogen.presets import PRESET_SPECS, preset_spec

__all__ = [
    "ArrivalSpec",
    "ChurnSpec",
    "FederationShape",
    "ObligationSpec",
    "PopulationSpec",
    "RuleSpec",
    "ScenarioSpec",
    "ServiceClassSpec",
    "TreeSpec",
    "PRESET_SPECS",
    "build_stack_from_spec",
    "default_attacks",
    "generate_scenario",
    "preset_spec",
    "spec_from_json",
    "spec_to_json",
    "validity_report",
]
