"""Compile :class:`ScenarioSpec`s into runnable scenarios.

``generate_scenario(spec, seed)`` is a pure function of its arguments:
all randomness (random-tree synthesis, attack parameterisation) flows
through ``SeededRng(seed, "scenariogen/<name>")``, so the same spec and
seed always compile to the bit-identical
:class:`~repro.workload.scenarios.Scenario` — the property the
determinism suite and the E18 benchmark pin.

Synthesised trees carry validity guarantees (enforced by a post-pass,
checked by :func:`validity_report`): every service class has at least
one reader, every role reads at least one class, and — because read
rules are never tenant-gated — every tenant has a permit path.
Transcribed presets deliberately keep their corpus quirks instead
(healthcare clerks really do get nothing clinical).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.analysis.properties import AttributeDomain
from repro.common.errors import ValidationError
from repro.common.rng import SeededRng
from repro.scenariogen.spec import (
    ChurnSpec,
    ObligationSpec,
    RuleSpec,
    ScenarioSpec,
    ServiceClassSpec,
)
from repro.workload.generator import WorkloadConfig
from repro.workload.scenarios import (
    Scenario,
    _action_is,
    _clearance_covers_sensitivity,
    _designator,
    _disjunction_target,
    _home_tenant,
)
from repro.xacml.attributes import DataType
from repro.xacml.context import Obligation
from repro.xacml.expressions import Apply, Literal
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, PolicySet, Rule, Target


def _office_hours() -> Apply:
    return Apply(
        "time-in-range",
        (
            Apply(
                "one-and-only",
                (_designator("environment", "time-of-day", DataType.DOUBLE),),
            ),
            Literal(9.0 * 3600),
            Literal(17.0 * 3600),
        ),
    )


_CONDITION_BUILDERS = {
    "home-tenant": _home_tenant,
    "clearance": _clearance_covers_sensitivity,
    "office-hours": _office_hours,
}


# -- rule and policy compilation ----------------------------------------------


def _compile_rule(rule: RuleSpec, class_name: str, position: int) -> Rule:
    target = Target.match_all()
    if rule.roles:
        if rule.role_match == "any":
            target = _disjunction_target("subject", "role", rule.roles)
        else:
            # Conjunction: one AnyOf per role, all of which must match —
            # satisfiable only by multi-valued role bags (the healthcare
            # corpus's ``clinicians-read`` shape).
            singles = tuple(
                Target.single("string-equal", role, "subject", "role")
                for role in rule.roles
            )
            target = Target(
                any_ofs=tuple(any_of for single in singles for any_of in single.any_ofs)
            )
    conditions = []
    if rule.actions:
        if len(rule.actions) == 1:
            conditions.append(_action_is(rule.actions[0]))
        else:
            conditions.append(Apply("or", tuple(_action_is(a) for a in rule.actions)))
    if rule.condition:
        conditions.append(_CONDITION_BUILDERS[rule.condition]())
    if not conditions:
        condition = None
    elif len(conditions) == 1:
        condition = conditions[0]
    else:
        condition = Apply("and", tuple(conditions))
    effect = Effect.PERMIT if rule.effect == "Permit" else Effect.DENY
    rule_id = rule.rule_id or f"{class_name}-rule-{position}"
    return Rule(rule_id, effect, target=target, condition=condition)


def _compile_class(cls: ServiceClassSpec) -> Policy:
    return Policy(
        policy_id=cls.policy_id or cls.name,
        rule_combining=cls.combining,
        target=Target.single("string-equal", cls.name, "resource", "type"),
        rules=[
            _compile_rule(rule, cls.name, position)
            for position, rule in enumerate(cls.rules)
        ],
        obligations=[
            Obligation(o.obligation_id, o.fulfill_on, dict(o.attributes))
            for o in cls.obligations
        ],
        description=f"{cls.name}: generated service-class policy.",
    )


def _build_children(prefix: tuple, members: list) -> list:
    """Nest class policies under group PolicySets, preserving order."""
    children = []
    seen: list[tuple] = []
    for cls, policy in members:
        if cls.group == prefix:
            children.append(policy)
            continue
        sub = cls.group[: len(prefix) + 1]
        if sub in seen:
            continue
        seen.append(sub)
        subset = [(c, p) for c, p in members if c.group[: len(sub)] == sub]
        children.append(
            PolicySet(
                policy_set_id="-".join(sub),
                policy_combining="permit-overrides",
                target=_disjunction_target(
                    "resource", "type", tuple(c.name for c, _ in subset)
                ),
                children=_build_children(sub, subset),
            )
        )
    return children


def _compile_document(spec: ScenarioSpec, classes: tuple) -> dict:
    members = [(cls, _compile_class(cls)) for cls in classes]
    root = PolicySet(
        policy_set_id=f"{spec.name}-federation",
        policy_combining="deny-unless-permit",
        children=_build_children((), members),
        description=f"{spec.name}: generated federation; default deny.",
    )
    return policy_to_dict(root)


# -- churn ---------------------------------------------------------------------


def _churn_classes(classes: tuple, churn: ChurnSpec, generation: int) -> tuple:
    """The service-class catalogue as of policy ``generation``."""
    out = []
    for cls in classes:
        if cls.name != churn.stamp_class:
            out.append(cls)
            continue
        rules = list(cls.rules)
        if churn.toggle_rule is not None and generation % 2 == 0:
            tail = rules[-1]
            bare_deny = (
                tail.effect == "Deny"
                and not tail.roles
                and not tail.actions
                and not tail.condition
            )
            rules.insert(len(rules) - 1 if bare_deny else len(rules), churn.toggle_rule)
        stamp = ObligationSpec(
            obligation_id=f"{churn.stamp_prefix}-{generation}",
            fulfill_on="Permit",
            attributes=(("policy-generation", str(generation)),),
        )
        out.append(replace(cls, rules=tuple(rules), obligations=(stamp,)))
    return tuple(out)


# -- random-tree synthesis -----------------------------------------------------


def _synthesise_classes(spec: ScenarioSpec, rng: SeededRng) -> tuple:
    tree = spec.tree
    roles = spec.roles
    classes = []
    reader_union: set[str] = set()
    for index in range(tree.classes):
        readers = tuple(rng.sample(roles, rng.randint(1, len(roles))))
        writers = tuple(rng.sample(roles, rng.randint(1, len(roles))))
        reader_union.update(readers)
        read_condition = "clearance" if rng.random() < tree.clearance_fraction else ""
        write_condition = "home-tenant" if rng.random() < tree.home_write_fraction else ""
        rules = [
            RuleSpec(roles=readers, actions=("read",), condition=read_condition),
            RuleSpec(roles=writers, actions=("write",), condition=write_condition),
        ]
        combining = "permit-overrides"
        if rng.random() < tree.deny_tail_fraction:
            rules.append(RuleSpec(effect="Deny"))
            combining = "first-applicable"
        obligations = ()
        if rng.random() < tree.audited_fraction:
            obligations = (
                ObligationSpec(
                    obligation_id=f"audit-{spec.name}-class-{index:02d}",
                    attributes=(("reason", "generated audited class"),),
                ),
            )
        group = tuple(
            f"{spec.name}-g{level}-{(index // tree.width**level) % tree.width}"
            for level in range(tree.depth - 1)
        )
        classes.append(
            ServiceClassSpec(
                name=f"{spec.name}-class-{index:02d}",
                rules=tuple(rules),
                combining=combining,
                obligations=obligations,
                group=group,
            )
        )
    # Validity post-pass: a role no class reads gets grafted onto a
    # deterministic class's read rule, so every role stays reachable.
    for role in roles:
        if role in reader_union:
            continue
        slot = rng.randint(0, len(classes) - 1)
        cls = classes[slot]
        read_rule = cls.rules[0]
        classes[slot] = replace(
            cls,
            rules=(replace(read_rule, roles=read_rule.roles + (role,)),)
            + cls.rules[1:],
        )
    return tuple(classes)


# -- top-level compilation -----------------------------------------------------


def resolve_classes(spec: ScenarioSpec, seed: int = 7) -> tuple:
    """The spec's explicit classes, or the tree recipe expanded under ``seed``."""
    if spec.classes:
        return spec.classes
    rng = SeededRng(seed, f"scenariogen/{spec.name}")
    return _synthesise_classes(spec, rng)


def _build_domain(spec: ScenarioSpec, classes: tuple) -> AttributeDomain:
    domain = AttributeDomain()
    domain.declare("subject", "role", list(spec.roles))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", [cls.name for cls in classes])
    tenants = list(spec.federation.tenants)
    domain.declare("resource", "owner-tenant", tenants)
    domain.declare("environment", "origin-tenant", tenants)
    conditions = {rule.condition for cls in classes for rule in cls.rules}
    if "clearance" in conditions:
        domain.declare("subject", "clearance", [1, 3, 5])
        domain.declare("resource", "sensitivity", [1, 3, 5])
    if "office-hours" in conditions:
        domain.declare(
            "environment", "time-of-day", [8.0 * 3600, 12.0 * 3600, 20.0 * 3600]
        )
    return domain


def _build_workload(spec: ScenarioSpec, classes: tuple) -> WorkloadConfig:
    population = spec.population
    arrival = spec.arrival
    catalogue = population.catalogue or tuple(cls.name for cls in classes)
    if population.role_weights:
        role_weights = population.role_weights
    else:
        role_weights = tuple(
            round(1.0 / len(spec.roles), 10) for _ in spec.roles
        )
    return WorkloadConfig(
        subjects=population.subjects,
        resources=population.resources,
        roles=spec.roles,
        role_weights=role_weights,
        resource_types=catalogue,
        actions=("read", "write"),
        action_weights=(
            population.read_fraction,
            round(1.0 - population.read_fraction, 10),
        ),
        zipf_skew=population.zipf_skew,
        arrival_rate=arrival.rate,
        payload_padding_bytes=population.payload_padding_bytes,
        arrival_period=arrival.period,
        arrival_trough=arrival.trough,
        arrival_harmonics=arrival.harmonics,
    )


def generate_scenario(spec: ScenarioSpec, seed: int = 7) -> Scenario:
    """Compile ``spec`` into a runnable, reproducible :class:`Scenario`."""
    classes = resolve_classes(spec, seed=seed)
    if spec.churn is not None:
        if not any(cls.name == spec.churn.stamp_class for cls in classes):
            raise ValidationError("churn stamp_class must name a resolved class")
        document = _compile_document(spec, _churn_classes(classes, spec.churn, 0))
        variants = tuple(
            _compile_document(spec, _churn_classes(classes, spec.churn, generation))
            for generation in range(1, spec.churn.generations)
        )
    else:
        document = _compile_document(spec, classes)
        variants = ()
    return Scenario(
        name=spec.name,
        policy_document=document,
        workload=_build_workload(spec, classes),
        domain=_build_domain(spec, classes),
        description=spec.description or f"Generated scenario {spec.name}.",
        policy_variants=variants,
    )


# -- validity ------------------------------------------------------------------


def _read_witness(
    rule: RuleSpec, cls: ServiceClassSpec, tenant: str
) -> Optional[dict]:
    """A request this read rule should Permit, or None if it can't."""
    if rule.effect != "Permit" or not rule.roles:
        return None
    if rule.actions and "read" not in rule.actions:
        return None
    roles = list(rule.roles) if rule.role_match == "all" else [rule.roles[0]]
    return {
        "subject": {"role": roles, "clearance": [5]},
        "action": {"action-id": ["read"]},
        "resource": {
            "type": [cls.name],
            "sensitivity": [1],
            "owner-tenant": [tenant],
        },
        "environment": {"origin-tenant": [tenant], "time-of-day": [12.0 * 3600]},
    }


def validity_report(spec: ScenarioSpec, seed: int = 7) -> dict:
    """Check the generator's validity guarantees against the compiled policy.

    For every role, service class and tenant the report evaluates a
    concrete witness request against the compiled document and records
    whether a permit path exists.  ``ok`` is the conjunction — guaranteed
    ``True`` for tree-synthesised specs; transcribed presets may
    legitimately fail it (a corpus quirk, not a generator bug).
    """
    from repro.analysis.semantics import evaluate_document

    classes = resolve_classes(spec, seed=seed)
    scenario = generate_scenario(spec, seed=seed)
    document = scenario.policy_document
    tenants = spec.federation.tenants
    roles_reachable = {role: False for role in spec.roles}
    classes_readable = {cls.name: False for cls in classes}
    tenant_permit = {tenant: False for tenant in tenants}
    for cls in classes:
        for rule in cls.rules:
            for tenant in tenants:
                witness = _read_witness(rule, cls, tenant)
                if witness is None:
                    continue
                if evaluate_document(document, witness) != "Permit":
                    continue
                classes_readable[cls.name] = True
                tenant_permit[tenant] = True
                for role in rule.roles:
                    roles_reachable[role] = True
    return {
        "roles_reachable": roles_reachable,
        "classes_readable": classes_readable,
        "tenant_permit_paths": tenant_permit,
        "ok": (
            all(roles_reachable.values())
            and all(classes_readable.values())
            and all(tenant_permit.values())
        ),
    }


# -- attack mix ----------------------------------------------------------------


def default_attacks(spec: ScenarioSpec, seed: int = 7) -> list:
    """Instantiate the spec's attack mix, deterministically parameterised.

    Attack names come from
    :data:`repro.threats.attacks.ATTACK_CATALOGUE`; target tenants,
    escalated roles and rogue documents are drawn from the scenariogen
    stream so the same spec + seed always builds the same campaign.  The
    two PRP-replica attacks require a replicated policy plane at build
    time, as ever.
    """
    from repro.threats import attacks as threat_attacks

    rng = SeededRng(seed, f"scenariogen/{spec.name}/attacks")
    tenants = spec.federation.tenants
    rogue = policy_to_dict(
        Policy(
            policy_id=f"{spec.name}-rogue",
            rule_combining="permit-overrides",
            rules=[Rule("allow-everything", Effect.PERMIT)],
        )
    )
    campaign = []
    for name in spec.attacks:
        if name not in threat_attacks.ATTACK_CATALOGUE:
            raise ValidationError(f"unknown attack {name!r}")
        tenant = rng.choice(tenants)
        if name == "request-tamper":
            campaign.append(
                threat_attacks.RequestTamperAttack(
                    tenant, escalated_value=rng.choice(spec.roles)
                )
            )
        elif name == "decision-tamper":
            campaign.append(threat_attacks.DecisionTamperAttack(tenant))
        elif name == "pdp-circumvention":
            campaign.append(threat_attacks.CircumventionAttack(tenant))
        elif name == "evaluation-tamper":
            campaign.append(threat_attacks.EvaluationTamperAttack())
        elif name == "policy-swap":
            campaign.append(threat_attacks.PolicySwapAttack(rogue))
        elif name == "probe-suppression":
            campaign.append(threat_attacks.ProbeSuppressionAttack(f"pep:{tenant}"))
        elif name == "log-tamper":
            campaign.append(threat_attacks.LogTamperAttack(tenant))
        elif name == "replay":
            campaign.append(threat_attacks.ReplayAttack(tenant))
        elif name == "stale-policy-replay":
            campaign.append(threat_attacks.StalePolicyReplayAttack())
        elif name == "tampered-prp-replica":
            campaign.append(threat_attacks.TamperedPrpReplicaAttack(rogue))
    return campaign


# -- deployment ----------------------------------------------------------------


def build_stack_from_spec(spec: ScenarioSpec, seed: int = 7, **build_kwargs):
    """Compile ``spec`` and deploy it as a :class:`MonitoredFederation`.

    The federation shape (cloud count, latency overrides) comes from the
    spec; everything else (``with_drams``, ``drams_config``, planes,
    telemetry, ...) passes through to ``MonitoredFederation.build``.
    """
    from repro.federation.federation import FederationConfig
    from repro.harness import MonitoredFederation

    scenario = generate_scenario(spec, seed=seed)
    shape = spec.federation
    fed_kwargs: dict = {
        "name": f"faas-{scenario.name}",
        "cloud_count": shape.clouds,
        "seed": seed,
    }
    if shape.wan_median_latency is not None:
        fed_kwargs["wan_median_latency"] = shape.wan_median_latency
    if shape.metro_median_latency is not None:
        fed_kwargs["metro_median_latency"] = shape.metro_median_latency
    return MonitoredFederation.build(
        scenario,
        clouds=shape.clouds,
        seed=seed,
        federation_config=FederationConfig(**fed_kwargs),
        **build_kwargs,
    )
