"""The scenario DSL: frozen dataclasses describing a federation.

A :class:`ScenarioSpec` is pure data — JSON-serialisable, hashable,
hypothesis-generatable — and everything stochastic about realising it is
deferred to :func:`repro.scenariogen.generate.generate_scenario`, which
derives all randomness from ``SeededRng(seed, "scenariogen/<name>")``.

Two ways to describe the policy tree:

- **explicit**: a tuple of :class:`ServiceClassSpec`, one per resource
  type, each with its :class:`RuleSpec` list — how the ten presets in
  :mod:`repro.scenariogen.presets` transcribe the hand-built corpus;
- **synthesised**: a :class:`TreeSpec` recipe (class count, nesting
  depth/width, condition mix) expanded into explicit classes by the
  generator — how the property suite samples random federations.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.common.errors import ValidationError

#: Named rule conditions the compiler knows how to build.  ``""`` means no
#: extra condition beyond the action gate.
RULE_CONDITIONS = ("", "home-tenant", "clearance", "office-hours")


@dataclass(frozen=True)
class RuleSpec:
    """One rule of a service-class policy.

    ``roles`` gates the rule's target; ``role_match="any"`` is the usual
    disjunction (subject holds any listed role), ``"all"`` the rarely
    wanted conjunction (the healthcare corpus's ``clinicians-read`` rule
    is one, and matches nobody with single-valued roles — the DSL keeps
    it expressible so the preset reproduces the hand-built behaviour).
    ``actions`` restricts the rule to the listed actions (empty = any);
    ``condition`` names one extra predicate from :data:`RULE_CONDITIONS`.
    """

    effect: str = "Permit"
    roles: tuple[str, ...] = ()
    actions: tuple[str, ...] = ()
    condition: str = ""
    role_match: str = "any"
    rule_id: str = ""

    def __post_init__(self) -> None:
        if self.effect not in ("Permit", "Deny"):
            raise ValidationError(f"effect must be Permit or Deny, got {self.effect!r}")
        if self.condition not in RULE_CONDITIONS:
            raise ValidationError(f"unknown rule condition {self.condition!r}")
        if self.role_match not in ("any", "all"):
            raise ValidationError(f"role_match must be any or all, got {self.role_match!r}")
        if self.role_match == "all" and not self.roles:
            raise ValidationError("role_match='all' needs at least one role")


@dataclass(frozen=True)
class ObligationSpec:
    """An obligation attached to a service-class policy."""

    obligation_id: str
    fulfill_on: str = "Permit"
    attributes: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.obligation_id:
            raise ValidationError("obligation_id must be non-empty")
        if self.fulfill_on not in ("Permit", "Deny"):
            raise ValidationError("fulfill_on must be Permit or Deny")


@dataclass(frozen=True)
class ServiceClassSpec:
    """One resource type and the policy governing it.

    ``group`` is a nested PolicySet path: classes sharing a prefix are
    compiled under the same intermediate PolicySet (the delegation
    preset's two clouds), giving the tree depth; the empty path hangs
    the class policy directly off the root.
    """

    name: str
    rules: tuple[RuleSpec, ...]
    combining: str = "permit-overrides"
    obligations: tuple[ObligationSpec, ...] = ()
    group: tuple[str, ...] = ()
    policy_id: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("service class name must be non-empty")
        if not self.rules:
            raise ValidationError(f"service class {self.name!r} needs rules")


@dataclass(frozen=True)
class TreeSpec:
    """Recipe for synthesising a random service-class catalogue."""

    classes: int = 8
    depth: int = 1
    width: int = 4
    home_write_fraction: float = 0.5
    audited_fraction: float = 0.25
    clearance_fraction: float = 0.0
    deny_tail_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.classes < 1:
            raise ValidationError("tree needs at least one class")
        if self.depth < 1 or self.width < 1:
            raise ValidationError("tree depth and width must be >= 1")
        for name in ("home_write_fraction", "audited_fraction",
                     "clearance_fraction", "deny_tail_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class FederationShape:
    """Topology knobs forwarded to the federation builder."""

    clouds: int = 2
    wan_median_latency: Optional[float] = None
    metro_median_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.clouds < 1:
            raise ValidationError("a federation needs at least one cloud")

    @property
    def tenants(self) -> tuple[str, ...]:
        """Member tenant names, matching the federation builder's."""
        return tuple(f"tenant-{i + 1}" for i in range(self.clouds))


@dataclass(frozen=True)
class PopulationSpec:
    """Size and skew of the synthetic population."""

    subjects: int = 100
    resources: int = 400
    role_weights: tuple[float, ...] = ()
    read_fraction: float = 0.8
    zipf_skew: float = 1.1
    payload_padding_bytes: int = 0
    #: Resource-type assignment order; empty = class declaration order.
    #: Repeating a class front-loads it (the elastic-scale flash-crowd
    #: magnet); every entry must name a declared class.
    catalogue: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.subjects < 1 or self.resources < 1:
            raise ValidationError("population needs subjects and resources")
        if not 0.0 < self.read_fraction <= 1.0:
            raise ValidationError("read_fraction must be in (0, 1]")
        if any(w <= 0 for w in self.role_weights):
            raise ValidationError("role_weights must be positive")


@dataclass(frozen=True)
class ArrivalSpec:
    """The arrival process: Poisson base with optional diurnal mixes."""

    rate: float = 25.0
    period: float = 0.0
    trough: float = 0.1
    harmonics: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValidationError("arrival rate must be positive")
        if self.period < 0:
            raise ValidationError("arrival period must be >= 0")
        if not 0.0 < self.trough <= 1.0:
            raise ValidationError("arrival trough must be in (0, 1]")
        for harmonic in self.harmonics:
            if len(harmonic) != 2 or harmonic[0] <= 0 or not 0.0 < harmonic[1] <= 1.0:
                raise ValidationError("harmonics entries are (period>0, trough in (0,1])")


@dataclass(frozen=True)
class ChurnSpec:
    """Mid-traffic policy rotation (generalises the policy-churn corpus).

    Every generation re-stamps ``stamp_class``'s obligation with
    ``<stamp_prefix>-<generation>`` (distinct fingerprints) and includes
    ``toggle_rule`` only on even generations (successive versions
    disagree on real requests) — inserted ahead of a trailing bare-Deny
    rule when the class has one.
    """

    generations: int = 4
    stamp_class: str = ""
    toggle_rule: Optional[RuleSpec] = None
    stamp_prefix: str = "retention-rev"

    def __post_init__(self) -> None:
        if self.generations < 2:
            raise ValidationError("churn needs at least two generations")
        if not self.stamp_class:
            raise ValidationError("churn needs a stamp_class")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative federation scenario."""

    name: str
    roles: tuple[str, ...]
    classes: tuple[ServiceClassSpec, ...] = ()
    tree: Optional[TreeSpec] = None
    federation: FederationShape = field(default_factory=FederationShape)
    population: PopulationSpec = field(default_factory=PopulationSpec)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    churn: Optional[ChurnSpec] = None
    attacks: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario name must be non-empty")
        if not self.roles:
            raise ValidationError("a scenario needs roles")
        if len(set(self.roles)) != len(self.roles):
            raise ValidationError("roles must be unique")
        if not self.classes and self.tree is None:
            raise ValidationError("a scenario needs classes or a tree recipe")
        if self.classes and self.tree is not None:
            raise ValidationError("classes and tree are mutually exclusive")
        if self.population.role_weights and (
                len(self.population.role_weights) != len(self.roles)):
            raise ValidationError("role_weights must align with roles")
        declared = {cls.name for cls in self.classes}
        if len(declared) != len(self.classes):
            raise ValidationError("service class names must be unique")
        for entry in self.population.catalogue:
            if self.classes and entry not in declared:
                raise ValidationError(f"catalogue entry {entry!r} is not a class")
        if self.churn is not None and self.classes and (
                self.churn.stamp_class not in declared):
            raise ValidationError("churn stamp_class must name a class")


# -- JSON round trip ----------------------------------------------------------


def spec_to_json(spec: ScenarioSpec) -> str:
    """Serialise a spec to a stable JSON string."""
    return json.dumps(asdict(spec), indent=2, sort_keys=True)


def _tuples(items, converter=None) -> tuple:
    converter = converter or (lambda item: item)
    return tuple(converter(item) for item in items or ())


def _rule_from(data: dict) -> RuleSpec:
    return RuleSpec(
        effect=data.get("effect", "Permit"),
        roles=_tuples(data.get("roles")),
        actions=_tuples(data.get("actions")),
        condition=data.get("condition", ""),
        role_match=data.get("role_match", "any"),
        rule_id=data.get("rule_id", ""),
    )


def _class_from(data: dict) -> ServiceClassSpec:
    return ServiceClassSpec(
        name=data["name"],
        rules=_tuples(data["rules"], _rule_from),
        combining=data.get("combining", "permit-overrides"),
        obligations=_tuples(
            data.get("obligations"),
            lambda o: ObligationSpec(
                obligation_id=o["obligation_id"],
                fulfill_on=o.get("fulfill_on", "Permit"),
                attributes=_tuples(o.get("attributes"), tuple),
            ),
        ),
        group=_tuples(data.get("group")),
        policy_id=data.get("policy_id", ""),
    )


def spec_from_json(text: str) -> ScenarioSpec:
    """Reconstruct a spec from :func:`spec_to_json` output."""
    data = json.loads(text)
    tree = data.get("tree")
    churn = data.get("churn")
    population = data.get("population", {})
    arrival = data.get("arrival", {})
    federation = data.get("federation", {})
    return ScenarioSpec(
        name=data["name"],
        roles=_tuples(data["roles"]),
        classes=_tuples(data.get("classes"), _class_from),
        tree=TreeSpec(**tree) if tree else None,
        federation=FederationShape(**federation),
        population=PopulationSpec(
            subjects=population.get("subjects", 100),
            resources=population.get("resources", 400),
            role_weights=_tuples(population.get("role_weights")),
            read_fraction=population.get("read_fraction", 0.8),
            zipf_skew=population.get("zipf_skew", 1.1),
            payload_padding_bytes=population.get("payload_padding_bytes", 0),
            catalogue=_tuples(population.get("catalogue")),
        ),
        arrival=ArrivalSpec(
            rate=arrival.get("rate", 25.0),
            period=arrival.get("period", 0.0),
            trough=arrival.get("trough", 0.1),
            harmonics=_tuples(arrival.get("harmonics"), tuple),
        ),
        churn=ChurnSpec(
            generations=churn["generations"],
            stamp_class=churn["stamp_class"],
            toggle_rule=_rule_from(churn["toggle_rule"]) if churn.get("toggle_rule") else None,
            stamp_prefix=churn.get("stamp_prefix", "retention-rev"),
        ) if churn else None,
        attacks=_tuples(data.get("attacks")),
        description=data.get("description", ""),
    )
