"""Seeded randomness.

All stochastic behaviour in the simulator (network latency, mining times,
workload generation, adversary scheduling) flows through :class:`SeededRng`
instances forked from a single root seed, so any experiment is exactly
reproducible from its configuration.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_left
from typing import Sequence, TypeVar

T = TypeVar("T")

#: Cumulative Zipf mass functions, memoised per ``(n, skew)``.  The weights
#: depend only on the catalogue size and skew — not on the stream — so every
#: draw over the same catalogue shares one prefix-sum table and resolves in
#: O(log n) instead of rebuilding an O(n) weight list per request.
_ZIPF_CUMULATIVE: dict[tuple[int, float], list[float]] = {}


def _zipf_cumulative(n: int, skew: float) -> list[float]:
    key = (n, skew)
    table = _ZIPF_CUMULATIVE.get(key)
    if table is None:
        table = []
        acc = 0.0
        for i in range(n):
            acc += 1.0 / (i + 1) ** skew
            table.append(acc)
        _ZIPF_CUMULATIVE[key] = table
    return table


class SeededRng:
    """A named, forkable random stream.

    Forking by *name* (instead of drawing child seeds sequentially) means
    adding a new consumer of randomness does not perturb the streams of
    existing consumers — experiments stay comparable across code changes.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        material = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        self._random = random.Random(int.from_bytes(material[:8], "big"))

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent stream identified by ``name``."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # -- distribution helpers -------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._random.sample(list(items), k)

    def randbytes(self, n: int) -> bytes:
        return self._random.randbytes(n)

    def zipf_index(self, n: int, skew: float = 1.1) -> int:
        """Draw an index in ``[0, n)`` with Zipf-like popularity skew.

        Implemented by inverse-CDF over the truncated Zipf mass function;
        avoids a numpy dependency in the core library.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        # The cumulative table reproduces the historical linear scan's
        # float arithmetic exactly (same left-to-right accumulation), so
        # the bisect draws the bit-identical index for every seed.
        cumulative = _zipf_cumulative(n, skew)
        target = self._random.random() * cumulative[-1]
        return min(bisect_left(cumulative, target), n - 1)
