"""Monitoring-plane fast-path switches.

The monitoring pipeline (log transactions → PoW chain → contract →
Analyser re-check) carries several decision-preserving optimisation
layers.  Each layer is individually toggleable so the E10 benchmark can
measure its contribution and the differential tests can pin every toggle
combination to bit-identical chain hashes, alerts and decisions:

- ``encoding_cache`` — :class:`~repro.blockchain.transaction.Transaction`,
  :class:`~repro.blockchain.block.BlockHeader` and
  :class:`~repro.drams.logs.LogEntry` freeze their canonical encodings on
  first use and reuse them for signing payloads, content hashes, sizes,
  Merkle leaves and gossip; mempools reuse admission-time sizes.
- ``verify_cache`` — a :class:`~repro.blockchain.chain.Blockchain` checks
  each transaction signature and each block's Merkle root exactly once
  per node, and PoW grinding hashes a precomputed header prefix plus the
  nonce instead of re-rendering the whole header per attempt.
- ``contract_inplace`` — the contract engine executes invocations of
  contracts that declare ``checked_invoke`` directly on live state
  instead of deep-copying the full replicated state per transaction.
- ``compiled_oracle`` — the Analyser's
  :class:`~repro.analysis.semantics.DecisionOracle` compiles each policy
  version once through the target index instead of interpreting the
  document tree per checked decision.

All layers default to on; ``configured()`` flips them temporarily (the
benchmarks' toggle harness).  The flags object is intentionally a single
module-level instance so the hot paths pay one attribute load, not a
lookup through configuration plumbing.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class FastPathFlags:
    """Which monitoring-plane fast-path layers are active."""

    encoding_cache: bool = True
    verify_cache: bool = True
    contract_inplace: bool = True
    compiled_oracle: bool = True

    def as_dict(self) -> dict[str, bool]:
        return {
            "encoding_cache": self.encoding_cache,
            "verify_cache": self.verify_cache,
            "contract_inplace": self.contract_inplace,
            "compiled_oracle": self.compiled_oracle,
        }


#: The process-wide flag instance every fast-path call site reads.
FLAGS = FastPathFlags()

_FIELDS = tuple(FLAGS.as_dict())


def set_flags(**overrides: bool) -> None:
    """Set fast-path layers in place (unknown names are rejected)."""
    for name, value in overrides.items():
        if name not in _FIELDS:
            raise ValueError(f"unknown fast-path flag: {name!r}")
        setattr(FLAGS, name, bool(value))


@contextmanager
def configured(**overrides: bool) -> Iterator[FastPathFlags]:
    """Temporarily override fast-path layers (benchmarks, differential tests).

    ``configured(encoding_cache=False)`` disables one layer; pass
    ``all_off=True`` convenience by listing every flag explicitly instead —
    the point of this context manager is that the override set is visible
    at the call site.
    """
    previous = FLAGS.as_dict()
    set_flags(**overrides)
    try:
        yield FLAGS
    finally:
        set_flags(**previous)
