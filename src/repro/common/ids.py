"""Identifier helpers.

Identifiers must be *deterministic when derived from content* (correlation
ids, hash-based ids) and *unique when minted* (entity ids).  Minted ids use a
process-local counter plus an optional namespace rather than ``uuid4`` so
that simulation runs are reproducible under a fixed seed.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from typing import Any

from repro.common.serialization import canonical_bytes

_COUNTER = itertools.count(1)
_COUNTER_LOCK = threading.Lock()


def new_id(prefix: str = "id") -> str:
    """Mint a fresh process-unique identifier like ``"pep-17"``.

    Sequential ids keep traces and test failures readable, and make runs
    reproducible (unlike UUIDs) when the rest of the system is seeded.
    """
    with _COUNTER_LOCK:
        value = next(_COUNTER)
    return f"{prefix}-{value}"


def reset_id_counter(start: int = 1) -> None:
    """Rewind the minting counter (benchmark/test support only).

    Minted ids (transaction ids in particular) are hashed into the chain,
    so two runs can only produce bit-identical chains if they mint from
    the same counter position.  The differential benchmarks reset between
    arms; production code must never call this.
    """
    global _COUNTER
    with _COUNTER_LOCK:
        _COUNTER = itertools.count(start)


def short_hash(value: Any, length: int = 12) -> str:
    """Deterministic short hex digest of any canonically-serializable value."""
    digest = hashlib.sha256(canonical_bytes(value)).hexdigest()
    return digest[:length]


def correlation_id(value: Any) -> str:
    """Full-width deterministic id binding all log entries of one request.

    Every probe that observes (any leg of) the same access request derives
    the same correlation id, which is what lets the monitor contract join
    log entries produced in different tenants.
    """
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
