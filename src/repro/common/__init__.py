"""Shared substrate: canonical serialization, identifiers, errors, RNG.

Every other subpackage builds on these primitives.  Canonical JSON
serialization in particular underpins all hashing in the system: two
components that serialize the same logical value must obtain byte-identical
encodings, otherwise hash commitments stored on the blockchain would never
match across tenants.
"""

from repro.common.errors import (
    ReproError,
    SerializationError,
    ValidationError,
    ConfigError,
)
from repro.common.serialization import canonical_json, canonical_bytes, from_json
from repro.common.ids import new_id, short_hash, correlation_id
from repro.common.rng import SeededRng

__all__ = [
    "ReproError",
    "SerializationError",
    "ValidationError",
    "ConfigError",
    "canonical_json",
    "canonical_bytes",
    "from_json",
    "new_id",
    "short_hash",
    "correlation_id",
    "SeededRng",
]
