"""Canonical serialization used for hashing and on-chain storage.

The whole monitoring pipeline relies on *hash commitments*: a probe in one
tenant hashes the payload it saw, and the smart contract compares that hash
with the one produced in another tenant.  For that to work the encoding must
be a pure function of the logical value:

- dictionary keys are emitted in sorted order,
- no insignificant whitespace,
- only JSON-representable primitives are accepted (no floats with NaN/inf,
  no arbitrary objects) so that equality of encodings equals logical
  equality.

Dataclasses and tuples are normalised (to dicts and lists respectively)
before encoding, which keeps call sites pleasant without compromising
canonicity.
"""

from __future__ import annotations

import dataclasses
import json
import math
from enum import Enum
from typing import Any

from repro.common.errors import SerializationError

_JSON_PRIMITIVES = (str, int, bool, type(None))


def _normalise(value: Any) -> Any:
    """Reduce ``value`` to plain JSON-compatible data, or raise."""
    # Exact-type fast path for the overwhelmingly common cases (the
    # monitoring pipeline encodes mostly flat dicts of str/int/float);
    # subclasses (enums, dataclasses, bools-as-ints) take the full chain
    # below, whose semantics this short-circuit preserves bit for bit.
    kind = type(value)
    if kind is str or kind is int or kind is bool or value is None:
        return value
    if kind is dict:
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"dict key must be str, got {type(key).__name__}")
            out[key] = _normalise(item)
        return out
    if kind is list:
        return [_normalise(item) for item in value]
    if isinstance(value, bool) or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise SerializationError(f"non-finite float not serializable: {value!r}")
        return value
    if isinstance(value, Enum):
        return _normalise(value.value)
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": value.hex()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _normalise(dataclasses.asdict(value))
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"dict key must be str, got {type(key).__name__}")
            out[key] = _normalise(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_normalise(item) for item in value]
    if isinstance(value, (set, frozenset)):
        normalised = [_normalise(item) for item in value]
        try:
            return sorted(normalised, key=lambda x: json.dumps(x, sort_keys=True))
        except TypeError as exc:  # pragma: no cover - defensive
            raise SerializationError(f"unsortable set contents: {value!r}") from exc
    raise SerializationError(f"value of type {type(value).__name__} is not serializable")


def canonical_json(value: Any) -> str:
    """Return the canonical JSON text of ``value``.

    The encoding is deterministic: equal logical values always produce
    byte-identical text, independent of dict insertion order or whether the
    value arrived as a dataclass, tuple or plain dict.
    """
    return json.dumps(_normalise(value), sort_keys=True, separators=(",", ":"))


def canonical_bytes(value: Any) -> bytes:
    """Return the canonical UTF-8 encoding of ``value`` (for hashing)."""
    return canonical_json(value).encode("utf-8")


def from_json(text: str) -> Any:
    """Parse JSON text produced by :func:`canonical_json`.

    ``bytes`` values round-trip through the ``{"__bytes__": hex}`` envelope.
    """
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return _revive(raw)


def _revive(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {"__bytes__"} and isinstance(value["__bytes__"], str):
            try:
                return bytes.fromhex(value["__bytes__"])
            except ValueError as exc:
                raise SerializationError("malformed __bytes__ envelope") from exc
        return {key: _revive(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_revive(item) for item in value]
    return value
