"""Exception hierarchy for the whole library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base type at an API boundary.  Subsystems refine it further (e.g.
``repro.blockchain`` raises :class:`ChainValidationError`); those subsystem
errors also live under this root.
"""


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class SerializationError(ReproError):
    """A value could not be canonically serialized or deserialized."""


class ValidationError(ReproError):
    """A structural or semantic validation check failed."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed or inconsistent."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, MAC mismatch, ...)."""


class NetworkError(ReproError):
    """A simulated-network operation was impossible (unknown host, ...)."""


class PolicyError(ReproError):
    """An access control policy is malformed or cannot be evaluated."""


class MonitoringError(ReproError):
    """A DRAMS monitoring component detected an internal inconsistency."""
