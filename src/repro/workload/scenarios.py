"""Concrete federation scenarios with their policies.

Two scenarios modelled on the SUNFISH project's public-sector use cases:

- :func:`healthcare_scenario` — cross-border healthcare: hospitals in
  different clouds share medical records; doctors read/write records of
  their own tenant and read (not write) federated ones; nurses read
  lab results; clerks get nothing clinical.
- :func:`ministry_scenario` — ministry data sharing: finance and interior
  ministries share tax documents; officers read documents up to their
  clearance; auditors read everything during office hours; writes require
  the owning tenant.

Each scenario packages the policy (object + document form), a workload
configuration matched to its population, and the attribute domains used by
the formal property checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.properties import AttributeDomain
from repro.xacml.attributes import DataType
from repro.xacml.context import Obligation
from repro.xacml.expressions import Apply, AttributeDesignator, Literal
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import Effect, Policy, PolicySet, Rule, Target
from repro.workload.generator import WorkloadConfig


@dataclass
class Scenario:
    """A ready-to-run federation scenario."""

    name: str
    policy_document: dict
    workload: WorkloadConfig
    domain: AttributeDomain
    description: str = ""


def _designator(category: str, attribute_id: str,
                data_type: str = DataType.STRING) -> AttributeDesignator:
    return AttributeDesignator(category, attribute_id, data_type)


def healthcare_scenario() -> Scenario:
    """Cross-border healthcare data sharing."""
    doctor = Target.single("string-equal", "doctor", "subject", "role")
    nurse = Target.single("string-equal", "nurse", "subject", "role")

    records_policy = Policy(
        policy_id="medical-records",
        # First-applicable: the home-write permit must take precedence
        # over the blanket clinical-write denial below it.
        rule_combining="first-applicable",
        target=Target.single("string-equal", "medical-record", "resource", "type"),
        rules=[
            Rule("doctor-read", Effect.PERMIT,
                 target=doctor,
                 condition=Apply("any-of", (
                     Literal("string-equal"), Literal("read"),
                     _designator("action", "action-id")))),
            Rule("doctor-write-own-tenant", Effect.PERMIT,
                 target=doctor,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("write"),
                                      _designator("action", "action-id"))),
                     Apply("any-of-any", (Literal("string-equal"),
                                          _designator("environment", "origin-tenant"),
                                          _designator("resource", "owner-tenant"))),
                 ))),
            Rule("deny-clinical-writes", Effect.DENY,
                 condition=Apply("any-of", (
                     Literal("string-equal"), Literal("write"),
                     _designator("action", "action-id")))),
        ],
        obligations=[Obligation("log-clinical-access", "Permit",
                                {"reason": "GDPR art. 9 processing record"})],
        description="Doctors read federation-wide, write only at home.",
    )

    labs_policy = Policy(
        policy_id="lab-results",
        rule_combining="permit-overrides",
        target=Target.single("string-equal", "lab-result", "resource", "type"),
        rules=[
            Rule("clinicians-read", Effect.PERMIT,
                 target=Target(any_ofs=(
                     doctor.any_ofs + nurse.any_ofs)),
                 condition=Apply("any-of", (
                     Literal("string-equal"), Literal("read"),
                     _designator("action", "action-id")))),
        ],
        description="Doctors and nurses read lab results.",
    )

    root = PolicySet(
        policy_set_id="healthcare-federation",
        policy_combining="deny-unless-permit",
        children=[records_policy, labs_policy],
        description="Top-level: everything not explicitly permitted is denied.",
    )

    domain = AttributeDomain()
    domain.declare("subject", "role", ["doctor", "nurse", "clerk"])
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", ["medical-record", "lab-result"])
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=60,
        resources=300,
        roles=("doctor", "nurse", "clerk"),
        role_weights=(0.35, 0.35, 0.30),
        resource_types=("medical-record", "lab-result"),
        actions=("read", "write"),
        action_weights=(0.85, 0.15),
    )
    return Scenario(
        name="healthcare",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="Hospitals in two clouds share records and lab results.",
    )


def ministry_scenario() -> Scenario:
    """Ministry-to-ministry document sharing."""
    officer = Target.single("string-equal", "officer", "subject", "role")
    auditor = Target.single("string-equal", "auditor", "subject", "role")

    documents_policy = Policy(
        policy_id="tax-documents",
        rule_combining="first-applicable",
        target=Target.single("string-equal", "tax-document", "resource", "type"),
        rules=[
            Rule("officer-clearance-read", Effect.PERMIT,
                 target=officer,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("read"),
                                      _designator("action", "action-id"))),
                     Apply("integer-greater-than-or-equal", (
                         Apply("one-and-only", (
                             _designator("subject", "clearance", DataType.INTEGER),)),
                         Apply("one-and-only", (
                             _designator("resource", "sensitivity", DataType.INTEGER),)),
                     )),
                 ))),
            Rule("auditor-office-hours", Effect.PERMIT,
                 target=auditor,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("read"),
                                      _designator("action", "action-id"))),
                     Apply("time-in-range", (
                         Apply("one-and-only", (
                             _designator("environment", "time-of-day", DataType.DOUBLE),)),
                         Literal(9.0 * 3600), Literal(17.0 * 3600))),
                 ))),
            Rule("owner-tenant-write", Effect.PERMIT,
                 target=officer,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("write"),
                                      _designator("action", "action-id"))),
                     Apply("any-of-any", (Literal("string-equal"),
                                          _designator("environment", "origin-tenant"),
                                          _designator("resource", "owner-tenant"))),
                 ))),
            Rule("default-deny", Effect.DENY),
        ],
        obligations=[Obligation("notify-owner", "Permit",
                                {"channel": "audit-queue"})],
        description="Clearance-gated reads, office-hour audits, home writes.",
    )

    root = PolicySet(
        policy_set_id="ministry-federation",
        policy_combining="deny-unless-permit",
        children=[documents_policy],
        description="Single-document-class ministry sharing.",
    )

    domain = AttributeDomain()
    domain.declare("subject", "role", ["officer", "auditor", "intern"])
    domain.declare("subject", "clearance", [1, 3, 5])
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", ["tax-document"])
    domain.declare("resource", "sensitivity", [1, 3, 5])
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "time-of-day", [8.0 * 3600, 12.0 * 3600, 20.0 * 3600])

    workload = WorkloadConfig(
        subjects=40,
        resources=150,
        roles=("officer", "auditor", "intern"),
        role_weights=(0.5, 0.2, 0.3),
        resource_types=("tax-document",),
        actions=("read", "write"),
        action_weights=(0.7, 0.3),
    )
    return Scenario(
        name="ministry",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="Finance and interior ministries share tax documents.",
    )
