"""Concrete federation scenarios with their policies.

Two scenarios modelled on the SUNFISH project's public-sector use cases:

- :func:`healthcare_scenario` — cross-border healthcare: hospitals in
  different clouds share medical records; doctors read/write records of
  their own tenant and read (not write) federated ones; nurses read
  lab results; clerks get nothing clinical.
- :func:`ministry_scenario` — ministry data sharing: finance and interior
  ministries share tax documents; officers read documents up to their
  clearance; auditors read everything during office hours; writes require
  the owning tenant.

Two further scenarios stress the PDP fast path from opposite ends:

- :func:`iot_edge_scenario` — a high-fan-out IoT/edge federation: one
  small policy per device-data class, so the policy tree is wide and flat
  and any one request matches a single branch (the target index's best
  case, the slow path's worst);
- :func:`delegation_scenario` — cross-cloud delegation with deep PolicySet
  nesting: cloud → domain → policy, clearance-attenuated delegate access,
  so skipping must prove NoMatch through several target layers.

A fifth scenario stresses the *monitoring plane* instead of the PDP:

- :func:`audit_burst_scenario` — a tenant's service accounts flood the
  chain with audit-entry appends at a high arrival rate while normal
  operational traffic continues, driving block templates into the
  mempool/block-assembly limits (``max_block_txs``/``max_block_bytes``).

A sixth scenario stresses the *decision plane* (E11):

- :func:`federation_scale_scenario` — a whole-of-government service
  federation whose request arrival rate exceeds a single evaluator's
  service rate, so one PDP saturates and throughput only scales by
  sharding the decision plane (``ShardedPdpPlane``).

A seventh scenario stresses the *policy distribution plane* (E12):

- :func:`policy_churn_scenario` — a case-handling federation whose policy
  is re-published mid-traffic: contractor access toggles and the retention
  obligation is re-stamped every generation, so successive versions have
  different fingerprints *and* different decisions.  The scenario packages
  the follow-up generations as ``policy_variants``; the harness publishes
  them while requests are in flight, which makes PRP replica skew (and the
  policy-churn vs policy-violation alert taxonomy) observable.

An eighth scenario stresses the *elastic* decision plane (E13):

- :func:`elastic_scale_scenario` — a civil-protection federation hit by a
  flash crowd: a strongly Zipf-skewed population hammers a handful of hot
  service classes (the public alert feed above all) at an arrival rate no
  fixed shard pool absorbs evenly.  Hot cache keys concentrate on
  whichever shards the hash ring assigns them, so the scenario is the
  natural substrate for queue-aware routing and for mid-run
  ``add_shard``/``drain_shard`` membership changes.

A ninth scenario exercises the *self-driving* decision plane (E14):

- :func:`diurnal_scenario` — municipal e-services under a sinusoidal
  daily arrival curve (peak → trough → peak).  Where ``elastic-scale``
  rewards growing the pool, this one rewards *shrinking* it: a
  controller that drains shards into the trough serves the same
  decisions with fewer shard-seconds.

A tenth scenario is the substrate of the *fault-injection plane* (E15):

- :func:`partition_storm_scenario` — an emergency-management federation
  whose traffic must keep resolving while the network is actively
  hostile: steady, read-heavy arrivals (the continuity-of-operations
  baseline), two tenants with home-write gating (so failover across the
  federation boundary is observable), and audit obligations on the
  incident log (so every decision leaves a monitored trace that fault
  windows must not corrupt).  Designed to be run under a
  ``repro.faults.FaultPlan`` — partitions, crash/restart, link loss —
  with DRAMS attached and zero unattributed alerts as the bar.

Each scenario packages the policy (object + document form), a workload
configuration matched to its population, and the attribute domains used by
the formal property checks.  :func:`all_scenarios` returns one instance of
every scenario for sweep-style tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.properties import AttributeDomain
from repro.xacml.attributes import DataType
from repro.xacml.context import Obligation
from repro.xacml.expressions import Apply, AttributeDesignator, Literal
from repro.xacml.parser import policy_to_dict
from repro.xacml.policy import (
    AllOf,
    AnyOf,
    Effect,
    Match,
    Policy,
    PolicySet,
    Rule,
    Target,
)
from repro.workload.generator import WorkloadConfig


@dataclass
class Scenario:
    """A ready-to-run federation scenario."""

    name: str
    policy_document: dict
    workload: WorkloadConfig
    domain: AttributeDomain
    description: str = ""
    #: Follow-up policy generations to publish mid-traffic (churn-style
    #: scenarios); empty for scenarios whose policy never changes.
    policy_variants: tuple = ()


def _designator(category: str, attribute_id: str,
                data_type: str = DataType.STRING) -> AttributeDesignator:
    return AttributeDesignator(category, attribute_id, data_type)


def _disjunction_target(category: str, attribute_id: str,
                        values: tuple[str, ...]) -> Target:
    """Target matching when the attribute equals *any* of ``values``."""
    designator = _designator(category, attribute_id)
    return Target(any_ofs=(AnyOf(all_ofs=tuple(
        AllOf(matches=(Match("string-equal", value, designator),))
        for value in values)),))


def _action_is(action: str) -> Apply:
    return Apply("any-of", (
        Literal("string-equal"), Literal(action),
        _designator("action", "action-id")))


def _home_tenant() -> Apply:
    """The request originates from the tenant owning the resource."""
    return Apply("any-of-any", (
        Literal("string-equal"),
        _designator("environment", "origin-tenant"),
        _designator("resource", "owner-tenant")))


def _clearance_covers_sensitivity() -> Apply:
    return Apply("integer-greater-than-or-equal", (
        Apply("one-and-only", (
            _designator("subject", "clearance", DataType.INTEGER),)),
        Apply("one-and-only", (
            _designator("resource", "sensitivity", DataType.INTEGER),)),
    ))


def healthcare_scenario() -> Scenario:
    """Cross-border healthcare data sharing."""
    doctor = Target.single("string-equal", "doctor", "subject", "role")
    nurse = Target.single("string-equal", "nurse", "subject", "role")

    records_policy = Policy(
        policy_id="medical-records",
        # First-applicable: the home-write permit must take precedence
        # over the blanket clinical-write denial below it.
        rule_combining="first-applicable",
        target=Target.single("string-equal", "medical-record", "resource", "type"),
        rules=[
            Rule("doctor-read", Effect.PERMIT,
                 target=doctor,
                 condition=Apply("any-of", (
                     Literal("string-equal"), Literal("read"),
                     _designator("action", "action-id")))),
            Rule("doctor-write-own-tenant", Effect.PERMIT,
                 target=doctor,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("write"),
                                      _designator("action", "action-id"))),
                     Apply("any-of-any", (Literal("string-equal"),
                                          _designator("environment", "origin-tenant"),
                                          _designator("resource", "owner-tenant"))),
                 ))),
            Rule("deny-clinical-writes", Effect.DENY,
                 condition=Apply("any-of", (
                     Literal("string-equal"), Literal("write"),
                     _designator("action", "action-id")))),
        ],
        obligations=[Obligation("log-clinical-access", "Permit",
                                {"reason": "GDPR art. 9 processing record"})],
        description="Doctors read federation-wide, write only at home.",
    )

    labs_policy = Policy(
        policy_id="lab-results",
        rule_combining="permit-overrides",
        target=Target.single("string-equal", "lab-result", "resource", "type"),
        rules=[
            Rule("clinicians-read", Effect.PERMIT,
                 target=Target(any_ofs=(
                     doctor.any_ofs + nurse.any_ofs)),
                 condition=Apply("any-of", (
                     Literal("string-equal"), Literal("read"),
                     _designator("action", "action-id")))),
        ],
        description="Doctors and nurses read lab results.",
    )

    root = PolicySet(
        policy_set_id="healthcare-federation",
        policy_combining="deny-unless-permit",
        children=[records_policy, labs_policy],
        description="Top-level: everything not explicitly permitted is denied.",
    )

    domain = AttributeDomain()
    domain.declare("subject", "role", ["doctor", "nurse", "clerk"])
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", ["medical-record", "lab-result"])
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=60,
        resources=300,
        roles=("doctor", "nurse", "clerk"),
        role_weights=(0.35, 0.35, 0.30),
        resource_types=("medical-record", "lab-result"),
        actions=("read", "write"),
        action_weights=(0.85, 0.15),
    )
    return Scenario(
        name="healthcare",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="Hospitals in two clouds share records and lab results.",
    )


def ministry_scenario() -> Scenario:
    """Ministry-to-ministry document sharing."""
    officer = Target.single("string-equal", "officer", "subject", "role")
    auditor = Target.single("string-equal", "auditor", "subject", "role")

    documents_policy = Policy(
        policy_id="tax-documents",
        rule_combining="first-applicable",
        target=Target.single("string-equal", "tax-document", "resource", "type"),
        rules=[
            Rule("officer-clearance-read", Effect.PERMIT,
                 target=officer,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("read"),
                                      _designator("action", "action-id"))),
                     Apply("integer-greater-than-or-equal", (
                         Apply("one-and-only", (
                             _designator("subject", "clearance", DataType.INTEGER),)),
                         Apply("one-and-only", (
                             _designator("resource", "sensitivity", DataType.INTEGER),)),
                     )),
                 ))),
            Rule("auditor-office-hours", Effect.PERMIT,
                 target=auditor,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("read"),
                                      _designator("action", "action-id"))),
                     Apply("time-in-range", (
                         Apply("one-and-only", (
                             _designator("environment", "time-of-day", DataType.DOUBLE),)),
                         Literal(9.0 * 3600), Literal(17.0 * 3600))),
                 ))),
            Rule("owner-tenant-write", Effect.PERMIT,
                 target=officer,
                 condition=Apply("and", (
                     Apply("any-of", (Literal("string-equal"), Literal("write"),
                                      _designator("action", "action-id"))),
                     Apply("any-of-any", (Literal("string-equal"),
                                          _designator("environment", "origin-tenant"),
                                          _designator("resource", "owner-tenant"))),
                 ))),
            Rule("default-deny", Effect.DENY),
        ],
        obligations=[Obligation("notify-owner", "Permit",
                                {"channel": "audit-queue"})],
        description="Clearance-gated reads, office-hour audits, home writes.",
    )

    root = PolicySet(
        policy_set_id="ministry-federation",
        policy_combining="deny-unless-permit",
        children=[documents_policy],
        description="Single-document-class ministry sharing.",
    )

    domain = AttributeDomain()
    domain.declare("subject", "role", ["officer", "auditor", "intern"])
    domain.declare("subject", "clearance", [1, 3, 5])
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", ["tax-document"])
    domain.declare("resource", "sensitivity", [1, 3, 5])
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "time-of-day", [8.0 * 3600, 12.0 * 3600, 20.0 * 3600])

    workload = WorkloadConfig(
        subjects=40,
        resources=150,
        roles=("officer", "auditor", "intern"),
        role_weights=(0.5, 0.2, 0.3),
        resource_types=("tax-document",),
        actions=("read", "write"),
        action_weights=(0.7, 0.3),
    )
    return Scenario(
        name="ministry",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="Finance and interior ministries share tax documents.",
    )


#: Device-data classes of the IoT federation: type → (reader roles, writer
#: roles).  Telemetry is written by devices and read by the back office;
#: control surfaces are operated; admin artefacts belong to technicians.
_IOT_DEVICE_CLASSES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "temperature": (("operator", "analyst"), ("sensor",)),
    "humidity": (("operator", "analyst"), ("sensor",)),
    "air-quality": (("operator", "analyst"), ("sensor",)),
    "power-meter": (("operator", "analyst"), ("sensor",)),
    "water-meter": (("operator", "analyst"), ("sensor",)),
    "camera-feed": (("operator",), ("sensor",)),
    "door-lock": (("operator", "technician"), ("operator",)),
    "hvac-control": (("operator", "technician"), ("operator",)),
    "valve-control": (("operator", "technician"), ("operator",)),
    "firmware-image": (("technician", "analyst"), ("technician",)),
    "device-config": (("technician", "analyst"), ("technician",)),
    "diagnostics": (("technician", "analyst"), ("sensor", "technician")),
}

_IOT_AUDITED_CLASSES = ("door-lock", "firmware-image")


def iot_edge_scenario() -> Scenario:
    """High-fan-out IoT/edge federation: many small per-class policies.

    The policy tree is wide and flat — one policy per device-data class —
    so a request is relevant to exactly one branch.  The slow path still
    walks all of them; the target index skips every class but the one the
    request's resource type selects.
    """
    policies = []
    for device_type, (readers, writers) in _IOT_DEVICE_CLASSES.items():
        obligations = []
        if device_type in _IOT_AUDITED_CLASSES:
            obligations.append(Obligation(
                f"audit-{device_type}", "Permit",
                {"reason": "safety-critical device class"}))
        policies.append(Policy(
            policy_id=f"iot-{device_type}",
            rule_combining="permit-overrides",
            target=Target.single("string-equal", device_type, "resource", "type"),
            rules=[
                Rule(f"{device_type}-read", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", readers),
                     condition=_action_is("read")),
                Rule(f"{device_type}-write", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", writers),
                     condition=_action_is("write")),
            ],
            obligations=obligations,
            description=f"{device_type}: read {readers}, write {writers}.",
        ))

    root = PolicySet(
        policy_set_id="iot-edge-federation",
        policy_combining="deny-unless-permit",
        children=policies,
        description="Per-device-class access; everything else denied.",
    )

    roles = ("sensor", "technician", "operator", "analyst")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(roles))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", list(_IOT_DEVICE_CLASSES))

    workload = WorkloadConfig(
        subjects=200,
        resources=600,
        roles=roles,
        role_weights=(0.45, 0.15, 0.25, 0.15),
        resource_types=tuple(_IOT_DEVICE_CLASSES),
        actions=("read", "write"),
        action_weights=(0.6, 0.4),
    )
    return Scenario(
        name="iot-edge",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="Edge clouds exchange telemetry, control and firmware "
                    "for a dozen device-data classes.",
    )


def delegation_scenario() -> Scenario:
    """Cross-cloud delegation with deep PolicySet nesting.

    Cloud A nests domain policy sets (root → cloud → domain → policy →
    rule); delegates act across tenants with clearance-attenuated
    authority (read only what their clearance covers).  Cloud B holds the
    operational records.  Deep targets make the index prove NoMatch
    through several layers instead of one.
    """
    delegate = Target.single("string-equal", "delegate", "subject", "role")

    def domain_policy(policy_id: str, record_type: str, owner_role: str,
                      obligations: list[Obligation]) -> Policy:
        owner = Target.single("string-equal", owner_role, "subject", "role")
        return Policy(
            policy_id=policy_id,
            rule_combining="first-applicable",
            rules=[
                Rule(f"{owner_role}-read", Effect.PERMIT,
                     target=owner, condition=_action_is("read")),
                Rule(f"{owner_role}-home-write", Effect.PERMIT,
                     target=owner,
                     condition=Apply("and", (_action_is("write"),
                                             _home_tenant()))),
                Rule("delegate-attenuated-read", Effect.PERMIT,
                     target=delegate,
                     condition=Apply("and", (_action_is("read"),
                                             _clearance_covers_sensitivity()))),
                Rule(f"{record_type}-default-deny", Effect.DENY),
            ],
            obligations=obligations,
            description=f"{owner_role} owns {record_type}; delegates read "
                        "within clearance.",
        )

    hr_domain = PolicySet(
        policy_set_id="hr-domain",
        policy_combining="first-applicable",
        target=Target.single("string-equal", "hr-record", "resource", "type"),
        children=[domain_policy(
            "hr-records", "hr-record", "hr-officer",
            [Obligation("record-delegated-access", "Permit",
                        {"registry": "delegation-ledger"})])],
    )
    finance_domain = PolicySet(
        policy_set_id="finance-domain",
        policy_combining="first-applicable",
        target=Target.single("string-equal", "finance-record", "resource", "type"),
        children=[domain_policy("finance-records", "finance-record",
                                "finance-officer", [])],
    )
    cloud_a = PolicySet(
        policy_set_id="cloud-a",
        policy_combining="permit-overrides",
        target=_disjunction_target("resource", "type",
                                   ("hr-record", "finance-record")),
        children=[hr_domain, finance_domain],
        description="Administrative records, delegated across tenants.",
    )

    ops_policy = Policy(
        policy_id="ops-logs",
        rule_combining="first-applicable",
        target=Target.single("string-equal", "ops-log", "resource", "type"),
        rules=[
            Rule("operator-read-write", Effect.PERMIT,
                 target=Target.single("string-equal", "operator",
                                      "subject", "role")),
            Rule("auditor-read", Effect.PERMIT,
                 target=Target.single("string-equal", "auditor",
                                      "subject", "role"),
                 condition=_action_is("read")),
            Rule("ops-default-deny", Effect.DENY),
        ],
    )
    audit_policy = Policy(
        policy_id="audit-trails",
        rule_combining="first-applicable",
        target=Target.single("string-equal", "audit-trail", "resource", "type"),
        rules=[
            Rule("auditor-read-trail", Effect.PERMIT,
                 target=Target.single("string-equal", "auditor",
                                      "subject", "role"),
                 condition=_action_is("read")),
            Rule("operator-home-append", Effect.PERMIT,
                 target=Target.single("string-equal", "operator",
                                      "subject", "role"),
                 condition=Apply("and", (_action_is("write"), _home_tenant()))),
            Rule("trail-default-deny", Effect.DENY),
        ],
        obligations=[Obligation("notify-audit-board", "Deny",
                                {"channel": "compliance-queue"})],
    )
    cloud_b = PolicySet(
        policy_set_id="cloud-b",
        policy_combining="permit-overrides",
        target=_disjunction_target("resource", "type",
                                   ("ops-log", "audit-trail")),
        children=[ops_policy, audit_policy],
        description="Operational records of the hosting cloud.",
    )

    root = PolicySet(
        policy_set_id="delegation-federation",
        policy_combining="deny-unless-permit",
        children=[cloud_a, cloud_b],
        description="Two clouds, nested domains, clearance-attenuated "
                    "delegation; everything else denied.",
    )

    roles = ("hr-officer", "finance-officer", "operator", "auditor", "delegate")
    record_types = ("hr-record", "finance-record", "ops-log", "audit-trail")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(roles))
    domain.declare("subject", "clearance", [1, 3, 5])
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", list(record_types))
    domain.declare("resource", "sensitivity", [1, 3, 5])
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=80,
        resources=240,
        roles=roles,
        role_weights=(0.25, 0.2, 0.2, 0.15, 0.2),
        resource_types=record_types,
        actions=("read", "write"),
        action_weights=(0.75, 0.25),
    )
    return Scenario(
        name="delegation",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="Cross-cloud delegation over nested administrative "
                    "and operational domains.",
    )


def audit_burst_scenario() -> Scenario:
    """Compliance-logging burst: one tenant floods the chain with audit
    appends while normal operational traffic continues.

    Unlike the other scenarios this one is shaped to stress the
    *monitoring plane* rather than the PDP: service accounts dominate the
    population and write at a high arrival rate, so every access attempt
    turns into four log transactions racing into the mempool.  Run it
    with tight ``max_block_txs``/``max_block_bytes`` chain settings (as
    E10 and the block-assembly tests do) and block templates hit the
    count and byte caps the calmer workloads never reach, leaving a
    standing mempool backlog that drains over several blocks.
    """
    service = Target.single("string-equal", "service", "subject", "role")
    auditor = Target.single("string-equal", "auditor", "subject", "role")
    operator = Target.single("string-equal", "operator", "subject", "role")

    audit_log_policy = Policy(
        policy_id="audit-log",
        rule_combining="first-applicable",
        target=Target.single("string-equal", "audit-entry", "resource", "type"),
        rules=[
            Rule("service-append", Effect.PERMIT,
                 target=service, condition=_action_is("write")),
            Rule("auditor-read", Effect.PERMIT,
                 target=auditor, condition=_action_is("read")),
            Rule("audit-default-deny", Effect.DENY),
        ],
        obligations=[Obligation("retain-seven-years", "Permit",
                                {"basis": "compliance mandate"})],
        description="Service accounts append audit entries; auditors read.",
    )
    service_records_policy = Policy(
        policy_id="service-records",
        rule_combining="first-applicable",
        target=Target.single("string-equal", "service-record", "resource", "type"),
        rules=[
            Rule("operator-read", Effect.PERMIT,
                 target=operator, condition=_action_is("read")),
            Rule("operator-home-write", Effect.PERMIT,
                 target=operator,
                 condition=Apply("and", (_action_is("write"), _home_tenant()))),
            Rule("records-default-deny", Effect.DENY),
        ],
        description="Operators run the services; writes stay at home.",
    )

    root = PolicySet(
        policy_set_id="audit-burst-federation",
        policy_combining="deny-unless-permit",
        children=[audit_log_policy, service_records_policy],
        description="Audit appends plus operational traffic; default deny.",
    )

    roles = ("service", "auditor", "operator")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(roles))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", ["audit-entry", "service-record"])
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=120,
        resources=480,
        roles=roles,
        # The flooding tenant's service accounts dominate the population.
        role_weights=(0.7, 0.1, 0.2),
        resource_types=("audit-entry", "service-record"),
        actions=("read", "write"),
        action_weights=(0.25, 0.75),
        zipf_skew=1.3,
        arrival_rate=25.0,
    )
    return Scenario(
        name="audit-burst",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="A tenant's services flood the chain with audit "
                    "appends while operators keep working.",
    )


#: Service classes of the whole-of-government federation:
#: class → (reader roles, writer roles).  Caseworkers operate the citizen-
#: facing registers, analysts and auditors consume them, service bots feed
#: the bulk ingestion pipelines.
_FEDERATION_SERVICE_CLASSES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "citizen-registry": (("caseworker", "analyst", "auditor"), ("caseworker",)),
    "tax-filing": (("caseworker", "auditor"), ("caseworker",)),
    "vehicle-licensing": (("caseworker", "analyst"), ("caseworker",)),
    "land-registry": (("caseworker", "auditor"), ("caseworker",)),
    "health-insurance": (("caseworker", "analyst", "auditor"), ("caseworker",)),
    "pension-claims": (("caseworker", "auditor"), ("caseworker",)),
    "customs-declarations": (("analyst", "auditor"), ("service-bot",)),
    "border-crossings": (("analyst", "auditor"), ("service-bot",)),
    "energy-subsidies": (("caseworker", "analyst"), ("service-bot",)),
    "education-records": (("caseworker", "analyst"), ("caseworker",)),
    "employment-records": (("caseworker", "analyst", "auditor"), ("caseworker",)),
    "social-housing": (("caseworker",), ("caseworker",)),
    "court-filings": (("auditor",), ("caseworker",)),
    "census-extracts": (("analyst", "auditor"), ("service-bot",)),
    "procurement-bids": (("analyst", "auditor"), ("service-bot",)),
    "grant-applications": (("caseworker", "analyst"), ("caseworker",)),
}

_FEDERATION_AUDITED_CLASSES = ("court-filings", "procurement-bids")


def federation_scale_scenario() -> Scenario:
    """Whole-of-government service federation sized to saturate one PDP.

    Sixteen service classes, a large mixed population and a request
    arrival rate (2 500/s) above a single evaluator's cache-hit service
    rate (1 / ``base_processing_delay`` = 2 000/s with the deployed
    defaults), so the decision backlog grows without bound until the
    decision plane is sharded.  E11 uses it for the per-shard-count
    throughput arms; writes stay home-tenant-gated so the sharded plane's
    routing sees both locality branches.
    """
    policies = []
    for service_class, (readers, writers) in _FEDERATION_SERVICE_CLASSES.items():
        obligations = []
        if service_class in _FEDERATION_AUDITED_CLASSES:
            obligations.append(Obligation(
                f"audit-{service_class}", "Permit",
                {"reason": "public-integrity register"}))
        policies.append(Policy(
            policy_id=f"svc-{service_class}",
            rule_combining="permit-overrides",
            target=Target.single("string-equal", service_class, "resource", "type"),
            rules=[
                Rule(f"{service_class}-read", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", readers),
                     condition=_action_is("read")),
                Rule(f"{service_class}-home-write", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", writers),
                     condition=Apply("and", (_action_is("write"),
                                             _home_tenant()))),
            ],
            obligations=obligations,
            description=f"{service_class}: read {readers}, home-write {writers}.",
        ))

    root = PolicySet(
        policy_set_id="federation-scale",
        policy_combining="deny-unless-permit",
        children=policies,
        description="Whole-of-government service classes; default deny.",
    )

    roles = ("caseworker", "analyst", "auditor", "service-bot")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(roles))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", list(_FEDERATION_SERVICE_CLASSES))
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=500,
        resources=2000,
        roles=roles,
        role_weights=(0.4, 0.25, 0.15, 0.2),
        resource_types=tuple(_FEDERATION_SERVICE_CLASSES),
        actions=("read", "write"),
        action_weights=(0.65, 0.35),
        zipf_skew=1.1,
        arrival_rate=2500.0,
    )
    return Scenario(
        name="federation-scale",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="A whole-of-government federation whose arrival rate "
                    "exceeds one PDP evaluator's service rate.",
    )


#: Roles of the case-handling federation whose policy rotates mid-run.
_CHURN_ROLES = ("caseworker", "contractor", "auditor")


def churn_policy_document(generation: int) -> dict:
    """Generation ``generation`` of the rotating case-handling policy.

    The stable spine (caseworkers read everywhere, write at home; auditors
    read; default deny) never changes, but every generation re-stamps the
    retention obligation — so each version has a distinct fingerprint —
    and contractor read access toggles with generation parity, so
    successive versions disagree on real requests.  A replica one version
    behind therefore produces decisions that are *wrong under the head but
    right under its own version*: exactly the honest-churn case the
    version-stamped monitoring pipeline must not mistake for tampering.
    """
    caseworker = Target.single("string-equal", "caseworker", "subject", "role")
    contractor = Target.single("string-equal", "contractor", "subject", "role")
    auditor = Target.single("string-equal", "auditor", "subject", "role")

    rules = [
        Rule("caseworker-read", Effect.PERMIT,
             target=caseworker, condition=_action_is("read")),
        Rule("caseworker-home-write", Effect.PERMIT,
             target=caseworker,
             condition=Apply("and", (_action_is("write"), _home_tenant()))),
        Rule("auditor-read", Effect.PERMIT,
             target=auditor, condition=_action_is("read")),
    ]
    if generation % 2 == 0:
        rules.append(Rule("contractor-read", Effect.PERMIT,
                          target=contractor, condition=_action_is("read")))
    rules.append(Rule("case-default-deny", Effect.DENY))

    case_policy = Policy(
        policy_id="case-files",
        rule_combining="first-applicable",
        target=Target.single("string-equal", "case-file", "resource", "type"),
        rules=rules,
        obligations=[Obligation(f"retention-rev-{generation}", "Permit",
                                {"policy-generation": str(generation)})],
        description=f"Case files, policy generation {generation}: contractor "
                    f"reads {'on' if generation % 2 == 0 else 'off'}.",
    )
    root = PolicySet(
        policy_set_id="policy-churn-federation",
        policy_combining="deny-unless-permit",
        children=[case_policy],
        description="Case handling under live policy churn; default deny.",
    )
    return policy_to_dict(root)


def policy_churn_scenario(generations: int = 4) -> Scenario:
    """Case-handling federation whose policy is re-published mid-traffic.

    ``generations`` counts the total policy versions (the base document
    plus ``generations - 1`` follow-up variants).  The request rate keeps
    traffic in flight across every publish, so with a replicated PRP plane
    some decisions are made one version behind the head — which is the
    E12 experiment's subject, not a fault.
    """
    if generations < 2:
        raise ValueError("a churn scenario needs at least two generations")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(_CHURN_ROLES))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", ["case-file"])
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=150,
        resources=600,
        roles=_CHURN_ROLES,
        role_weights=(0.45, 0.35, 0.2),
        resource_types=("case-file",),
        actions=("read", "write"),
        action_weights=(0.8, 0.2),
        zipf_skew=1.1,
        arrival_rate=25.0,
    )
    return Scenario(
        name="policy-churn",
        policy_document=churn_policy_document(0),
        workload=workload,
        domain=domain,
        description="Case handling while the policy is republished "
                    "mid-traffic; contractor access flips per generation.",
        policy_variants=tuple(churn_policy_document(generation)
                              for generation in range(1, generations)),
    )


#: Service classes of the civil-protection federation: class →
#: (reader roles, writer roles).  The alert feed is the flash-crowd
#: magnet; responders run the field registers, coordinators direct them,
#: ingest bots feed the sensor-derived ledgers.
_ELASTIC_SERVICE_CLASSES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "alert-feed": (("responder", "coordinator", "analyst"), ("coordinator",)),
    "shelter-registry": (("responder", "coordinator"), ("responder",)),
    "evacuation-orders": (("responder", "coordinator", "analyst"), ("coordinator",)),
    "relief-claims": (("coordinator", "analyst"), ("responder",)),
    "medical-triage": (("responder", "coordinator"), ("responder",)),
    "volunteer-roster": (("coordinator",), ("coordinator",)),
    "traffic-status": (("responder", "analyst"), ("ingest-bot",)),
    "supply-depots": (("responder", "coordinator"), ("ingest-bot",)),
}

_ELASTIC_AUDITED_CLASSES = ("evacuation-orders", "relief-claims")


def elastic_scale_scenario() -> Scenario:
    """Civil-protection flash crowd: the elastic decision plane's substrate.

    Two properties matter, and both are about *where* load lands rather
    than how much there is in total:

    - the resource catalogue is strongly Zipf-skewed (``zipf_skew=1.5``)
      and front-loaded onto the alert feed, so a small set of decision
      cache keys dominates the stream — consistent hashing pins each hot
      key to one shard, and whichever shards draw them run hot while
      their ring neighbours idle (queue-aware routing's best case, pure
      ring order's worst);
    - the arrival rate (3 000/s) out-runs any *fixed* pool provisioned
      for the pre-crowd baseline, so absorbing the spike without
      re-deploying is exactly the ``add_shard``/``drain_shard`` story E13
      measures; writes stay home-tenant-gated so locality routing sees
      both branches.
    """
    policies = []
    for service_class, (readers, writers) in _ELASTIC_SERVICE_CLASSES.items():
        obligations = []
        if service_class in _ELASTIC_AUDITED_CLASSES:
            obligations.append(Obligation(
                f"audit-{service_class}", "Permit",
                {"reason": "emergency-powers accountability record"}))
        policies.append(Policy(
            policy_id=f"civ-{service_class}",
            rule_combining="permit-overrides",
            target=Target.single("string-equal", service_class, "resource", "type"),
            rules=[
                Rule(f"{service_class}-read", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", readers),
                     condition=_action_is("read")),
                Rule(f"{service_class}-home-write", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", writers),
                     condition=Apply("and", (_action_is("write"),
                                             _home_tenant()))),
            ],
            obligations=obligations,
            description=f"{service_class}: read {readers}, home-write {writers}.",
        ))

    root = PolicySet(
        policy_set_id="elastic-scale",
        policy_combining="deny-unless-permit",
        children=policies,
        description="Civil-protection service classes; default deny.",
    )

    roles = ("responder", "coordinator", "analyst", "ingest-bot")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(roles))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", list(_ELASTIC_SERVICE_CLASSES))
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    # Front-load the catalogue onto the flash-crowd magnet: resource
    # types are assigned round-robin over this tuple and popularity is
    # Zipf over the catalogue index, so repeating ``alert-feed`` in the
    # leading positions concentrates the hottest resources — and hence
    # the hottest decision-cache keys — on a single service class.
    catalogue = ("alert-feed", "alert-feed", "alert-feed") + tuple(
        c for c in _ELASTIC_SERVICE_CLASSES if c != "alert-feed")
    workload = WorkloadConfig(
        subjects=300,
        resources=900,
        roles=roles,
        role_weights=(0.45, 0.2, 0.15, 0.2),
        resource_types=catalogue,
        actions=("read", "write"),
        action_weights=(0.75, 0.25),
        zipf_skew=1.5,
        arrival_rate=3000.0,
    )
    return Scenario(
        name="elastic-scale",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="A civil-protection flash crowd whose hot keys and "
                    "spiking arrival rate demand an elastic decision plane.",
    )


#: Service classes of the municipal e-services federation: class →
#: (reader roles, writer roles).  Citizen-facing portals carry the
#: daily curve; back-office registers tick along underneath it.
_DIURNAL_SERVICE_CLASSES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "service-portal": (("citizen", "clerk"), ("clerk",)),
    "permit-applications": (("citizen", "clerk"), ("citizen",)),
    "parking-permits": (("citizen", "clerk"), ("clerk",)),
    "waste-collection": (("citizen", "clerk"), ("service-bot",)),
    "library-catalogue": (("citizen", "clerk"), ("service-bot",)),
    "inspection-reports": (("inspector", "clerk"), ("inspector",)),
}


def diurnal_scenario() -> Scenario:
    """Municipal e-services under a daily load curve: the scale-*down* test.

    Every other load-shaped scenario asks "can the plane grow fast
    enough?".  This one asks the opposite question: the arrival rate is a
    raised cosine (``arrival_period``) that starts at a peak a four-shard
    pool handles comfortably, sinks to ``arrival_trough`` (a tenth) of it
    half a cycle later, and crests again — so a controller that only ever
    adds capacity fails the point of the exercise.  The right answer is
    to drain shards into the trough (fewer shard-seconds for the same
    decisions — E14's efficiency metric) and re-add them, warm, for the
    next crest.  Arrivals dominated by citizens reading a few portal
    classes keep the decision caches hot across the membership churn.
    """
    policies = []
    for service_class, (readers, writers) in _DIURNAL_SERVICE_CLASSES.items():
        policies.append(Policy(
            policy_id=f"mun-{service_class}",
            rule_combining="permit-overrides",
            target=Target.single("string-equal", service_class, "resource", "type"),
            rules=[
                Rule(f"{service_class}-read", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", readers),
                     condition=_action_is("read")),
                Rule(f"{service_class}-home-write", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", writers),
                     condition=Apply("and", (_action_is("write"),
                                             _home_tenant()))),
            ],
            description=f"{service_class}: read {readers}, home-write {writers}.",
        ))

    root = PolicySet(
        policy_set_id="diurnal-federation",
        policy_combining="deny-unless-permit",
        children=policies,
        description="Municipal e-service classes; default deny.",
    )

    roles = ("citizen", "clerk", "inspector", "service-bot")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(roles))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", list(_DIURNAL_SERVICE_CLASSES))
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=300,
        resources=800,
        roles=roles,
        role_weights=(0.65, 0.2, 0.05, 0.1),
        resource_types=tuple(_DIURNAL_SERVICE_CLASSES),
        actions=("read", "write"),
        action_weights=(0.85, 0.15),
        zipf_skew=1.2,
        arrival_rate=350.0,   # the peak of the curve
        arrival_period=6.0,   # one full day, compressed
        arrival_trough=0.1,   # overnight traffic: a tenth of the peak
    )
    return Scenario(
        name="diurnal",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="Citizens work the municipal portals through a daily "
                    "peak-trough-peak arrival curve; the efficient plane "
                    "sheds shards into the trough.",
    )


#: Service classes of the emergency-management federation: class →
#: (reader roles, writer roles).  The incident log is the audited,
#: monitored heart of the exercise; the rest is continuity-of-operations
#: traffic that must keep flowing through the storm.
_STORM_SERVICE_CLASSES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "incident-log": (("operator", "commander", "liaison"), ("operator",)),
    "resource-roster": (("operator", "commander"), ("commander",)),
    "situation-map": (("operator", "commander", "liaison"), ("feed-bot",)),
    "comms-directory": (("operator", "commander", "liaison"), ("commander",)),
    "mutual-aid-requests": (("commander", "liaison"), ("liaison",)),
    "status-heartbeats": (("operator", "commander"), ("feed-bot",)),
}

#: Classes whose Permit carries an audit obligation — their decisions
#: must survive, attributably, whatever the fault plan does.
_STORM_AUDITED_CLASSES = ("incident-log", "mutual-aid-requests")


def partition_storm_scenario() -> Scenario:
    """Emergency management under network fire: the fault plane's substrate.

    Everything here is tuned for *differential* observability under a
    :class:`~repro.faults.plan.FaultPlan`, not for raw load:

    - the arrival rate (150/s) is modest on purpose — the interesting
      number is how many decisions a partition or crash *loses or
      re-routes*, which a saturated plane would drown in queueing noise;
    - reads dominate (85%) and every role can read the situation map and
      comms directory, so a PEP that fails over to a remote shard still
      has work that must Permit — re-routing is visible as re-routing,
      not as a wall of Denies;
    - writes are home-tenant-gated, so when a partition severs a tenant
      from its nearest shard the failover decisions exercise the *same*
      policy branches and must stay bit-identical to the calm run;
    - the audited classes put Permit-obligations on the incident log and
      mutual-aid paperwork, which makes each such decision a monitored
      transaction — the DRAMS contract either survives the fault window
      cleanly or produces exactly attributable alerts, never noise.

    E16's chaos arm reuses the same scenario + storm plan with light
    auditors attached: every enforced decision's receipt must survive
    the partitions and crashes (parked/refetched, never rejected), so
    the storm doubles as the light-client recovery fixture.
    """
    policies = []
    for service_class, (readers, writers) in _STORM_SERVICE_CLASSES.items():
        obligations = []
        if service_class in _STORM_AUDITED_CLASSES:
            obligations.append(Obligation(
                f"audit-{service_class}", "Permit",
                {"reason": "emergency-operations accountability record"}))
        policies.append(Policy(
            policy_id=f"em-{service_class}",
            rule_combining="permit-overrides",
            target=Target.single("string-equal", service_class, "resource", "type"),
            rules=[
                Rule(f"{service_class}-read", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", readers),
                     condition=_action_is("read")),
                Rule(f"{service_class}-home-write", Effect.PERMIT,
                     target=_disjunction_target("subject", "role", writers),
                     condition=Apply("and", (_action_is("write"),
                                             _home_tenant()))),
            ],
            obligations=obligations,
            description=f"{service_class}: read {readers}, home-write {writers}.",
        ))

    root = PolicySet(
        policy_set_id="partition-storm",
        policy_combining="deny-unless-permit",
        children=policies,
        description="Emergency-management service classes; default deny.",
    )

    roles = ("operator", "commander", "liaison", "feed-bot")
    domain = AttributeDomain()
    domain.declare("subject", "role", list(roles))
    domain.declare("action", "action-id", ["read", "write"])
    domain.declare("resource", "type", list(_STORM_SERVICE_CLASSES))
    domain.declare("resource", "owner-tenant", ["tenant-1", "tenant-2"])
    domain.declare("environment", "origin-tenant", ["tenant-1", "tenant-2"])

    workload = WorkloadConfig(
        subjects=200,
        resources=600,
        roles=roles,
        role_weights=(0.5, 0.2, 0.15, 0.15),
        resource_types=tuple(_STORM_SERVICE_CLASSES),
        actions=("read", "write"),
        action_weights=(0.85, 0.15),
        zipf_skew=1.1,
        arrival_rate=150.0,
    )
    return Scenario(
        name="partition-storm",
        policy_document=policy_to_dict(root),
        workload=workload,
        domain=domain,
        description="An emergency-management federation that must keep "
                    "resolving access decisions while a scripted fault plan "
                    "partitions, crashes and degrades the substrate.",
    )


def all_scenarios() -> list[Scenario]:
    """One instance of every shipped scenario, in a stable order."""
    return [factory() for factory in SCENARIO_FACTORIES]


SCENARIO_FACTORIES = (
    healthcare_scenario,
    ministry_scenario,
    iot_edge_scenario,
    delegation_scenario,
    audit_burst_scenario,
    federation_scale_scenario,
    policy_churn_scenario,
    elastic_scale_scenario,
    diurnal_scenario,
    partition_storm_scenario,
)
