"""Seeded request-stream generation.

Produces the access attempts the experiments replay: a population of
subjects with roles, a resource catalogue with types, and a stream of
(subject, resource, action) triples with Zipf-skewed popularity and
Poisson-process arrival times — the standard shape of access workloads.

Arrivals are homogeneous by default.  Setting ``arrival_period`` turns
the stream into a *diurnal* (sinusoidal) non-homogeneous process:
``arrival_rate`` becomes the peak, the rate dips to ``arrival_trough``
of it half a period later, and the curve starts at the peak — the shape
the autoscaling experiments use, where the right controller answer is to
scale *down* into the trough and back up for the next crest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ValidationError
from repro.common.rng import SeededRng


@dataclass
class WorkloadConfig:
    """Shape of the generated request stream."""

    subjects: int = 50
    resources: int = 200
    roles: tuple[str, ...] = ("doctor", "nurse", "clerk")
    role_weights: tuple[float, ...] = (0.3, 0.3, 0.4)
    resource_types: tuple[str, ...] = ("medical-record", "lab-result")
    actions: tuple[str, ...] = ("read", "write")
    action_weights: tuple[float, ...] = (0.8, 0.2)
    zipf_skew: float = 1.1
    arrival_rate: float = 2.0  # requests per simulated second (peak, if diurnal)
    payload_padding_bytes: int = 0  # inflate request size (log-size sweeps)
    arrival_period: float = 0.0  # seconds per diurnal cycle; 0 = homogeneous
    arrival_trough: float = 0.1  # trough rate as a fraction of the peak

    def __post_init__(self) -> None:
        if self.subjects <= 0 or self.resources <= 0:
            raise ValidationError("subjects and resources must be positive")
        if len(self.roles) != len(self.role_weights):
            raise ValidationError("roles and role_weights must align")
        if len(self.actions) != len(self.action_weights):
            raise ValidationError("actions and action_weights must align")
        if self.arrival_rate <= 0:
            raise ValidationError("arrival_rate must be positive")
        if self.arrival_period < 0:
            raise ValidationError("arrival_period must be >= 0")
        if not 0.0 < self.arrival_trough <= 1.0:
            # A zero trough would stall the stream outright (expovariate
            # at rate 0 never fires); the trough is a dip, not a stop.
            raise ValidationError("arrival_trough must be in (0, 1]")


@dataclass
class GeneratedRequest:
    """One synthetic access attempt, ready for a PEP."""

    subject: dict
    resource: dict
    action: dict
    at: float
    index: int


class RequestGenerator:
    """Draws subjects/resources/actions and arrival times from one seed."""

    def __init__(self, config: WorkloadConfig, rng: SeededRng) -> None:
        self.config = config
        self.rng = rng.fork("workload")
        self._subjects = [self._make_subject(i) for i in range(config.subjects)]
        self._resources = [self._make_resource(i) for i in range(config.resources)]

    def _weighted_choice(self, items: tuple[str, ...], weights: tuple[float, ...],
                         rng: SeededRng) -> str:
        total = sum(weights)
        target = rng.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if acc >= target:
                return item
        return items[-1]

    def _make_subject(self, index: int) -> dict:
        role = self._weighted_choice(self.config.roles, self.config.role_weights,
                                     self.rng)
        return {
            "subject-id": f"subject-{index}",
            "role": role,
            "clearance": self.rng.randint(1, 5),
        }

    def _make_resource(self, index: int) -> dict:
        resource_type = self.config.resource_types[
            index % len(self.config.resource_types)]
        return {
            "resource-id": f"resource-{index}",
            "type": resource_type,
            "sensitivity": self.rng.randint(1, 5),
        }

    # -- stream --------------------------------------------------------------

    def subjects(self) -> list[dict]:
        return [dict(subject) for subject in self._subjects]

    def resources(self) -> list[dict]:
        return [dict(resource) for resource in self._resources]

    def arrival_rate_at(self, elapsed: float) -> float:
        """Instantaneous arrival rate ``elapsed`` seconds into the stream.

        Homogeneous streams (``arrival_period == 0``) are flat at
        ``arrival_rate``.  Diurnal streams follow a raised cosine that
        starts at the peak: rate(t) = peak × (trough + (1 − trough) ×
        (1 + cos(2πt/period)) / 2), dipping to ``arrival_trough`` of the
        peak half a period in and recovering by the full period.
        """
        config = self.config
        if config.arrival_period <= 0:
            return config.arrival_rate
        crest = 0.5 * (1.0 + math.cos(2.0 * math.pi * elapsed / config.arrival_period))
        return config.arrival_rate * (
            config.arrival_trough + (1.0 - config.arrival_trough) * crest
        )

    def requests(self, count: int, start_at: float = 0.0) -> Iterator[GeneratedRequest]:
        """Yield ``count`` requests with Poisson arrivals from ``start_at``.

        Diurnal streams draw each gap at the instantaneous rate — a
        step-wise approximation of the non-homogeneous process, accurate
        while gaps stay short against ``arrival_period`` (every scenario
        here has thousands of arrivals per cycle).
        """
        at = start_at
        for index in range(count):
            at += self.rng.expovariate(self.arrival_rate_at(at - start_at))
            subject = dict(self.rng.choice(self._subjects))
            resource = dict(self._resources[
                self.rng.zipf_index(len(self._resources), self.config.zipf_skew)])
            action = {"action-id": self._weighted_choice(
                self.config.actions, self.config.action_weights, self.rng)}
            if self.config.payload_padding_bytes > 0:
                resource["padding"] = "x" * self.config.payload_padding_bytes
            yield GeneratedRequest(
                subject=subject, resource=resource, action=action,
                at=at, index=index)
