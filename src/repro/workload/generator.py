"""Seeded request-stream generation.

Produces the access attempts the experiments replay: a population of
subjects with roles, a resource catalogue with types, and a stream of
(subject, resource, action) triples with Zipf-skewed popularity and
Poisson-process arrival times — the standard shape of access workloads.

Arrivals are homogeneous by default.  Setting ``arrival_period`` turns
the stream into a *diurnal* (sinusoidal) non-homogeneous process:
``arrival_rate`` becomes the peak, the rate dips to ``arrival_trough``
of it half a period later, and the curve starts at the peak — the shape
the autoscaling experiments use, where the right controller answer is to
scale *down* into the trough and back up for the next crest.
``arrival_harmonics`` multiplies further raised-cosine envelopes onto
the base curve (weekly/seasonal mixes on top of the daily cycle).

The subject and resource catalogues are *lazy*: attributes are drawn at
construction time (so streams stay bit-identical across code changes)
into compact index arrays, and the per-entity dicts are materialised only
when a draw lands on them.  A million-subject population costs a few
megabytes instead of a few hundred.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.common.errors import ValidationError
from repro.common.rng import SeededRng


@dataclass
class WorkloadConfig:
    """Shape of the generated request stream."""

    subjects: int = 50
    resources: int = 200
    roles: tuple[str, ...] = ("doctor", "nurse", "clerk")
    role_weights: tuple[float, ...] = (0.3, 0.3, 0.4)
    resource_types: tuple[str, ...] = ("medical-record", "lab-result")
    actions: tuple[str, ...] = ("read", "write")
    action_weights: tuple[float, ...] = (0.8, 0.2)
    zipf_skew: float = 1.1
    arrival_rate: float = 2.0  # requests per simulated second (peak, if diurnal)
    payload_padding_bytes: int = 0  # inflate request size (log-size sweeps)
    arrival_period: float = 0.0  # seconds per diurnal cycle; 0 = homogeneous
    arrival_trough: float = 0.1  # trough rate as a fraction of the peak
    #: Extra ``(period, trough)`` raised-cosine envelopes multiplied onto
    #: the base curve — weekly or seasonal mixes over the daily cycle.
    #: Empty (the default) leaves every historical stream bit-identical.
    arrival_harmonics: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.subjects <= 0 or self.resources <= 0:
            raise ValidationError("subjects and resources must be positive")
        if len(self.roles) != len(self.role_weights):
            raise ValidationError("roles and role_weights must align")
        if len(self.actions) != len(self.action_weights):
            raise ValidationError("actions and action_weights must align")
        if self.arrival_rate <= 0:
            raise ValidationError("arrival_rate must be positive")
        if self.arrival_period < 0:
            raise ValidationError("arrival_period must be >= 0")
        if not 0.0 < self.arrival_trough <= 1.0:
            # A zero trough would stall the stream outright (expovariate
            # at rate 0 never fires); the trough is a dip, not a stop.
            raise ValidationError("arrival_trough must be in (0, 1]")
        for harmonic in self.arrival_harmonics:
            if len(harmonic) != 2:
                raise ValidationError("arrival_harmonics entries are (period, trough)")
            period, trough = harmonic
            if period <= 0:
                raise ValidationError("harmonic period must be positive")
            if not 0.0 < trough <= 1.0:
                raise ValidationError("harmonic trough must be in (0, 1]")


@dataclass
class GeneratedRequest:
    """One synthetic access attempt, ready for a PEP."""

    subject: dict
    resource: dict
    action: dict
    at: float
    index: int


class _SubjectCatalogue(Sequence):
    """Lazy subject population: index arrays in, dicts out on demand."""

    def __init__(self, roles: tuple[str, ...], role_indices: array,
                 clearances: array) -> None:
        self._roles = roles
        self._role_indices = role_indices
        self._clearances = clearances

    def __len__(self) -> int:
        return len(self._role_indices)

    def __getitem__(self, index: int) -> dict:
        if isinstance(index, slice):
            raise TypeError("subject catalogue does not support slicing")
        return {
            "subject-id": f"subject-{index if index >= 0 else index + len(self)}",
            "role": self._roles[self._role_indices[index]],
            "clearance": self._clearances[index],
        }


class _ResourceCatalogue(Sequence):
    """Lazy resource catalogue: types round-robin, sensitivities drawn."""

    def __init__(self, resource_types: tuple[str, ...],
                 sensitivities: array) -> None:
        self._types = resource_types
        self._sensitivities = sensitivities

    def __len__(self) -> int:
        return len(self._sensitivities)

    def __getitem__(self, index: int) -> dict:
        if isinstance(index, slice):
            raise TypeError("resource catalogue does not support slicing")
        if index < 0:
            index += len(self)
        return {
            "resource-id": f"resource-{index}",
            "type": self._types[index % len(self._types)],
            "sensitivity": self._sensitivities[index],
        }


class RequestGenerator:
    """Draws subjects/resources/actions and arrival times from one seed."""

    def __init__(self, config: WorkloadConfig, rng: SeededRng) -> None:
        self.config = config
        self.rng = rng.fork("workload")
        # Attribute draws happen here, in the historical order (all
        # subjects, then all resources), so streams are bit-identical to
        # the eager-list implementation; only the dict materialisation is
        # deferred to access time.
        role_indices = array("H")
        clearances = array("B")
        for _ in range(config.subjects):
            role_indices.append(self._weighted_index(config.role_weights, self.rng))
            clearances.append(self.rng.randint(1, 5))
        sensitivities = array("B")
        for _ in range(config.resources):
            sensitivities.append(self.rng.randint(1, 5))
        self._subjects = _SubjectCatalogue(config.roles, role_indices, clearances)
        self._resources = _ResourceCatalogue(config.resource_types, sensitivities)

    def _weighted_index(self, weights: tuple[float, ...], rng: SeededRng) -> int:
        total = sum(weights)
        target = rng.random() * total
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if acc >= target:
                return index
        return len(weights) - 1

    def _weighted_choice(self, items: tuple[str, ...], weights: tuple[float, ...],
                         rng: SeededRng) -> str:
        return items[self._weighted_index(weights, rng)]

    # -- stream --------------------------------------------------------------

    def subjects(self) -> list[dict]:
        return [self._subjects[index] for index in range(len(self._subjects))]

    def resources(self) -> list[dict]:
        return [self._resources[index] for index in range(len(self._resources))]

    def arrival_rate_at(self, elapsed: float) -> float:
        """Instantaneous arrival rate ``elapsed`` seconds into the stream.

        Homogeneous streams (``arrival_period == 0``) are flat at
        ``arrival_rate``.  Diurnal streams follow a raised cosine that
        starts at the peak: rate(t) = peak × (trough + (1 − trough) ×
        (1 + cos(2πt/period)) / 2), dipping to ``arrival_trough`` of the
        peak half a period in and recovering by the full period.  Each
        ``arrival_harmonics`` entry multiplies one more such envelope.
        """
        config = self.config
        rate = config.arrival_rate
        if config.arrival_period > 0:
            rate *= self._envelope(
                elapsed, config.arrival_period, config.arrival_trough)
        for period, trough in config.arrival_harmonics:
            rate *= self._envelope(elapsed, period, trough)
        return rate

    @staticmethod
    def _envelope(elapsed: float, period: float, trough: float) -> float:
        crest = 0.5 * (1.0 + math.cos(2.0 * math.pi * elapsed / period))
        return trough + (1.0 - trough) * crest

    def requests(self, count: int, start_at: float = 0.0) -> Iterator[GeneratedRequest]:
        """Yield ``count`` requests with Poisson arrivals from ``start_at``.

        Diurnal streams draw each gap at the instantaneous rate — a
        step-wise approximation of the non-homogeneous process, accurate
        while gaps stay short against ``arrival_period`` (every scenario
        here has thousands of arrivals per cycle).
        """
        at = start_at
        for index in range(count):
            at += self.rng.expovariate(self.arrival_rate_at(at - start_at))
            subject = dict(self.rng.choice(self._subjects))
            resource = dict(self._resources[
                self.rng.zipf_index(len(self._resources), self.config.zipf_skew)])
            action = {"action-id": self._weighted_choice(
                self.config.actions, self.config.action_weights, self.rng)}
            if self.config.payload_padding_bytes > 0:
                resource["padding"] = "x" * self.config.payload_padding_bytes
            yield GeneratedRequest(
                subject=subject, resource=resource, action=action,
                at=at, index=index)
