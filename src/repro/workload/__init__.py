"""Workload generation: subjects, resources, request streams, scenarios.

The paper motivates cloud federations with partner organisations sharing
data and services (the SUNFISH project's use cases are public-sector data
sharing).  This package provides:

- :mod:`repro.workload.generator` — seeded access-request generators with
  Zipf-skewed subject/resource popularity and Poisson arrivals (optionally
  diurnal: a sinusoidal arrival curve for the autoscaling experiments),
- :mod:`repro.workload.scenarios` — ten concrete federation scenarios
  (cross-border healthcare; ministry data sharing; high-fan-out IoT/edge;
  cross-cloud delegation; audit-burst compliance logging; federation-scale
  service sharing; mid-traffic policy churn; elastic-scale flash crowd;
  diurnal municipal e-services; partition-storm emergency management),
  each with its policy set, population and expected decision mix.
"""

from repro.workload.generator import WorkloadConfig, RequestGenerator, GeneratedRequest
from repro.workload.scenarios import (
    SCENARIO_FACTORIES,
    Scenario,
    all_scenarios,
    audit_burst_scenario,
    delegation_scenario,
    diurnal_scenario,
    elastic_scale_scenario,
    federation_scale_scenario,
    healthcare_scenario,
    iot_edge_scenario,
    ministry_scenario,
    partition_storm_scenario,
    policy_churn_scenario,
)

__all__ = [
    "WorkloadConfig",
    "RequestGenerator",
    "GeneratedRequest",
    "SCENARIO_FACTORIES",
    "Scenario",
    "all_scenarios",
    "audit_burst_scenario",
    "delegation_scenario",
    "diurnal_scenario",
    "elastic_scale_scenario",
    "federation_scale_scenario",
    "healthcare_scenario",
    "iot_edge_scenario",
    "ministry_scenario",
    "partition_storm_scenario",
    "policy_churn_scenario",
]
