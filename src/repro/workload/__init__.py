"""Workload generation: subjects, resources, request streams, scenarios.

The paper motivates cloud federations with partner organisations sharing
data and services (the SUNFISH project's use cases are public-sector data
sharing).  This package provides:

- :mod:`repro.workload.generator` — seeded access-request generators with
  Zipf-skewed subject/resource popularity and Poisson arrivals,
- :mod:`repro.workload.scenarios` — two concrete federation scenarios
  (cross-border healthcare; ministry data sharing), each with its policy
  set, population and expected decision mix.
"""

from repro.workload.generator import WorkloadConfig, RequestGenerator, GeneratedRequest
from repro.workload.scenarios import Scenario, healthcare_scenario, ministry_scenario

__all__ = [
    "WorkloadConfig",
    "RequestGenerator",
    "GeneratedRequest",
    "Scenario",
    "healthcare_scenario",
    "ministry_scenario",
]
