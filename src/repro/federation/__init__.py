"""Federation-as-a-Service (FaaS) topology model.

The paper deploys DRAMS on the access control system of a FaaS cloud
federation (Figure 1): member clouds contribute *tenants* (virtual spaces
of computing resources), an *infrastructure tenant* owned by all federation
clouds hosts the PDP/PRP and the Analyser in separate *sections*, and PEPs
sit at each tenant's edge.

This package models clouds, sections, tenants and the federation builder
that instantiates the simulated topology (network + hosts) the access
control and DRAMS components deploy onto.
"""

from repro.federation.model import Cloud, Section, Tenant, TenantKind
from repro.federation.federation import Federation, FederationConfig
from repro.federation.services import FederatedService, ServiceRegistry

__all__ = [
    "Cloud",
    "Section",
    "Tenant",
    "TenantKind",
    "Federation",
    "FederationConfig",
    "FederatedService",
    "ServiceRegistry",
]
