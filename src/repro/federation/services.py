"""Federated service/resource registry.

Partner organisations share data and services hosted on their own cloud
platforms; the registry records which tenant exposes which resources, so
workload generators can produce requests against realistic resource
identifiers and PEPs can route enforcement to the owning tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError


@dataclass
class FederatedService:
    """A shared service: named resources exposed by one tenant."""

    name: str
    tenant_name: str
    resource_type: str
    resources: list[str] = field(default_factory=list)

    def add_resource(self, resource_id: str) -> str:
        if resource_id in self.resources:
            raise ValidationError(f"service {self.name}: duplicate resource {resource_id!r}")
        self.resources.append(resource_id)
        return resource_id


class ServiceRegistry:
    """Federation-wide directory of shared services."""

    def __init__(self) -> None:
        self._services: dict[str, FederatedService] = {}

    def register(self, service: FederatedService) -> FederatedService:
        if service.name in self._services:
            raise ValidationError(f"duplicate service registration: {service.name!r}")
        self._services[service.name] = service
        return service

    def get(self, name: str) -> FederatedService:
        try:
            return self._services[name]
        except KeyError:
            raise ValidationError(f"unknown service: {name!r}") from None

    def services(self) -> list[FederatedService]:
        return [self._services[name] for name in sorted(self._services)]

    def services_of_tenant(self, tenant_name: str) -> list[FederatedService]:
        return [svc for svc in self.services() if svc.tenant_name == tenant_name]

    def all_resources(self) -> list[tuple[str, str]]:
        """(service, resource) pairs across the federation."""
        pairs = []
        for service in self.services():
            pairs.extend((service.name, resource) for resource in service.resources)
        return pairs
